"""Cost and correctness floors for deterministic checkpoint/restore.

The ``checkpoint`` bench section measures the two promises the
checkpoint subsystem makes on population-scale runs; this floor turns
them into CI bars:

* ``checkpoint_overhead`` — wall-clock amortized checkpointing (ambient
  ``checkpoint_every=5000`` boundaries, durable writes throttled by the
  recorded ``min_write_interval``) must cost **under 10%** of the run it
  protects, measured as the writer's cumulative in-sink seconds over the
  rest of its own run.  At least one crash-safe snapshot must actually
  be persisted per leg (a zero-write leg would pass vacuously), and the
  checkpointed legs must classify ``stable_dict()``-identical to the
  clean leg;
* ``checkpoint_recovery`` — a run killed (simulated) at ~50% of its
  event budget and resumed from the on-disk snapshot must produce a
  final artifact ``stable_dict()``-identical to the uninterrupted run,
  with the kill landing strictly mid-run.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_checkpoint_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True, scenarios=["checkpoint"])
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_checkpoint_overhead_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    overhead = report["scenarios"]["checkpoint_overhead"]

    assert overhead["checkpoint_every"] == 5000
    for size, cell in overhead["sizes"].items():
        # A leg that never persisted a snapshot measures nothing.
        assert min(cell["checkpoints_written"]) >= 1, (
            f"size {size}: a checkpointed leg persisted no snapshot "
            f"(min_write_interval={cell['min_write_interval']})"
        )
        assert cell["min_write_interval"] > 0
        assert cell["identical"] is True, (
            f"size {size}: checkpointed legs diverged from the clean run"
        )
    assert overhead["max_overhead"] < 0.10, (
        f"checkpointing cost {overhead['max_overhead']:.1%} of the run it "
        f"protects at the benched interval; the floor is 10%"
    )
    assert overhead["all_identical"] is True


def test_checkpoint_recovery_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    recovery = report["scenarios"]["checkpoint_recovery"]

    # The simulated kill must land strictly mid-run: late enough that
    # real progress is thrown away, early enough that real work remains.
    assert 0.0 < recovery["kill_fraction"] < 1.0, (
        f"kill landed at {recovery['kill_fraction']} of the event budget"
    )
    assert recovery["killed_after_event"] > 0
    assert recovery["identical_after_resume"] is True, (
        "resumed run is not stable_dict()-identical to the clean run"
    )
