"""Perf floor for the dissemination-topology scenarios.

Mirrors the sibling floor modules: the topology bench scenarios compare
the *same* declarative runs under full-mesh flooding and under restricted
topologies, so the recorded volume ratios are pure topology effects.  The
CI bars:

* gossip fan-out must cut message volume well below full flood
  (``k/(n-1)`` per origination — the quick grid runs ``k=3`` against 9
  full-mesh peers, so 0.7 keeps a wide margin);
* the sharded gateway overlay and committee-only dissemination must cut
  their message volumes below full flood / the open committee;
* the full-mesh leg must still converge perfectly (agreement 1.0) — the
  baseline run is the pre-topology behaviour.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_topology_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report

#: CI ceiling on every restricted-topology volume ratio.
RATIO_CEILING = 0.7


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True, scenarios=["topology"])
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_topology_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    scenarios = report["scenarios"]

    gossip = scenarios["simulation_gossip_fanout"]
    assert gossip["message_volume_ratio"] <= RATIO_CEILING, (
        f"gossip fan-out k={gossip['fanout']} only cut message volume to "
        f"{gossip['message_volume_ratio']:.2f}x of full flood "
        f"(expected <= {RATIO_CEILING}x)"
    )
    assert gossip["event_volume_ratio"] < 1.0
    # The baseline full flood is the pre-topology behaviour and converges.
    assert gossip["full"]["agreement_ratio"] == 1.0
    assert gossip["full"]["mean_blocks"] > 1.0
    assert gossip["gossip"]["mean_blocks"] > 1.0

    sharded = scenarios["simulation_sharded_committee"]
    assert sharded["sharded_message_ratio"] <= RATIO_CEILING, (
        f"sharded overlay only cut message volume to "
        f"{sharded['sharded_message_ratio']:.2f}x of full flood "
        f"(expected <= {RATIO_CEILING}x)"
    )
    assert sharded["committee_message_ratio"] <= RATIO_CEILING + 0.1, (
        f"committee-only dissemination only cut message volume to "
        f"{sharded['committee_message_ratio']:.2f}x of the open committee"
    )
    # LRC relays bridge the shard gateways, so the sharded run still
    # disseminates real blocks everywhere.
    assert sharded["sharded"]["mean_blocks"] > 1.0
    assert sharded["committee_open"]["agreement_ratio"] == 1.0
