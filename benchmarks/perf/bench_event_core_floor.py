"""Perf floor for the array-native event core and the population plane.

Two guarantees ride on this module:

* the array event calendar (structured-array buckets + interned method
  dispatch + bulk lexsort inserts) must beat the retained heap core's
  scalar reference path on the flood storm by at least 2× (the full-size
  scenarios record ≥3×), with both cores having produced identical
  outcomes — the harness asserts event-for-event equality while
  recording the scenario;
* generating a population-scale client workload (vectorized Poisson
  streams bulk-inserted through the calendar) must stay a small fraction
  of the run it feeds — under 15% even at the largest swept size.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_event_core_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report

#: CI floor for the array core vs the heap core's scalar reference path.
FLOOR = 2.0

#: Ceiling on the workload generator's share of the run it feeds.
GENERATION_SHARE_CEILING = 0.15


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True)
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_event_core_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    flood = report["scenarios"]["simulation_flood_heavy"]

    speedup = flood["speedup"]
    assert speedup is not None and speedup >= FLOOR, (
        f"array event core only {speedup:.1f}x faster than the heap core's "
        f"scalar reference path (expected >= {FLOOR}x)"
    )
    # Honest core-vs-core number (both legs batched) recorded alongside;
    # no floor — at quick sizes the calendar's fixed costs dominate.
    assert flood["core_speedup"] > 0
    # Whether the drain loop ran as a compiled extension or pure Python;
    # CI runs the pure-Python fallback, so the flag must exist either way.
    assert isinstance(flood["drain_compiled"], bool)
    assert flood["outcomes_identical"] is True
    assert flood["events"] > 0
    assert flood["events_per_second"] > 0


def test_population_workload_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    scaling = report["scenarios"]["workload_population_scaling"]

    assert scaling["sizes"], "population sweep recorded no sizes"
    assert scaling["max_clients"] >= 1000
    share = scaling["max_generation_share"]
    assert share < GENERATION_SHARE_CEILING, (
        f"workload generation took {share:.0%} of the run it feeds "
        f"(expected < {GENERATION_SHARE_CEILING:.0%})"
    )
    for size, cell in scaling["sizes"].items():
        assert cell["total_ops"] > 0, f"population:{size} generated no ops"
        assert cell["events_per_second"] > 0
        assert cell["generation_share"] < GENERATION_SHARE_CEILING
