"""Correctness floor for the resilient sweep execution plane.

The ``sweeps`` bench section drives the executor subsystem through its
two scenarios and records the invariants the execution plane promises;
this floor turns them into CI bars.  They are correctness floors, not
speed floors:

* ``sweep_resilience`` — under the seeded ``flaky`` chaos executor
  (exception, hang and worker-kill injections over the process-pool
  backend) every cell must finish as either a success or a structured
  ``CellFailure``: no unfinished cells, all three injection kinds
  actually exercised, recovered cells bit-identical (up to timings) to a
  never-failed serial run, exactly the scripted permanent failure in the
  payload, and a journal-driven resume that executes zero cells while
  reproducing the same results;
* ``sweep_shard_scaling`` — the union of the four ``--shard-index i/4``
  invocations must be bit-identical (up to timings) to the serial run of
  the same grid, every pool-worker leg must match the serial results,
  and the final cache-merge invocation must serve every cell from the
  shared cache without executing anything.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_sweep_resilience_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True, scenarios=["sweeps"])
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_sweep_resilience_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    scenarios = report["scenarios"]

    chaos = scenarios["sweep_resilience"]
    assert chaos["unfinished"] == 0, (
        f"{chaos['unfinished']} cells neither succeeded nor degraded to a "
        "CellFailure artifact"
    )
    # A chaos run that never injected anything (or skipped a kind) would
    # vacuously pass the recovery bars below.
    assert chaos["injected_kinds"] == ["exception", "hang", "kill"]
    assert chaos["injections"] >= 4
    assert chaos["attempts"] > chaos["cells"], (
        "no retries happened — the injected faults were not exercised"
    )
    # Exactly the scripted permanent failure degrades; everything else
    # recovers on retry, bit-identical to a run that never failed.
    assert chaos["failures"] == 1
    assert chaos["retried_identical"] is True, (
        "cells recovered by retry are not bit-identical to a clean serial run"
    )
    # Resume after the driver "crash": the journal marks every cell
    # terminal, so nothing re-executes and the results reproduce.
    assert chaos["resume_executed"] == 0, (
        f"resume re-executed {chaos['resume_executed']} already-completed cells"
    )
    assert chaos["resume_restored"] == chaos["cells"]
    assert chaos["resume_identical"] is True


def test_sweep_shard_scaling_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    scaling = report["scenarios"]["sweep_shard_scaling"]

    # Deterministic sharding: the k=4 shard union reproduces the serial
    # sweep exactly (up to wall-clock timings).
    assert scaling["shard_count"] == 4
    assert scaling["shard_union_identical"] is True, (
        "union of the four shard invocations differs from the serial run"
    )
    # Worker count must never change results, only wall-clock.
    for workers, leg in scaling["workers"].items():
        assert leg["identical"] is True, (
            f"pool backend at {workers} workers diverged from the serial run"
        )
    # The merge leg is pure cache service: every cell a hit, zero executed.
    assert scaling["merge_cache_hits"] == scaling["cells"]
    assert scaling["merge_executed"] == 0
