"""Perf floor for the consistency-checking hot path.

Mirrors ``bench_perf_harness.py`` for the consistency layer: the
index-backed SC/EC criteria must beat the brute-force ``_Reference*``
oracles — timed in the same run, on the same read-heavy histories — by at
least 5×, and the streaming monitor's verdicts must agree with the
post-hoc checkers.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_consistency_floor.py -q

Like the sibling harness, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True)
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_consistency_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    scenarios = report["scenarios"]

    for name in ("consistency_strong_chain_heavy", "consistency_eventual_fork_heavy"):
        data = scenarios[name]
        assert data["holds"] is True, f"{name}: bench history must satisfy its criterion"
        speedup = data["speedup"]
        assert speedup is not None and speedup >= 5.0, (
            f"{name}: indexed checkers only {speedup:.1f}x faster than the "
            "brute-force reference oracles (expected >= 5x)"
        )

    monitor = scenarios["consistency_monitor_fork_heavy"]
    assert monitor["agrees_with_post_hoc"] is True
    assert monitor["reads"] > 0 and monitor["events"] > monitor["reads"]
