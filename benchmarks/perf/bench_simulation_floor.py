"""Perf floor for the simulation-plane hot path.

Mirrors the sibling floor modules for the message plane: the batched
fan-out (vectorized channel sampling + shared multicast envelopes + bulk
queue inserts) must beat the pre-batching scalar reference path — timed
in the same run, on the same gossip storms — by at least 2×, and the two
paths must have produced identical outcomes (the harness asserts
equivalence while recording the scenarios; the flags land in the
artifact).

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_simulation_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report

#: CI floor.  The full-size scenarios record ≥3× on the flood storm; the
#: quick sizes on shared CI runners keep a 2× safety margin.
FLOOR = 2.0


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True)
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_simulation_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    scenarios = report["scenarios"]

    for name in ("simulation_flood_heavy", "simulation_lrc_gossip"):
        data = scenarios[name]
        speedup = data["speedup"]
        assert speedup is not None and speedup >= FLOOR, (
            f"{name}: batched message plane only {speedup:.1f}x faster than the "
            f"scalar reference fan-out (expected >= {FLOOR}x)"
        )
        assert data["events"] > 0
        assert data["events_per_second"] > 0

    assert scenarios["simulation_flood_heavy"]["outcomes_identical"] is True
    assert scenarios["simulation_lrc_gossip"]["histories_identical"] is True
    assert scenarios["simulation_lrc_gossip"]["messages_dropped"] > 0
