"""Perf floor for the compiled, batch-dispatched callback plane.

ROADMAP item 2's second half: once the event *store* is array-native,
the per-delivery callback chain dominates fork-heavy profiles.  This
floor guards the win of the live plane (array core + batch dispatch +
columnar block index) over the retained pure/scalar oracle leg (heap
core, per-message dispatch, reference recorder + dict block index) on
the two protocol scenarios:

* ``run_longest_fork_heavy`` — Nakamoto longest-chain under a dense
  synchronous flood (LRC relaying, high token rate);
* ``run_ghost_fork_heavy`` — the same storm scored by GHOST.

The harness asserts the two planes produced byte-identical histories
while recording each scenario, so the speedup is only ever measured
against a verified-equal run.  The quick (CI) floor is 1.4×; the
full-size scenarios record ≥2× (see ``benchmarks/perf/README.md``),
mirroring the event-core precedent of a 2× quick floor under a ≥3×
full-size result.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_callback_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report

#: CI floor for the live callback plane vs the pure/scalar oracle leg.
FLOOR = 1.4

SCENARIOS = ("run_longest_fork_heavy", "run_ghost_fork_heavy")


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True)
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_callback_plane_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    for name in SCENARIOS:
        scenario = report["scenarios"][name]

        speedup = scenario["speedup"]
        assert speedup is not None and speedup >= FLOOR, (
            f"{name}: live callback plane only {speedup:.2f}x faster than "
            f"the pure/scalar oracle leg (expected >= {FLOOR}x)"
        )
        # The speedup is meaningless unless both legs replayed the exact
        # same run — the harness compares full histories while recording.
        assert scenario["histories_identical"] is True

        # Fraction of drain time spent inside delivery callbacks, from a
        # separately instrumented leg (never the one that is timed).
        share = scenario["callback_share"]
        assert 0.0 < share <= 1.0, f"{name}: callback_share {share!r}"

        # Which flavour ran: compiled extensions in the CI compiled job,
        # the pure-Python fallback everywhere else.  Both report here.
        compiled = scenario["compiled_modules"]
        assert isinstance(compiled["_drain"], bool)
        assert isinstance(compiled["_hotpath"], bool)

        assert scenario["events_processed"] > 0
        assert scenario["events_per_second"] > 0
        assert scenario["mean_blocks"] > 0
