"""Perf harness under pytest: selection hot path and cached sweeps.

Wraps :mod:`repro.engine.bench` in the benchmark-suite idiom (time *and*
assert): the fork-heavy selection scenarios must beat the brute-force
``_reference_*`` baseline — measured in the same run — by at least 5×,
and a warm cached sweep must be served entirely from disk.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_perf_harness.py -q

When ``REPRO_BENCH_REPORT`` points at an existing ``BENCH_*.json`` (as in
the CI bench-smoke job, which has just produced one via
``python -m repro bench --quick``), the assertions run against that
artifact instead of re-executing every scenario.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True)
    path = write_report(report, tmp_path)
    assert path.name.startswith("BENCH_") and path.suffix == ".json"
    return json.loads(path.read_text(encoding="utf-8"))


def test_perf_harness_expectations(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    scenarios = report["scenarios"]

    for name in (
        "selection_longest_fork_heavy",
        "selection_heaviest_fork_heavy",
        "selection_ghost_fork_heavy",
    ):
        speedup = scenarios[name]["speedup"]
        assert speedup is not None and speedup >= 5.0, (
            f"{name}: indexed selection only {speedup:.1f}x faster than the "
            "brute-force reference baseline (expected >= 5x)"
        )

    cache = scenarios["cache_sweep"]
    assert cache["cold_hits"] == 0
    assert cache["warm_hits"] == cache["cells"]
