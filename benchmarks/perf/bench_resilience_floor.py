"""Resilience floor for the adversarial (fault-registry) scenarios.

Mirrors the sibling floor modules: the resilience bench scenarios run
the Bitcoin model under registered fault models and record what the
:class:`~repro.core.degradation.DegradationMonitor` observed.  The CI
bars are correctness floors, not speed floors:

* the partition-heal run must actually *heal* — a finite, non-negative
  time-to-heal and divergence depth back at 0 by the end of the run —
  and must have genuinely diverged while split (otherwise the scenario
  measures nothing);
* the churn run must complete with the correct replicas eventually
  consistent, and the network must have quarantined the in-flight
  deliveries addressed to departed replicas rather than crashing.

Run explicitly (the tier-1 suite does not collect ``bench_*`` modules)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_resilience_floor.py -q

Like the siblings, a pre-recorded artifact pointed at by
``REPRO_BENCH_REPORT`` is used when present (the CI bench-smoke job has
just produced one via ``python -m repro bench --quick``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.bench import BENCH_SCHEMA, run_bench, write_report


def _load_or_run(once, tmp_path):
    """The report under test: a pre-recorded artifact, or a fresh quick run."""
    recorded = os.environ.get("REPRO_BENCH_REPORT")
    if recorded:
        return json.loads(Path(recorded).read_text(encoding="utf-8"))
    report = once(run_bench, seed=7, quick=True, scenarios=["resilience"])
    path = write_report(report, tmp_path)
    return json.loads(path.read_text(encoding="utf-8"))


def test_resilience_floor(once, tmp_path):
    report = _load_or_run(once, tmp_path)
    assert report["schema"] == BENCH_SCHEMA
    scenarios = report["scenarios"]

    partition = scenarios["adversarial_partition_heal"]
    assert partition["time_to_heal"] is not None, (
        "partition-heal run never restored correct-replica prefix agreement "
        "after the heal"
    )
    assert partition["time_to_heal"] >= 0.0
    assert partition["final_divergence_depth"] == 0, (
        f"divergence depth {partition['final_divergence_depth']} persisted "
        "after the partition healed"
    )
    # The split must have produced a real fork; a scenario that never
    # diverges would vacuously pass the heal bars above.
    assert partition["max_divergence_depth"] > 0

    churn = scenarios["churn_storm"]
    assert churn["eventual_consistency"] is True, (
        "correct replicas did not reach eventual consistency after churn"
    )
    # Departed replicas' in-flight deliveries are absorbed, not crashed on.
    assert churn["messages_quarantined"] > 0
    assert churn["degradation"]["final_divergence_depth"] == 0
