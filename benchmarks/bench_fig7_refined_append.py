"""Figures 5–7 — the token oracle and the refined append.

Measures the cost of the ``getToken*; consumeToken`` append (Definition
3.7 / Figure 7) through both oracles, and checks its semantics: every
appended block carries a token, extends the selected chain, and the
frugal oracle bounds forks per parent.
"""

from __future__ import annotations

from repro.core.block import GENESIS_ID, Block, BlockIdFactory
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.oracle.refinement import RefinedBTADT
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle


def _refined(oracle_kind: str, probability: float = 0.5, k: int = 1):
    tapes = TapeFamily(seed=13, probability_scale=probability)
    tapes.register_merit("p", 1.0)
    if oracle_kind == "prodigal":
        oracle = ProdigalOracle(tapes=tapes)
    else:
        oracle = FrugalOracle(k=k, tapes=tapes)
    return RefinedBTADT(oracle, process="p")


def test_refined_append_throughput_prodigal(benchmark):
    """300 refined appends through Θ_P (p = 0.5 per getToken draw)."""
    ids = BlockIdFactory()

    def workload() -> int:
        adt = _refined("prodigal")
        for _ in range(300):
            adt.append(ids.make_block(GENESIS_ID, creator="p"))
        return adt.read().length

    length = benchmark(workload)
    assert length == 300


def test_refined_append_throughput_frugal_k1(benchmark):
    """300 refined appends through Θ_{F,1} — still a single growing chain."""
    ids = BlockIdFactory()

    def workload():
        adt = _refined("frugal", k=1)
        for _ in range(300):
            adt.append(ids.make_block(GENESIS_ID, creator="p"))
        return adt

    adt = benchmark(workload)
    assert adt.read().length == 300
    assert check_fork_coherence_from_oracle(adt.oracle).holds
    assert all(b.token is not None for b in adt.read() if not b.is_genesis)


def test_token_retry_cost_scales_with_low_probability(benchmark):
    """With p = 0.05 each append needs ~20 getToken draws (the PoW regime)."""
    ids = BlockIdFactory()

    def workload() -> int:
        adt = _refined("prodigal", probability=0.05)
        attempts = 0
        for _ in range(50):
            outcome = adt.append_detailed(ids.make_block(GENESIS_ID, creator="p"))
            attempts += outcome.attempts
        return attempts

    attempts = benchmark(workload)
    assert attempts > 50 * 5  # far more draws than blocks
