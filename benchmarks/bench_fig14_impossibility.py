"""Figure 14 — the message-passing hierarchy with its impossible vertices.

The greyed-out vertices of Figure 14 (SC with a fork-allowing oracle) are
re-derived empirically: in a message-passing run with the prodigal oracle,
Strong Prefix is violated even with zero faults and synchronous channels,
whereas the k = 1 vertex remains achievable.  The declarative
message-passing hierarchy is also checked against Theorem 4.8.
"""

from __future__ import annotations

from repro.core.consistency import check_strong_consistency
from repro.core.hierarchy import Refinement, message_passing_hierarchy
from repro.network.channels import SynchronousChannel
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.nakamoto import run_bitcoin


def test_message_passing_hierarchy_excludes_impossible_vertices(benchmark):
    hierarchy = benchmark(message_passing_hierarchy)
    assert Refinement.sc_prodigal() not in hierarchy
    assert Refinement.sc_frugal(2) not in hierarchy
    assert Refinement.sc_frugal(1) in hierarchy
    assert Refinement.ec_prodigal() in hierarchy


def test_fork_allowing_oracle_breaks_strong_prefix_in_message_passing(once):
    def run():
        result = run_bitcoin(
            n=4, duration=200.0, token_rate=0.6, seed=61,
            channel=SynchronousChannel(delta=4.0, min_delay=1.0, seed=61),
        )
        return check_strong_consistency(result.history.without_failed_appends())

    report = once(run)
    assert not report.holds


def test_fork_free_oracle_achieves_strong_prefix_in_message_passing(once):
    def run():
        result = run_hyperledger(n=4, duration=100.0, seed=61)
        return check_strong_consistency(result.history.without_failed_appends())

    report = once(run)
    assert report.holds
