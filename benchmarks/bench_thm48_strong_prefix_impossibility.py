"""Theorem 4.8 — Strong Prefix is impossible with a fork-allowing oracle.

Reproduces the proof scenario in the simulator: correct processes, a
synchronous network, an LRC primitive — and yet, because the oracle allows
forks, two concurrent appends on the same parent produce diverging reads.
Contrast: the same setting with the Θ_{F,1} oracle (a consensus system)
keeps Strong Prefix.  Sweeps the fork pressure (token rate × delay) to
locate where violations appear.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.network.channels import SynchronousChannel
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.nakamoto import run_bitcoin

#: (token_rate, delta) fork-pressure configurations, from gentle to harsh.
PRESSURES = ((0.1, 1.0), (0.3, 2.0), (0.6, 4.0))


def _pow_run(token_rate: float, delta: float, seed: int = 81):
    return run_bitcoin(
        n=4,
        duration=200.0,
        token_rate=token_rate,
        seed=seed,
        channel=SynchronousChannel(delta=delta, min_delay=delta / 4, seed=seed),
    )


def test_fork_pressure_sweep(once):
    def sweep():
        rows = []
        for token_rate, delta in PRESSURES:
            run = _pow_run(token_rate, delta)
            history = run.history.without_failed_appends()
            rows.append(
                (
                    token_rate,
                    delta,
                    check_strong_consistency(history).holds,
                    check_eventual_consistency(history).holds,
                )
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["token_rate", "delta", "strong consistency", "eventual consistency"],
        rows,
        title="Theorem 4.8 — fork pressure vs Strong Prefix (prodigal oracle)",
    ))
    # Eventual consistency holds everywhere (reliable channels + drain).
    assert all(ec for _, _, _, ec in rows)
    # Under the harshest pressure Strong Prefix is violated — the
    # impossibility made visible.
    assert rows[-1][2] is False


def test_consensus_system_keeps_strong_prefix_in_the_same_setting(once):
    def run():
        result = run_hyperledger(n=4, duration=120.0, seed=81)
        return check_strong_consistency(result.history.without_failed_appends())

    report = once(run)
    assert report.holds
