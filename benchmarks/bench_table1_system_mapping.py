"""Table 1 — mapping of existing systems onto the refinement hierarchy.

Runs every system model of Section 5 (Bitcoin, Ethereum, ByzCoin,
Algorand, PeerCensus, Red Belly, Hyperledger Fabric), classifies the
recorded history + oracle, and asserts the classification matches the
paper's table row by row.  The rows are driven by the experiment engine:
``reproduce_table1`` expands each system's registered ``table1`` regime
into an :class:`ExperimentSpec` and executes it.  The rendered table is
printed so the tee'd benchmark log contains the reproduced Table 1.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_classification_table
from repro.core.hierarchy import Consistency
from repro.engine import ExperimentSpec, SweepRunner, table1_spec
from repro.protocols.classification import PAPER_TABLE1, classify_run, reproduce_table1


def test_reproduce_table1_matches_paper(once):
    results = once(reproduce_table1, n=5, duration=100.0, seed=7)
    print()
    print(render_classification_table(results))
    assert set(results) == set(PAPER_TABLE1)
    for name, result in results.items():
        assert result.matches_paper is True, (
            f"{name} classified as {result.refinement} "
            f"but the paper expects {result.expected}"
        )


def test_pow_and_consensus_systems_split_as_in_the_paper(once):
    results = once(reproduce_table1, n=5, duration=100.0, seed=13)
    ec_systems = {n for n, r in results.items() if r.consistency == Consistency.EVENTUAL}
    sc_systems = {n for n, r in results.items() if r.consistency == Consistency.STRONG}
    assert ec_systems == {"bitcoin", "ethereum"}
    assert sc_systems == {"byzcoin", "algorand", "peercensus", "redbelly", "hyperledger"}


def test_table1_specs_round_trip_and_sweep(once):
    """The engine path: specs survive JSON and classify identically in a sweep."""
    specs = [
        table1_spec(name, n=5, duration=100.0, seed=7)
        for name in ("bitcoin", "hyperledger")
    ]
    specs = [ExperimentSpec.from_json(spec.to_json()) for spec in specs]
    records = once(SweepRunner(jobs=1).run, specs)
    assert [r.classification["matches_paper"] for r in records] == [True, True]
    assert records[0].classification["label"] == "R(BT-ADT_EC, Θ_P)"
    assert records[1].classification["label"] == "R(BT-ADT_SC, Θ_F,k=1)"


def test_classification_cost_for_one_run(benchmark):
    run = ExperimentSpec(protocol="hyperledger", replicas=5, duration=80.0, seed=9).execute().run
    result = benchmark(classify_run, run)
    assert result.matches_paper is True
