"""Figure 4 — a history satisfying neither BT consistency criterion.

Regenerates the permanently diverging history of Figure 4 and its
randomized generalization, asserts that both SC and EC reject it, and
times the checkers on the rejecting path (violation enumeration).
"""

from __future__ import annotations

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.workload.scenarios import figure4_history, generate_forked_history


def test_figure4_history_satisfies_neither_criterion(benchmark):
    history = figure4_history()
    ec_report = benchmark(check_eventual_consistency, history)
    assert not ec_report.holds
    assert not check_strong_consistency(history).holds


def test_eventual_prefix_violations_carry_witnesses(benchmark):
    history = generate_forked_history(branch_length=20, resolve=False, seed=7)
    report = benchmark(check_eventual_consistency, history)
    assert not report.holds
    assert report.result_for("eventual-prefix").violations


def test_rejection_cost_on_large_divergent_history(benchmark):
    history = generate_forked_history(branch_length=50, resolve=False, seed=8)
    report = benchmark(check_eventual_consistency, history)
    assert not report.holds
