"""Ablation A2 — convergence depth versus message loss and synchrony.

Quantitative companion of the Eventual Prefix property: how deep a common
prefix the replicas' final views share, as a function of the drop rate and
of the channel synchrony (synchronous vs partially synchronous), in a
Bitcoin-style run without the LRC relay.

Expected shape: with no loss the views agree fully (agreement ratio 1,
zero divergence); as the drop rate rises the common prefix shrinks and
the agreement ratio falls; partial synchrony alone (no loss) does not
prevent convergence once the run drains.
"""

from __future__ import annotations

import pytest

from repro.analysis.convergence import convergence_summary
from repro.analysis.report import render_table
from repro.network.channels import (
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
)
from repro.protocols.nakamoto import run_bitcoin

DROPS = (0.0, 0.3, 0.7, 0.95)


def _summary(drop: float, partial_sync: bool = False, seed: int = 101):
    base = (
        PartiallySynchronousChannel(gst=40.0, delta=1.0, pre_gst_mean=4.0, seed=seed)
        if partial_sync
        else SynchronousChannel(delta=1.0, seed=seed)
    )
    channel = LossyChannel(base, drop, seed=seed) if drop > 0 else base
    run = run_bitcoin(
        n=5, duration=150.0, token_rate=0.3, seed=seed, channel=channel, use_lrc=False
    )
    return convergence_summary(run.final_chains())


def test_drop_rate_sweep_shrinks_the_common_prefix(once):
    def sweep():
        return {drop: _summary(drop) for drop in DROPS}

    summaries = once(sweep)
    rows = [
        [drop, s.common_prefix_score, round(s.agreement_ratio, 2), s.max_divergence]
        for drop, s in summaries.items()
    ]
    print()
    print(render_table(
        ["drop", "common prefix score", "agreement ratio", "max divergence"],
        rows,
        title="Ablation A2 — convergence vs message loss",
    ))
    no_loss = summaries[0.0]
    assert no_loss.agreement_ratio == 1.0
    assert no_loss.max_divergence == 0.0
    heavy_loss = summaries[DROPS[-1]]
    # Heavy loss leaves the replicas behind the most advanced view.
    assert heavy_loss.max_divergence > 0 or heavy_loss.agreement_ratio < 1.0
    # Shape: the common prefix never grows as loss increases.
    prefixes = [summaries[d].common_prefix_score for d in DROPS]
    assert prefixes[0] >= prefixes[-1]


def test_partial_synchrony_alone_still_converges(once):
    summary = once(_summary, 0.0, True, 103)
    assert summary.agreement_ratio == 1.0
    assert summary.max_divergence == 0.0
