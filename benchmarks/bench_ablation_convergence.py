"""Ablation A2 — convergence depth versus message loss and synchrony.

Quantitative companion of the Eventual Prefix property: how deep a common
prefix the replicas' final views share, as a function of the drop rate and
of the channel synchrony (synchronous vs partially synchronous), in a
Bitcoin-style run without the LRC relay.

The loss and synchrony axes are expressed declaratively on the
:class:`ExperimentSpec` channel (``drop_probability`` wraps the base model
in a ``LossyChannel``), so each cell is reproducible from its JSON form.

Expected shape: with no loss the views agree fully (agreement ratio 1,
zero divergence); as the drop rate rises the common prefix shrinks and
the agreement ratio falls; partial synchrony alone (no loss) does not
prevent convergence once the run drains.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.engine import ChannelSpec, ExperimentSpec, SweepRunner, WorkloadSpec

DROPS = (0.0, 0.3, 0.7, 0.95)


def _spec(drop: float, partial_sync: bool = False, seed: int = 101) -> ExperimentSpec:
    channel = (
        ChannelSpec(
            kind="partial",
            params={"gst": 40.0, "delta": 1.0, "pre_gst_mean": 4.0},
            drop_probability=drop,
        )
        if partial_sync
        else ChannelSpec(kind="synchronous", params={"delta": 1.0}, drop_probability=drop)
    )
    return ExperimentSpec(
        protocol="bitcoin",
        replicas=5,
        duration=150.0,
        seed=seed,
        channel=channel,
        workload=WorkloadSpec(use_lrc=False),
        params={"token_rate": 0.3},
        label=f"drop={drop} partial={partial_sync}",
    )


def _summary(drop: float, partial_sync: bool = False, seed: int = 101):
    return _spec(drop, partial_sync, seed).execute().convergence


def test_drop_rate_sweep_shrinks_the_common_prefix(once):
    def sweep():
        records = SweepRunner(jobs=1).run([_spec(drop) for drop in DROPS])
        return {drop: record.convergence for drop, record in zip(DROPS, records)}

    summaries = once(sweep)
    rows = [
        [drop, s["common_prefix_score"], round(s["agreement_ratio"], 2), s["max_divergence"]]
        for drop, s in summaries.items()
    ]
    print()
    print(render_table(
        ["drop", "common prefix score", "agreement ratio", "max divergence"],
        rows,
        title="Ablation A2 — convergence vs message loss",
    ))
    no_loss = summaries[0.0]
    assert no_loss["agreement_ratio"] == 1.0
    assert no_loss["max_divergence"] == 0.0
    heavy_loss = summaries[DROPS[-1]]
    # Heavy loss leaves the replicas behind the most advanced view.
    assert heavy_loss["max_divergence"] > 0 or heavy_loss["agreement_ratio"] < 1.0
    # Shape: the common prefix never grows as loss increases.
    prefixes = [summaries[d]["common_prefix_score"] for d in DROPS]
    assert prefixes[0] >= prefixes[-1]


def test_partial_synchrony_alone_still_converges(once):
    summary = once(_summary, 0.0, True, 103)
    assert summary["agreement_ratio"] == 1.0
    assert summary["max_divergence"] == 0.0
