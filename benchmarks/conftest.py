"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one artefact of the paper
(figure, table, theorem or ablation) — see DESIGN.md §3 for the full
experiment index and EXPERIMENTS.md for the recorded outcomes.  Each
benchmark both *times* the relevant operation (via pytest-benchmark) and
*asserts* the paper-level expectation, so a passing
``pytest benchmarks/ --benchmark-only`` run is itself the reproduction.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Benchmark a heavyweight simulation with a single round.

    Whole-protocol sweeps (Table 1, the loss and fork-pressure ablations)
    take hundreds of milliseconds each; timing them with pytest-benchmark's
    default calibration would repeat them dozens of times for no extra
    information.  ``once(fn, *args)`` runs ``fn`` exactly once under the
    benchmark timer and returns its result.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
