"""Figure 3 — a history satisfying BT Eventual but not Strong Consistency.

Regenerates the exact history of Figure 3 (transient fork, eventual
convergence) and randomized resolved-fork histories; asserts the
EC-but-not-SC verdict and times the EC checker.
"""

from __future__ import annotations

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.workload.scenarios import figure3_history, generate_forked_history


def test_figure3_history_is_ec_not_sc(benchmark):
    history = figure3_history()
    report = benchmark(check_eventual_consistency, history)
    assert report.holds
    assert not check_strong_consistency(history).holds


def test_ec_checker_on_large_resolved_fork(benchmark):
    history = generate_forked_history(branch_length=40, resolve=True, seed=5)
    report = benchmark(check_eventual_consistency, history)
    assert report.holds
    assert not check_strong_consistency(history).holds


def test_strong_prefix_violation_is_detected_with_witnesses(benchmark):
    history = figure3_history()
    report = benchmark(check_strong_consistency, history)
    assert not report.holds
    assert report.result_for("strong-prefix").violations
