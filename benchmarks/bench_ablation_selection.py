"""Ablation A3 — selection functions compared (longest chain vs GHOST).

The BT-ADT is parameterized by the selection function f; this ablation
runs the same fork-prone proof-of-work workload under the longest-chain
rule (Bitcoin) and under GHOST (Ethereum) and compares chain growth and
wasted work.  Both runs are declared as :class:`ExperimentSpec` cells
(the longest-chain variant via the ``selection`` spec parameter), so the
comparison is reproducible from the specs alone.  Expected shape: both
satisfy Eventual Consistency; in the high-fork regime GHOST never yields
a *longer* main chain than the longest-chain rule (it deliberately trades
chain length for subtree support), and both converge after the drain.
"""

from __future__ import annotations

import pytest

from repro.analysis.forks import fork_statistics, merge_statistics
from repro.analysis.report import render_table
from repro.core.consistency import check_eventual_consistency
from repro.engine import ChannelSpec, ExperimentSpec


def _spec(selection: str, seed: int = 111) -> ExperimentSpec:
    channel = ChannelSpec(kind="synchronous", params={"delta": 3.0, "min_delay": 0.5})
    if selection == "ghost":
        return ExperimentSpec(
            protocol="ethereum", replicas=5, duration=150.0, seed=seed,
            channel=channel, params={"token_rate": 0.5}, label="selection=ghost",
        )
    return ExperimentSpec(
        protocol="bitcoin", replicas=5, duration=150.0, seed=seed,
        channel=channel, params={"token_rate": 0.5, "selection": "longest"},
        label="selection=longest",
    )


def _run(selection: str, seed: int = 111):
    return _spec(selection, seed).execute().run


def test_selection_function_comparison(once):
    def compare():
        results = {}
        for name in ("longest", "ghost"):
            record = _spec(name).execute()
            run = record.run
            stats = merge_statistics(
                {pid: fork_statistics(r.tree, r.config.selection) for pid, r in run.replicas.items()}
            )
            ec = check_eventual_consistency(run.history.without_failed_appends()).holds
            results[name] = (stats, record.convergence, ec)
        return results

    results = once(compare)
    rows = [
        [name, round(stats["mean_blocks"], 1), round(stats["mean_wasted_ratio"], 3),
         summary["common_prefix_score"], ec]
        for name, (stats, summary, ec) in results.items()
    ]
    print()
    print(render_table(
        ["selection", "mean blocks/replica", "wasted ratio", "final common prefix", "EC"],
        rows,
        title="Ablation A3 — longest chain vs GHOST",
    ))
    # Both rules give eventually consistent, converged executions.
    for name, (stats, summary, ec) in results.items():
        assert ec, f"{name} run is not eventually consistent"
        assert summary["agreement_ratio"] == 1.0
    # GHOST follows subtree support: its main chain is never longer than the
    # longest-chain rule's on the same workload shape.
    assert (
        results["ghost"][1]["max_score"] <= results["longest"][1]["max_score"] + 1
    )


@pytest.mark.parametrize("name", ["longest", "ghost"])
def test_single_selection_run(once, name):
    run = once(_run, name, 113)
    assert check_eventual_consistency(run.history.without_failed_appends()).holds
