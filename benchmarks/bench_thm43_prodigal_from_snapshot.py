"""Theorem 4.3 — Θ_P has consensus number 1.

Exercises the Figure 12 construction (consumeToken from Atomic Snapshot):
a storm of concurrent consumers all succeed (wait-freedom, unbounded k)
yet the object never forces agreement on a single winner.  Timed: the full
consume storm for increasing process counts.
"""

from __future__ import annotations

import pytest

from repro.concurrent.reductions import SnapshotTokenStore
from repro.concurrent.scheduler import Scheduler


def _storm(n: int, seed: int = 0):
    processes = [f"p{i}" for i in range(n)]
    store = SnapshotTokenStore(processes)
    views = {}

    def consumer(process):
        yield
        views[process] = store.consume_token(process, f"tkn_{process}")
        return views[process]

    scheduler = Scheduler(seed=seed, strategy="random")
    for p in processes:
        scheduler.spawn(p, consumer(p))
    scheduler.run()
    return store, views


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_every_consumer_succeeds_without_agreement(benchmark, n):
    store, views = benchmark(_storm, n)
    # Wait-freedom / unbounded consumption: every token was stored.
    assert len(store.read_tokens()) == n
    # No forced agreement: the first consumer's view is a strict subset of
    # the last one's (they observed different "winners").
    sizes = sorted(len(v) for v in views.values())
    assert sizes[0] < sizes[-1] or n == 1


def test_snapshot_scan_cost_grows_with_components(benchmark):
    store, _ = _storm(8, seed=3)

    def scan():
        return store.read_tokens()

    tokens = benchmark(scan)
    assert len(tokens) == 8
