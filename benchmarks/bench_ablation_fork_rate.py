"""Ablation A1 — fork rate versus oracle bound k and network delay.

A design-choice study called out in DESIGN.md: the paper's oracles differ
only in the per-parent fork bound, so we measure how many forks (and how
much wasted work) actually materialize as a function of (i) the frugal
bound k used by the validation oracle and (ii) the network delay, in an
otherwise identical proof-of-work-style run.

Each cell is a declarative :class:`ExperimentSpec` executed through the
engine's :class:`SweepRunner`, so the grid here is the same artifact a
``python -m repro sweep`` invocation would produce.

Expected shape: fork count grows with delay and with k, and k = 1
eliminates forks entirely regardless of the delay.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import render_table
from repro.engine import ChannelSpec, ExperimentSpec, SweepRunner

DELAYS = (1.0, 4.0)
BOUNDS = (1, 2, None)  # None = prodigal


def _spec_for(bound, delay, seed=91):
    return ExperimentSpec(
        protocol="bitcoin",
        replicas=4,
        duration=150.0,
        seed=seed,
        channel=ChannelSpec(
            kind="synchronous", params={"delta": delay, "min_delay": delay / 4}
        ),
        oracle_k=math.inf if bound is None else bound,
        params={"token_rate": 0.4},
        label=f"k={'inf' if bound is None else bound} delta={delay}",
    )


def _forks_for(bound, delay, seed=91):
    return _spec_for(bound, delay, seed).execute().forks


def test_fork_rate_sweep(once):
    cells = [(bound, delay) for bound in BOUNDS for delay in DELAYS]

    def sweep():
        specs = [_spec_for(bound, delay) for bound, delay in cells]
        records = SweepRunner(jobs=1).run(specs)
        return {cell: record.forks for cell, record in zip(cells, records)}

    table = once(sweep)
    rows = [
        ["∞" if bound is None else bound, delay,
         round(stats["mean_forks"], 2), round(stats["mean_wasted_ratio"], 3)]
        for (bound, delay), stats in table.items()
    ]
    print()
    print(render_table(
        ["k", "delay", "mean fork points / replica", "wasted block ratio"],
        rows,
        title="Ablation A1 — fork rate vs oracle bound and delay",
    ))
    # k = 1 never forks, whatever the delay.
    for delay in DELAYS:
        assert table[(1, delay)]["mean_forks"] == 0.0
        assert table[(1, delay)]["max_fork_degree"] <= 1.0
    # The unbounded oracle forks at least as much as any bounded one.
    for delay in DELAYS:
        assert table[(None, delay)]["mean_forks"] >= table[(2, delay)]["mean_forks"]
        assert table[(None, delay)]["mean_forks"] >= table[(1, delay)]["mean_forks"]


@pytest.mark.parametrize("bound", BOUNDS)
def test_single_configuration(once, bound):
    stats = once(_forks_for, bound, 2.0, 92)
    if bound == 1:
        assert stats["mean_forks"] == 0.0
    assert stats["replicas"] == 4.0
