"""Figure 8 — the hierarchy of refined BlockTree ADTs.

Re-derives the hierarchy empirically: families of histories generated
under stronger refinements are accepted by all weaker criteria, and the
declarative hierarchy (edge set) matches the strength relation.  The
timed operation is the classification of a whole history family against
all vertices of the hierarchy.
"""

from __future__ import annotations

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.hierarchy import Refinement, is_weaker_or_equal, refinement_hierarchy
from repro.workload.scenarios import generate_chain_history, generate_forked_history


def _history_family():
    """Histories labelled by the strongest refinement that admits them."""
    families = []
    for seed in range(4):
        families.append(("SC", generate_chain_history(n_processes=3, chain_length=12, seed=seed)))
        families.append(("EC", generate_forked_history(branch_length=6, resolve=True, seed=seed)))
    return families


def test_hierarchy_edges_match_strength_relation(benchmark):
    hierarchy = benchmark(refinement_hierarchy)
    for stronger, weaker_set in hierarchy.items():
        for weaker in weaker_set:
            assert is_weaker_or_equal(weaker, stronger)
    # The strongest vertex reaches every other vertex (Figure 8's apex).
    apex = Refinement.sc_frugal(1)
    assert len(hierarchy[apex]) == len(hierarchy) - 1


def test_history_families_respect_the_inclusion(benchmark):
    families = _history_family()

    def classify_all():
        verdicts = []
        for label, history in families:
            verdicts.append(
                (
                    label,
                    check_strong_consistency(history).holds,
                    check_eventual_consistency(history).holds,
                )
            )
        return verdicts

    verdicts = benchmark(classify_all)
    for label, sc, ec in verdicts:
        if label == "SC":
            assert sc and ec           # SC histories sit in both sets
        else:
            assert ec and not sc       # EC-only histories witness the strictness


def test_strongest_vertex_histories_accepted_everywhere(benchmark):
    history = generate_chain_history(n_processes=2, chain_length=15, seed=9)

    def check_everywhere():
        return (
            check_strong_consistency(history).holds,
            check_eventual_consistency(history).holds,
        )

    sc, ec = benchmark(check_everywhere)
    assert sc and ec
