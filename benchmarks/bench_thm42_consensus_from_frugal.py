"""Theorem 4.2 — Θ_{F,k=1} has consensus number ∞.

Runs Protocol A (Figure 11) for n ∈ {2, 4, 8, 16} processes under random
adversarial schedules and crash injections, asserting Agreement, Validity,
Integrity and Termination every time, and timing the full consensus
instance per n.
"""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.concurrent.consensus_object import check_consensus_properties
from repro.concurrent.reductions import CASFromConsumeToken, OracleConsensus
from repro.concurrent.scheduler import Scheduler
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle


def _consensus_instance(n: int):
    family = TapeFamily()
    processes = [f"p{i}" for i in range(n)]
    for p in processes:
        family.set_tape(p, DeterministicTape([True]))
    return OracleConsensus(FrugalOracle(k=1, tapes=family)), processes


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_consensus_for_n_processes_under_random_schedules(benchmark, n):
    def run_instance():
        consensus, processes = _consensus_instance(n)
        scheduler = Scheduler(seed=n, strategy="random")
        for p in processes:
            scheduler.spawn(
                p, consensus.propose_steps(p, Block(f"blk_{p}", GENESIS_ID, creator=p))
            )
        result = scheduler.run()
        return consensus, processes, result

    consensus, processes, result = benchmark(run_instance)
    decisions = {result.results[p].block_id for p in processes}
    assert len(decisions) == 1
    check_consensus_properties(consensus, validator=lambda v: v.token is not None)


def test_consensus_survives_crashes_of_all_but_one(benchmark):
    def run_instance():
        consensus, processes = _consensus_instance(6)
        scheduler = Scheduler(strategy="round_robin")
        for p in processes:
            scheduler.spawn(
                p, consensus.propose_steps(p, Block(f"blk_{p}", GENESIS_ID, creator=p))
            )
        for p in processes[:-1]:
            scheduler.crash(p)
        result = scheduler.run()
        return consensus, processes, result

    consensus, processes, result = benchmark(run_instance)
    survivor = processes[-1]
    assert survivor in result.results
    check_consensus_properties(consensus, correct_processes=(survivor,))


def test_cas_emulation_cost(benchmark):
    """The Figure 10 CAS built from consumeToken (Theorem 4.1)."""

    def run_instance():
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([True]))
        family.set_tape("q", DeterministicTape([True]))
        oracle = FrugalOracle(k=1, tapes=family)
        cas = CASFromConsumeToken(oracle, GENESIS_ID)
        first = oracle.get_token(GENESIS_ID, Block("x", GENESIS_ID), process="p")
        second = oracle.get_token(GENESIS_ID, Block("y", GENESIS_ID), process="q")
        return cas.compare_and_swap(first, process="p"), cas.compare_and_swap(second, process="q")

    won, lost = benchmark(run_instance)
    assert won == ()
    assert [b.block_id for b in lost] == ["x"]
