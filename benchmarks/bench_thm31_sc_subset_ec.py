"""Theorem 3.1 — H_SC ⊂ H_EC.

Generates a family of SC histories and checks every one against the EC
criterion (the inclusion), plus an EC-but-not-SC witness (the strictness),
timing the double classification of the whole family.
"""

from __future__ import annotations

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.workload.scenarios import generate_chain_history, generate_forked_history


def test_every_sc_history_in_the_family_is_ec(benchmark):
    histories = [
        generate_chain_history(n_processes=3, chain_length=10, reads_per_process=6, seed=s)
        for s in range(8)
    ]

    def check_family():
        return [
            (check_strong_consistency(h).holds, check_eventual_consistency(h).holds)
            for h in histories
        ]

    verdicts = benchmark(check_family)
    assert all(sc and ec for sc, ec in verdicts)


def test_inclusion_is_strict(benchmark):
    witnesses = [generate_forked_history(branch_length=5, resolve=True, seed=s) for s in range(4)]

    def check_witnesses():
        return [
            (check_strong_consistency(h).holds, check_eventual_consistency(h).holds)
            for h in witnesses
        ]

    verdicts = benchmark(check_witnesses)
    assert all(ec and not sc for sc, ec in verdicts)
