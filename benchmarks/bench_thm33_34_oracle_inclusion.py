"""Theorems 3.3 / 3.4 — oracle history inclusion.

Replays the same consume workload under Θ_F(k1), Θ_F(k2) with k1 ≤ k2 and
Θ_P, and checks that the sets of successfully appended blocks nest —
which is the executable content of Ĥ^{R(BT,Θ_F,k1)} ⊆ Ĥ^{R(BT,Θ_F,k2)} ⊆
Ĥ^{R(BT,Θ_P)}.
"""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle

WORKLOAD = [(f"parent{i % 5}", f"blk{i}") for i in range(100)]


def _replay(oracle):
    accepted = set()
    for parent, name in WORKLOAD:
        validated = oracle.get_token(parent, Block(name, GENESIS_ID, creator="p"), process="p")
        consumed = oracle.consume_token(validated, process="p")
        if any(v.block_id == name for v in consumed):
            accepted.add(name)
    return accepted


def _oracle(k):
    family = TapeFamily()
    family.set_tape("p", DeterministicTape([True]))
    return ProdigalOracle(tapes=family) if k is None else FrugalOracle(k=k, tapes=family)


@pytest.mark.parametrize("k1,k2", [(1, 2), (2, 4), (1, 8)])
def test_accepted_blocks_nest_with_k(benchmark, k1, k2):
    def workload():
        return _replay(_oracle(k1)), _replay(_oracle(k2)), _replay(_oracle(None))

    small, large, prodigal = benchmark(workload)
    assert small <= large <= prodigal
    assert len(small) == 5 * k1
    assert len(large) == 5 * k2
    assert len(prodigal) == len(WORKLOAD)


def test_prodigal_accepts_strictly_more_than_any_finite_k(benchmark):
    def workload():
        return _replay(_oracle(4)), _replay(_oracle(None))

    frugal, prodigal = benchmark(workload)
    assert frugal < prodigal
