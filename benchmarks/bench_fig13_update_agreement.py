"""Figure 13 — the Update Agreement properties R1–R3.

Regenerates the Figure 13 history (one update disseminated to all
processes, with its send/receive/update events) both hand-built and from
an actual network run, and times the R1–R3 checker.
"""

from __future__ import annotations

from repro.network.channels import SynchronousChannel
from repro.network.update_agreement import (
    check_light_reliable_communication,
    check_update_agreement,
)
from repro.protocols.nakamoto import run_bitcoin
from repro.workload.scenarios import figure13_history


def test_figure13_history_satisfies_update_agreement(benchmark):
    history = figure13_history()
    result = benchmark(check_update_agreement, history, ("i", "j", "k"))
    assert result.holds


def test_dropped_receiver_violates_r3(benchmark):
    history = figure13_history(drop_for=["k"])
    result = benchmark(check_update_agreement, history, ("i", "j", "k"))
    assert not result.r3_holds


def test_update_agreement_on_a_real_protocol_run(benchmark):
    run = run_bitcoin(
        n=4, duration=100.0, token_rate=0.3, seed=51,
        channel=SynchronousChannel(delta=1.0, seed=51),
    )
    result = benchmark(
        check_update_agreement,
        run.history,
        run.correct_replicas,
        run.block_creators(),
    )
    assert result.holds
    assert check_light_reliable_communication(run.history, run.correct_replicas).holds
