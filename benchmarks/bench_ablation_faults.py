"""Ablation A4 — resilience to process faults (extension).

Fault-injection companion to the Section 4.2 failure model: sweeps the
number of silent Byzantine members in a 7-member committee system and the
number of crashed miners in a proof-of-work system, and records whether
the *correct* replicas keep their consistency guarantee and keep making
progress.  Faults are part of the declarative :class:`ExperimentSpec`
(``FaultSpec``), which routes the run to the registered fault runner.

Expected shape: the committee system keeps Strong Consistency and keeps
committing while f ≤ 2 (below the 2/3-quorum slack of n = 7) and halts —
but never becomes inconsistent — at f ≥ 3; the proof-of-work system keeps
Eventual Consistency among correct replicas regardless of miner crashes,
merely producing fewer blocks.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.engine import ExperimentSpec, FaultSpec

BYZANTINE_COUNTS = (0, 1, 2, 3)


def _committee_with_f(f: int, seed: int = 121):
    byzantine = tuple(f"p{6 - i}" for i in range(f))
    spec = ExperimentSpec(
        protocol="committee",
        replicas=7,
        duration=120.0,
        seed=seed,
        fault=FaultSpec(kind="byzantine", byzantine=byzantine),
        label=f"byzantine={f}",
    )
    run = spec.execute().run
    history = run.history.correct_restriction(run.correct_replicas).without_failed_appends()
    committed = sum(run.replicas[p].blocks_committed for p in run.correct_replicas)
    return check_strong_consistency(history).holds, committed


def test_byzantine_sweep_committee(once):
    def sweep():
        return {f: _committee_with_f(f) for f in BYZANTINE_COUNTS}

    results = once(sweep)
    rows = [[f, sc, committed] for f, (sc, committed) in results.items()]
    print()
    print(render_table(
        ["silent byzantine members (of 7)", "strong consistency (correct replicas)", "blocks committed"],
        rows,
        title="Ablation A4 — committee resilience to silent Byzantine members",
    ))
    # Safety is never lost, whatever f.
    assert all(sc for sc, _ in results.values())
    # Liveness holds below the quorum slack and is lost beyond it.
    assert results[0][1] > 0 and results[2][1] > 0
    assert results[3][1] == 0


def test_crash_sweep_bitcoin(once):
    def sweep():
        outcomes = {}
        for crashed in (0, 1, 2):
            crash_at = {f"p{4 - i}": 30.0 for i in range(crashed)}
            spec = ExperimentSpec(
                protocol="bitcoin",
                replicas=5,
                duration=120.0,
                seed=122,
                fault=FaultSpec(kind="crash", crash_at=crash_at),
                params={"token_rate": 0.3},
                label=f"crashed={crashed}",
            )
            run = spec.execute().run
            history = run.history.correct_restriction(run.correct_replicas)
            ec = check_eventual_consistency(history.without_failed_appends()).holds
            blocks = sum(run.replicas[p].blocks_created for p in run.correct_replicas)
            outcomes[crashed] = (ec, blocks)
        return outcomes

    outcomes = once(sweep)
    rows = [[crashed, ec, blocks] for crashed, (ec, blocks) in outcomes.items()]
    print()
    print(render_table(
        ["crashed miners (of 5)", "eventual consistency (correct replicas)", "blocks by correct miners"],
        rows,
        title="Ablation A4 — proof-of-work resilience to crashes",
    ))
    assert all(ec for ec, _ in outcomes.values())
    assert all(blocks > 0 for _, blocks in outcomes.values())


@pytest.mark.parametrize("f", [0, 2])
def test_single_byzantine_configuration(once, f):
    sc, committed = once(_committee_with_f, f, 123)
    assert sc
    assert committed > 0
