"""Theorem 3.2 — k-Fork Coherence of the Θ_F composition.

Sweeps the frugal bound k ∈ {1, 2, 4, 8}, hammers each oracle with far
more consume attempts than its bound, and asserts |K[h]| never exceeds k.
The timed operation is the full attempt/consume/verify loop per k.
"""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle

ATTEMPTS_PER_PARENT = 50
PARENTS = [GENESIS_ID, "p1", "p2", "p3"]


def _hammer(oracle):
    for parent in PARENTS:
        for i in range(ATTEMPTS_PER_PARENT):
            validated = oracle.get_token(
                parent, Block(f"{parent}_blk{i}", GENESIS_ID, creator="p"), process="p"
            )
            oracle.consume_token(validated, process="p")
    return check_fork_coherence_from_oracle(oracle)


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_frugal_oracle_never_exceeds_its_bound(benchmark, k):
    def workload():
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([True]))
        return _hammer(FrugalOracle(k=k, tapes=family))

    result = benchmark(workload)
    assert result.holds
    assert result.max_forks == k


def test_prodigal_oracle_consumes_every_attempt(benchmark):
    def workload():
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([True]))
        return _hammer(ProdigalOracle(tapes=family))

    result = benchmark(workload)
    assert result.holds  # bound is infinite
    assert result.max_forks == ATTEMPTS_PER_PARENT
