"""Figure 2 — a history satisfying BT Strong Consistency.

Regenerates the exact history of Figure 2 and a family of randomized
fork-free histories, asserts the SC verdict and times the SC checker
(whose pairwise Strong-Prefix comparison is the quadratic hot path).
"""

from __future__ import annotations

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.workload.scenarios import figure2_history, generate_chain_history


def test_figure2_history_is_strongly_consistent(benchmark):
    history = figure2_history()
    report = benchmark(check_strong_consistency, history)
    assert report.holds
    # Theorem 3.1: it is therefore also eventually consistent.
    assert check_eventual_consistency(history).holds


def test_sc_checker_on_large_fork_free_history(benchmark):
    history = generate_chain_history(
        n_processes=4, chain_length=60, reads_per_process=30, seed=2
    )
    report = benchmark(check_strong_consistency, history)
    assert report.holds


def test_sc_checker_scaling_many_reads(benchmark):
    history = generate_chain_history(
        n_processes=8, chain_length=40, reads_per_process=40, seed=3
    )
    report = benchmark(check_strong_consistency, history)
    assert report.holds
