"""Ablation A5 — fairness (chain quality) versus merit skew (extension).

The paper leaves fairness as an open hook on the merit parameter; this
ablation instantiates it: sweep the Zipf exponent of the miners' merit
distribution in a Bitcoin-style run and measure each miner's share of the
blocks it contributed to the tree, relative to its merit.  The merit
distribution is part of the :class:`ExperimentSpec` workload, so the
engine both drives the run with it and evaluates the fairness report
against it.

Expected shape: with uniform merit every miner's share/merit ratio is
close to 1; as the skew grows the small miners' *absolute* share shrinks
(they mine less) but the proportionality to merit is preserved by the
merit-weighted oracle lottery, so the worst share/merit ratio stays well
above zero.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.engine import ChannelSpec, ExperimentSpec, WorkloadSpec

EXPONENTS = (0.0, 1.0, 2.0)


def _spec(exponent: float, seed: int = 131) -> ExperimentSpec:
    workload = (
        WorkloadSpec(merit="uniform")
        if exponent == 0.0
        else WorkloadSpec(merit="zipf", merit_exponent=exponent)
    )
    return ExperimentSpec(
        protocol="bitcoin",
        replicas=5,
        duration=200.0,
        seed=seed,
        channel=ChannelSpec(kind="synchronous", params={"delta": 1.0}),
        workload=workload,
        params={"token_rate": 0.4},
        label=f"zipf={exponent}",
    )


def _fairness_for(exponent: float, seed: int = 131):
    # Fairness is evaluated on a converged replica's tree (they all agree
    # after the drain, so any replica is representative).
    return _spec(exponent, seed).execute().fairness


def test_fairness_vs_merit_skew(once):
    def sweep():
        return {exponent: _fairness_for(exponent) for exponent in EXPONENTS}

    reports = once(sweep)
    rows = [
        [exponent, report["blocks_counted"], round(report["worst_ratio"], 2),
         round(max(report["ratios"].values()), 2)]
        for exponent, report in reports.items()
    ]
    print()
    print(render_table(
        ["zipf exponent", "blocks", "worst share/merit", "best share/merit"],
        rows,
        title="Ablation A5 — chain quality vs merit skew",
    ))
    for exponent, report in reports.items():
        assert report["blocks_counted"] > 10
        # Proportionality: nobody is starved to less than a third of its
        # merit-entitled share, and nobody grabs more than 3x its share.
        assert report["worst_ratio"] > 0.3, f"exponent {exponent}: {report['describe']}"
        assert max(report["ratios"].values()) < 3.0


@pytest.mark.parametrize("exponent", EXPONENTS)
def test_single_skew_configuration(once, exponent):
    report = once(_fairness_for, exponent, 132)
    assert report["worst_ratio"] > 0.2
