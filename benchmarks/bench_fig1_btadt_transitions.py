"""Figure 1 — the BT-ADT transition system.

Regenerates the transition path of Figure 1 (valid appends advance the
state and output ``true``, invalid appends leave it unchanged and output
``false``, reads return ``{b0}⌢f(bt)``) and measures the cost of the
append/read operations and of sequential-specification membership checks.
"""

from __future__ import annotations

from repro.core.adt import Operation, is_sequential_history
from repro.core.block import GENESIS_ID, Block, BlockIdFactory
from repro.core.bt_adt import BTADT, BlockTreeObject
from repro.core.validity import MembershipValidity


def _figure1_operations():
    b1, b2, b3 = Block("b1", GENESIS_ID), Block("b2", "b1"), Block("b3", GENESIS_ID)
    return [
        Operation.with_output("append", b1, True),
        Operation.with_output("read", None, (GENESIS_ID, "b1")),
        Operation.with_output("append", b3, False),
        Operation.with_output("append", b2, True),
        Operation.with_output("read", None, (GENESIS_ID, "b1", "b2")),
    ]


def test_figure1_path_membership(benchmark):
    """The Figure 1 word belongs to L(BT-ADT); membership check timed."""
    adt = BTADT(predicate=MembershipValidity.of(["b1", "b2"]))
    operations = _figure1_operations()
    accepted = benchmark(is_sequential_history, adt, operations)
    assert accepted is True


def test_append_read_throughput(benchmark):
    """Raw cost of 500 appends + 500 reads on the stateful BT-ADT object."""
    ids = BlockIdFactory()

    def workload() -> int:
        obj = BlockTreeObject()
        tip = GENESIS_ID
        for _ in range(500):
            block = ids.make_block(tip)
            assert obj.append(block)
            tip = obj.read().tip.block_id
        return obj.read().length

    length = benchmark(workload)
    assert length == 500


def test_invalid_appends_are_rejected_cheaply(benchmark):
    """Appends of invalid blocks output false and never grow the tree."""
    predicate = MembershipValidity.of([])

    def workload() -> int:
        obj = BlockTreeObject(predicate=predicate)
        rejected = 0
        for i in range(500):
            if not obj.append(Block(f"bad{i}", GENESIS_ID)):
                rejected += 1
        return rejected

    rejected = benchmark(workload)
    assert rejected == 500
