"""Theorems 4.6 / 4.7 — Update Agreement and LRC are necessary for EC.

Sweeps the message drop probability over a Bitcoin-style run (without the
LRC relay, so lost copies are never recovered) and records, per drop rate,
whether Update Agreement / LRC / Eventual Consistency survive.  The
expected shape: at drop 0 everything holds; once updates actually go
missing, R3/Agreement break and Eventual Consistency breaks with them —
never the other way around (EC broken while Update Agreement holds).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.core.consistency import check_eventual_consistency
from repro.network.channels import LossyChannel, SynchronousChannel
from repro.network.update_agreement import (
    check_light_reliable_communication,
    check_update_agreement,
)
from repro.protocols.nakamoto import run_bitcoin

DROP_RATES = (0.0, 0.2, 0.5, 0.8, 0.95)


def _run_with_drop(drop: float, seed: int = 71):
    channel = LossyChannel(SynchronousChannel(delta=1.0, seed=seed), drop, seed=seed)
    run = run_bitcoin(
        n=4, duration=120.0, token_rate=0.35, seed=seed, channel=channel, use_lrc=False
    )
    agreement = check_update_agreement(
        run.history, processes=run.correct_replicas, block_creators=run.block_creators()
    )
    lrc = check_light_reliable_communication(run.history, run.correct_replicas)
    ec = check_eventual_consistency(run.history.without_failed_appends())
    return agreement, lrc, ec


def test_drop_rate_sweep_shape(once):
    def sweep():
        return {drop: _run_with_drop(drop) for drop in DROP_RATES}

    results = once(sweep)
    rows = [
        [drop, agreement.holds, lrc.holds, ec.holds]
        for drop, (agreement, lrc, ec) in results.items()
    ]
    print()
    print(render_table(
        ["drop", "update-agreement", "LRC", "eventual-consistency"],
        rows,
        title="Theorem 4.6/4.7 — loss sweep (flooding without relay)",
    ))
    # Reliable extreme: everything holds.
    agreement0, lrc0, ec0 = results[0.0]
    assert agreement0.holds and lrc0.holds and ec0.holds
    # Heavy-loss extreme: update agreement is broken.
    agreement_hi, lrc_hi, _ = results[DROP_RATES[-1]]
    assert not agreement_hi.holds
    assert not lrc_hi.holds
    # Necessity direction: EC never survives the loss of update agreement's
    # R3 *and* divergence — i.e. we never observe EC broken while update
    # agreement holds (the contrapositive of Theorem 4.6).
    for drop, (agreement, _, ec) in results.items():
        if not ec.holds:
            assert not agreement.holds, f"EC broken but Update Agreement intact at drop={drop}"


@pytest.mark.parametrize("drop", [0.0, 0.8])
def test_single_drop_rate_run(once, drop):
    agreement, lrc, ec = once(_run_with_drop, drop, 72)
    if drop == 0.0:
        assert agreement.holds and lrc.holds and ec.holds
    else:
        assert not agreement.holds
