#!/usr/bin/env python3
"""Bitcoin vs Hyperledger Fabric: the Table 1 classification, live.

Runs the two extreme systems of the paper's Table 1 on the same
message-passing substrate — a proof-of-work system over the prodigal
oracle and a permissioned ordering service over the frugal k = 1 oracle —
and shows where they land in the refinement hierarchy, how many forks
each produced, and how their replicas converged.

Run with:  python examples/bitcoin_vs_hyperledger.py
"""

from __future__ import annotations

from repro.analysis.convergence import convergence_summary
from repro.analysis.forks import fork_statistics, merge_statistics
from repro.analysis.report import render_table
from repro.network.channels import SynchronousChannel
from repro.protocols.classification import classify_run
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.nakamoto import run_bitcoin


def main() -> None:
    print("Running the Bitcoin model (prodigal oracle, heaviest chain, flooding)...")
    bitcoin = run_bitcoin(
        n=6,
        duration=150.0,
        token_rate=0.4,
        seed=7,
        channel=SynchronousChannel(delta=3.0, min_delay=0.5, seed=7),
    )
    print("Running the Hyperledger Fabric model (frugal k=1 oracle, fixed orderer)...")
    fabric = run_hyperledger(n=6, duration=150.0, seed=7)

    rows = []
    for run in (bitcoin, fabric):
        classification = classify_run(run)
        forks = merge_statistics(
            {pid: fork_statistics(r.tree) for pid, r in run.replicas.items()}
        )
        convergence = convergence_summary(run.final_chains())
        rows.append(
            [
                run.name,
                classification.refinement.label() if classification.refinement else "(none)",
                "yes" if classification.matches_paper else "NO",
                round(forks["mean_forks"], 2),
                round(forks["mean_wasted_ratio"], 3),
                convergence.common_prefix_score,
            ]
        )

    print()
    print(
        render_table(
            [
                "system",
                "measured refinement",
                "matches Table 1",
                "forks/replica",
                "wasted ratio",
                "final common prefix",
            ],
            rows,
            title="Bitcoin vs Hyperledger Fabric",
        )
    )
    print()
    print("Reading of the result:")
    print("  * Bitcoin's validation maps to the prodigal oracle, so concurrent miners")
    print("    fork the tree; its histories satisfy Eventual but not Strong consistency.")
    print("  * Fabric's ordering service consumes a single token per height (k = 1):")
    print("    the tree stays a chain and the histories satisfy Strong consistency —")
    print("    exactly the two rows of the paper's Table 1.")


if __name__ == "__main__":
    main()
