#!/usr/bin/env python3
"""A tour of the refinement hierarchy (Figures 8 and 14).

Prints the full hierarchy of refined BlockTree ADTs, the consensus number
of each oracle, and the message-passing feasibility verdicts of Section 4,
then verifies the inclusions empirically on generated history families.

Run with:  python examples/hierarchy_tour.py
"""

from __future__ import annotations

import math

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.hierarchy import (
    Refinement,
    consensus_number,
    message_passing_hierarchy,
    refinement_hierarchy,
)
from repro.workload.scenarios import generate_chain_history, generate_forked_history


def print_hierarchy() -> None:
    print("=== Figure 8: the full hierarchy (a -> b means 'a is stronger than b') ===")
    for vertex, weaker in refinement_hierarchy().items():
        targets = ", ".join(w.label() for w in weaker) or "(bottom)"
        print(f"  {vertex.label():28s} -> {targets}")

    print("\n=== Oracles' consensus numbers (Theorems 4.2 / 4.3) ===")
    for refinement in (Refinement.sc_frugal(1), Refinement.ec_frugal(2), Refinement.ec_prodigal()):
        number = consensus_number(refinement)
        rendered = "∞" if number == math.inf else str(int(number))
        print(f"  {refinement.label():28s} consensus number {rendered}")

    print("\n=== Figure 14: what survives in a message-passing system (Theorem 4.8) ===")
    feasible = message_passing_hierarchy()
    for vertex in refinement_hierarchy():
        verdict = "implementable" if vertex in feasible else "IMPOSSIBLE (forks + Strong Prefix)"
        print(f"  {vertex.label():28s} {verdict}")


def verify_inclusions_empirically() -> None:
    print("\n=== Empirical check of the inclusions on generated histories ===")
    sc_histories = [generate_chain_history(n_processes=3, chain_length=10, seed=s) for s in range(3)]
    ec_histories = [generate_forked_history(branch_length=5, resolve=True, seed=s) for s in range(3)]
    assert all(check_strong_consistency(h).holds for h in sc_histories)
    assert all(check_eventual_consistency(h).holds for h in sc_histories)
    assert all(check_eventual_consistency(h).holds for h in ec_histories)
    assert not any(check_strong_consistency(h).holds for h in ec_histories)
    print("  every SC history is EC (Theorem 3.1), and the EC-only witnesses")
    print("  confirm the inclusion is strict.")


if __name__ == "__main__":
    print_hierarchy()
    verify_inclusions_empirically()
