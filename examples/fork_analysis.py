#!/usr/bin/env python3
"""Fork behaviour of a proof-of-work blockchain under varying conditions.

Sweeps the network delay and the oracle's fork bound k on a Bitcoin-style
workload and prints fork statistics and convergence metrics — the
quantitative counterpart of the paper's k-Fork Coherence theorem and of
the Eventual Prefix property.

Run with:  python examples/fork_analysis.py
"""

from __future__ import annotations

from repro.analysis.convergence import convergence_summary
from repro.analysis.forks import fork_statistics, merge_statistics
from repro.analysis.report import render_table
from repro.network.channels import SynchronousChannel
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle
from repro.protocols.nakamoto import run_bitcoin

DELAYS = (1.0, 2.0, 4.0)
BOUNDS = (1, 2, None)  # None = prodigal (Bitcoin proper)


def run_configuration(bound, delay, seed=5):
    tapes = TapeFamily(seed=seed, probability_scale=0.4)
    oracle = ProdigalOracle(tapes=tapes) if bound is None else FrugalOracle(k=bound, tapes=tapes)
    run = run_bitcoin(
        n=5,
        duration=150.0,
        token_rate=0.4,
        seed=seed,
        channel=SynchronousChannel(delta=delay, min_delay=delay / 4, seed=seed),
        oracle=oracle,
    )
    forks = merge_statistics({pid: fork_statistics(r.tree) for pid, r in run.replicas.items()})
    convergence = convergence_summary(run.final_chains())
    return forks, convergence


def main() -> None:
    rows = []
    for bound in BOUNDS:
        for delay in DELAYS:
            forks, convergence = run_configuration(bound, delay)
            rows.append(
                [
                    "∞" if bound is None else bound,
                    delay,
                    round(forks["mean_blocks"], 1),
                    round(forks["mean_forks"], 2),
                    round(forks["mean_wasted_ratio"], 3),
                    convergence.common_prefix_score,
                ]
            )
    print(
        render_table(
            ["k", "delay", "blocks/replica", "fork points/replica", "wasted ratio", "final common prefix"],
            rows,
            title="Fork behaviour vs oracle bound k and network delay",
        )
    )
    print()
    print("Observations (matching Theorem 3.2 and the Section 5 discussion):")
    print("  * k = 1 never forks, whatever the delay — that is the consensus regime;")
    print("  * with the prodigal oracle, forks (and wasted work) grow with the delay;")
    print("  * all configurations still converge after dissemination quiesces, which is")
    print("    the Eventual Prefix property at work.")


if __name__ == "__main__":
    main()
