#!/usr/bin/env python3
"""The synchronization power of the oracles (Section 4.1), executable.

Demonstrates the paper's two consensus-number results side by side:

* **Theorem 4.2** — the frugal oracle with k = 1 wait-free implements
  Consensus (Protocol A, Figure 11): every process, scheduled adversarially
  and even with crashes, decides the *same* oracle-validated block.
* **Theorem 4.3** — the prodigal oracle is implementable from an Atomic
  Snapshot (Figure 12): every consumer succeeds, nobody is forced to agree.

Run with:  python examples/consensus_from_oracle.py
"""

from __future__ import annotations

from repro.core.block import GENESIS_ID, Block
from repro.concurrent.consensus_object import check_consensus_properties
from repro.concurrent.reductions import OracleConsensus, SnapshotTokenStore
from repro.concurrent.scheduler import Scheduler
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle

PROCESSES = ["p0", "p1", "p2", "p3", "p4"]


def consensus_from_frugal_oracle() -> None:
    print("=== Protocol A: Consensus from Θ_F,k=1 (Theorem 4.2) ===")
    family = TapeFamily()
    for p in PROCESSES:
        family.set_tape(p, DeterministicTape([False, True]))  # succeed on the 2nd draw
    consensus = OracleConsensus(FrugalOracle(k=1, tapes=family))

    scheduler = Scheduler(seed=42, strategy="random")
    for p in PROCESSES:
        block = Block(f"block_of_{p}", GENESIS_ID, creator=p)
        scheduler.spawn(p, consensus.propose_steps(p, block))
    scheduler.crash("p4")  # one proposer crashes mid-protocol
    result = scheduler.run()

    print(f"  schedule length: {result.steps} steps, crashed: {result.crashed}")
    for p in PROCESSES[:-1]:
        print(f"  {p} proposed block_of_{p:3s} -> decided {result.results[p].block_id}")
    decided = {result.results[p].block_id for p in PROCESSES[:-1]}
    assert len(decided) == 1, "Agreement violated?!"
    check_consensus_properties(consensus, correct_processes=tuple(PROCESSES[:-1]))
    print("  Agreement, Validity, Integrity and Termination all hold.\n")


def prodigal_from_snapshot() -> None:
    print("=== Θ_P from Atomic Snapshot (Theorem 4.3) ===")
    store = SnapshotTokenStore(PROCESSES)
    for p in PROCESSES:
        view = store.consume_token(p, f"token_of_{p}")
        print(f"  {p} consumed its token; it sees {len(view)} token(s): {sorted(view)}")
    print(f"  final K[b0] holds {len(store.read_tokens())} tokens — every consumer succeeded,")
    print("  no single winner was ever imposed: the object has consensus number 1.")


if __name__ == "__main__":
    consensus_from_frugal_oracle()
    prodigal_from_snapshot()
