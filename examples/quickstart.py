#!/usr/bin/env python3
"""Quickstart: the BlockTree ADT, token oracles and consistency checkers.

Walks through the paper's core objects in a few dozen lines:

1. build a BlockTree and use the BT-ADT ``append``/``read`` operations;
2. replace the bare append with the oracle-refined append (Definition 3.7)
   under both the prodigal and the frugal (k = 1) oracle;
3. record a two-process concurrent history and check it against the
   BT Strong / BT Eventual consistency criteria.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.block import GENESIS_ID, Block
from repro.core.bt_adt import BlockTreeObject
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.history import HistoryRecorder
from repro.oracle.refinement import RefinedBTADT
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle


def plain_bt_adt() -> None:
    print("=== 1. The plain BT-ADT ===")
    obj = BlockTreeObject()
    for name in ("alpha", "beta", "gamma"):
        appended = obj.append(Block(name, GENESIS_ID))
        print(f"  append({name}) -> {appended}")
    print(f"  read() -> {obj.read()}")
    print(f"  tree:\n{_indent(obj.tree.to_ascii())}")


def refined_appends() -> None:
    print("\n=== 2. Oracle-refined appends (Definition 3.7) ===")
    tapes = TapeFamily(seed=1, probability_scale=0.5)
    tapes.register_merit("miner", 1.0)

    prodigal = RefinedBTADT(ProdigalOracle(tapes=tapes), process="miner")
    for i in range(3):
        outcome = prodigal.append_detailed(Block(f"pow{i}", GENESIS_ID, creator="miner"))
        print(f"  Θ_P append pow{i}: success={outcome.success} after {outcome.attempts} getToken draws")
    print(f"  Θ_P read() -> {prodigal.read()}")

    frugal = FrugalOracle(k=1, tapes=TapeFamily(seed=2, probability_scale=1.0))
    a = RefinedBTADT(frugal, process="alice")
    b = RefinedBTADT(frugal, process="bob")
    print(f"  Θ_F,k=1 — alice appends x: {a.append(Block('x', GENESIS_ID, creator='alice'))}")
    print(f"  Θ_F,k=1 — bob appends y on the same parent: {b.append(Block('y', GENESIS_ID, creator='bob'))}")
    print("  (the single token for b0 was already consumed: no fork is possible)")


def consistency_checking() -> None:
    print("\n=== 3. Concurrent histories and consistency criteria ===")
    recorder = HistoryRecorder()
    alice = BlockTreeObject(recorder=recorder, process="alice")
    bob = BlockTreeObject(recorder=recorder, process="bob")

    # Alice and Bob share no state here: each grows its own replica, which
    # is exactly how divergence (a fork) shows up in the recorded history.
    alice.append(Block("a1", GENESIS_ID, creator="alice"))
    bob.append(Block("b1", GENESIS_ID, creator="bob"))
    alice.read()
    bob.read()
    # They then reconcile on Alice's branch.
    bob.tree.append(Block("a1", GENESIS_ID, creator="alice"))
    recorder.complete("bob", "read", None, alice.read_quiet())
    recorder.complete("alice", "read", None, alice.read_quiet())

    history = recorder.history()
    strong = check_strong_consistency(history)
    eventual = check_eventual_consistency(history)
    print(f"  history: {history}")
    print(f"  BT Strong Consistency:   {strong.holds}")
    for violation in strong.result_for("strong-prefix").violations[:1]:
        print(f"    e.g. {violation}")
    print(f"  BT Eventual Consistency: {eventual.holds}")


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


if __name__ == "__main__":
    plain_bt_adt()
    refined_appends()
    consistency_checking()
