"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. a fresh offline checkout where ``pip install -e .`` cannot
build an editable wheel); an installed ``repro`` always takes precedence.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))
