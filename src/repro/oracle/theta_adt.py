"""Pure transducer view of the token oracles (Definitions 3.5–3.6, Figure 6).

:mod:`repro.oracle.theta` provides the *stateful* oracle objects the rest
of the library calls; this module provides the complementary *pure* view —
Θ_F as an :class:`~repro.core.adt.AbstractDataType` whose transition and
output functions operate on immutable state values — so that oracle
operation sequences can be checked for membership in the oracle's
sequential specification exactly like BT-ADT words are (Figure 6 draws one
such path).

The abstract state mirrors the paper's Figure 5: a map of per-merit tapes
(represented by their *remaining* scripted cells, since only the prefix a
finite word consumes matters) and the array ``K`` of consumed-token sets,
plus the bound ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.adt import AbstractDataType, InputSymbol

__all__ = ["ThetaState", "GetToken", "ConsumeToken", "ThetaADT", "ProdigalADT"]

GET_TOKEN = "getToken"
CONSUME_TOKEN = "consumeToken"


@dataclass(frozen=True)
class GetToken:
    """Argument of a ``getToken(obj_h, obj_ℓ)`` symbol.

    ``process`` selects the invoking merit's tape (the oracle knows the
    invoker's merit α_i even if the process itself does not).
    """

    parent: str
    obj: str
    process: str


@dataclass(frozen=True)
class ConsumeToken:
    """Argument of a ``consumeToken(obj_ℓ^{tkn_h})`` symbol."""

    parent: str
    obj: str


@dataclass(frozen=True)
class ThetaState:
    """Immutable oracle state ``({tape_{α_i}}, K, k)``.

    ``tapes`` maps a process (standing for its merit α) to the tuple of
    *remaining* scripted cells of its tape, head first; ``consumed`` is the
    array ``K`` restricted to the parents touched so far.
    """

    tapes: Mapping[str, Tuple[bool, ...]]
    consumed: Mapping[str, FrozenSet[str]]
    k: float

    def tape_head(self, process: str) -> bool:
        """Head cell of ``process``'s tape (an exhausted tape yields ⊥)."""
        cells = self.tapes.get(process, ())
        return bool(cells[0]) if cells else False

    def bucket(self, parent: str) -> FrozenSet[str]:
        """Current content of ``K[parent]``."""
        return self.consumed.get(parent, frozenset())


class ThetaADT(AbstractDataType[ThetaState]):
    """Θ_F as a pure abstract data type.

    Parameters
    ----------
    k:
        The fork bound (``math.inf`` for Θ_P; :class:`ProdigalADT` is the
        convenience subclass).
    tapes:
        The scripted tape of each process, as a sequence of booleans
        (``True`` = the cell holds ``tkn``).  Pure replay needs the whole
        lottery fixed up front; randomized tapes belong to the stateful
        oracle.
    """

    def __init__(self, k: float = 1, tapes: Optional[Mapping[str, Tuple[bool, ...]]] = None) -> None:
        if not (k == math.inf or k >= 1):
            raise ValueError("k must be >= 1 or infinite")
        self._k = k
        self._tapes: Dict[str, Tuple[bool, ...]] = {
            process: tuple(bool(c) for c in cells) for process, cells in (tapes or {}).items()
        }

    # -- AbstractDataType interface ------------------------------------------------

    def initial_state(self) -> ThetaState:
        return ThetaState(tapes=dict(self._tapes), consumed={}, k=self._k)

    def transition(self, state: ThetaState, symbol: InputSymbol) -> ThetaState:
        if symbol.name == GET_TOKEN:
            request = _as_get(symbol.argument)
            cells = state.tapes.get(request.process, ())
            new_tapes = dict(state.tapes)
            new_tapes[request.process] = cells[1:] if cells else ()
            return replace(state, tapes=new_tapes)
        if symbol.name == CONSUME_TOKEN:
            request = _as_consume(symbol.argument)
            bucket = state.bucket(request.parent)
            if request.obj not in bucket and len(bucket) < state.k:
                new_consumed = dict(state.consumed)
                new_consumed[request.parent] = bucket | {request.obj}
                return replace(state, consumed=new_consumed)
            return state
        raise ValueError(f"unknown oracle symbol {symbol.name!r}")

    def output(self, state: ThetaState, symbol: InputSymbol) -> Any:
        if symbol.name == GET_TOKEN:
            request = _as_get(symbol.argument)
            if state.tape_head(request.process):
                # The validated object obj_ℓ^{tkn_h}, identified textually.
                return f"{request.obj}^tkn_{request.parent}"
            return None
        if symbol.name == CONSUME_TOKEN:
            request = _as_consume(symbol.argument)
            bucket = state.bucket(request.parent)
            if request.obj not in bucket and len(bucket) < state.k:
                bucket = bucket | {request.obj}
            return frozenset(bucket)
        raise ValueError(f"unknown oracle symbol {symbol.name!r}")


class ProdigalADT(ThetaADT):
    """Θ_P as a pure ADT: Θ_F with ``k = ∞`` (Definition 3.6)."""

    def __init__(self, tapes: Optional[Mapping[str, Tuple[bool, ...]]] = None) -> None:
        super().__init__(k=math.inf, tapes=tapes)


def _as_get(argument: Any) -> GetToken:
    if isinstance(argument, GetToken):
        return argument
    raise TypeError(f"getToken expects a GetToken argument, got {type(argument)!r}")


def _as_consume(argument: Any) -> ConsumeToken:
    if isinstance(argument, ConsumeToken):
        return argument
    raise TypeError(f"consumeToken expects a ConsumeToken argument, got {type(argument)!r}")
