"""Merit tapes: the oracle's source of token lotteries.

For each merit value ``α_i`` the oracle's state contains an infinite tape
over ``{tkn, ⊥}`` whose cells form "a pseudorandom sequence mostly
indistinguishable from a Bernoulli sequence" with success probability
``p_{α_i}`` (Section 3.2.1, footnote 3).  ``getToken`` pops the head of
the invoking process's tape and succeeds iff the popped cell contains
``tkn``.

The merit parameter abstracts the invoking process's "power" — hashing
power in Bitcoin, memory bandwidth in Ethereum, stake in Algorand — and
the mapping merit → success probability is a parameter of the model
(:class:`TapeFamily.probability_of`).

Implementations:

* :class:`MeritTape` — lazily evaluated Bernoulli tape driven by a seeded
  :class:`numpy.random.Generator` (deterministic given the seed);
* :class:`DeterministicTape` — an explicitly scripted tape, used by unit
  tests and by the worked examples that need full control of the lottery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["TOKEN", "BOTTOM", "MeritTape", "DeterministicTape", "TapeFamily"]

#: The tape symbol meaning "a token is granted".
TOKEN = "tkn"
#: The tape symbol meaning "no token this time" (the paper's ⊥).
BOTTOM = "⊥"


class MeritTape:
    """Infinite Bernoulli tape for one merit value.

    Cells are generated lazily in blocks of ``block_size`` draws so that
    protocol runs performing millions of ``getToken`` calls stay in NumPy
    rather than paying one RNG call per draw.

    Parameters
    ----------
    probability:
        Success probability ``p_α`` of each cell containing :data:`TOKEN`.
        Must lie in ``(0, 1]``: the paper requires ``p_{α_i} > 0`` so that
        every process eventually obtains a token.
    seed:
        Seed of the underlying generator; two tapes with the same seed and
        probability produce identical sequences.
    """

    def __init__(self, probability: float, seed: int = 0, block_size: int = 1024) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"token probability must be in (0, 1], got {probability}")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.probability = float(probability)
        self._rng = np.random.default_rng(seed)
        self._block_size = block_size
        self._buffer: List[bool] = []
        self._position = 0  # number of cells popped so far

    def _refill(self) -> None:
        draws = self._rng.random(self._block_size) < self.probability
        self._buffer.extend(bool(x) for x in draws)

    def head(self) -> str:
        """Peek at the current head cell without consuming it."""
        if not self._buffer:
            self._refill()
        return TOKEN if self._buffer[0] else BOTTOM

    def pop(self) -> str:
        """Consume and return the head cell (the oracle's ``pop``)."""
        value = self.head()
        self._buffer.pop(0)
        self._position += 1
        return value

    @property
    def cells_consumed(self) -> int:
        """Number of cells popped so far (used by fairness analyses)."""
        return self._position


class DeterministicTape:
    """A tape whose cells are scripted explicitly.

    ``pattern`` is any iterable of booleans / tape symbols; once the
    pattern is exhausted the tape repeats its ``tail`` value (default: keep
    granting tokens, which keeps worked examples terminating).
    """

    def __init__(self, pattern: Sequence[object], tail: bool = True) -> None:
        self._cells: List[bool] = [self._coerce(c) for c in pattern]
        self._tail = bool(tail)
        self._position = 0
        self.probability = 1.0 if tail else 0.0

    @staticmethod
    def _coerce(cell: object) -> bool:
        if isinstance(cell, bool):
            return cell
        if cell == TOKEN:
            return True
        if cell == BOTTOM:
            return False
        raise ValueError(f"unrecognized tape cell {cell!r}")

    def head(self) -> str:
        if self._position < len(self._cells):
            return TOKEN if self._cells[self._position] else BOTTOM
        return TOKEN if self._tail else BOTTOM

    def pop(self) -> str:
        value = self.head()
        self._position += 1
        return value

    @property
    def cells_consumed(self) -> int:
        return self._position


@dataclass
class TapeFamily:
    """The oracle's map ``m(α_i) -> tape_{α_i}`` (one tape per merit).

    Merit values are identified by the invoking process identifier; the
    merit assignment itself (process → α) lives in
    :mod:`repro.workload.merit`.  ``probability_scale`` converts a merit
    ``α`` into the per-draw success probability ``p_α``; the default is
    the identity clipped to ``(ε, 1]`` which matches the normalized-merit
    convention (``Σ α_p = 1``) used throughout Section 5.

    Explicitly registered tapes (:meth:`set_tape`) take precedence over
    generated ones, which is how tests inject :class:`DeterministicTape`.
    """

    seed: int = 0
    probability_scale: float = 1.0
    min_probability: float = 1e-6
    _tapes: Dict[str, object] = field(default_factory=dict)
    _merits: Dict[str, float] = field(default_factory=dict)

    def register_merit(self, process: str, merit: float) -> None:
        """Declare the merit ``α`` of ``process`` (idempotent)."""
        if merit < 0:
            raise ValueError("merit must be non-negative")
        self._merits[process] = float(merit)

    def merit_of(self, process: str) -> float:
        """Merit of ``process`` (defaults to 1.0 when never registered)."""
        return self._merits.get(process, 1.0)

    def probability_of(self, process: str) -> float:
        """Per-draw token probability ``p_α`` for ``process``."""
        p = self.merit_of(process) * self.probability_scale
        return float(min(1.0, max(self.min_probability, p)))

    def set_tape(self, process: str, tape: object) -> None:
        """Install an explicit tape for ``process`` (tests, worked examples)."""
        self._tapes[process] = tape

    def tape_of(self, process: str) -> object:
        """Return (creating lazily) the tape of ``process``."""
        if process not in self._tapes:
            # Stable per-process sub-seed (independent of interpreter hash
            # randomization) so runs are reproducible regardless of the order
            # in which processes first call the oracle.
            sub_seed = (zlib.crc32(process.encode("utf-8")) & 0xFFFF_FFFF) ^ self.seed
            self._tapes[process] = MeritTape(self.probability_of(process), seed=sub_seed)
        return self._tapes[process]

    def draw(self, process: str) -> bool:
        """Pop the head of ``process``'s tape; ``True`` iff it holds a token."""
        return self.tape_of(process).pop() == TOKEN

    def processes(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._merits) | set(self._tapes)))
