"""The refinement R(BT-ADT, Θ) (Definition 3.7, Figure 7).

The refinement replaces the BT-ADT's bare ``append(b)`` with the oracle
protocol:

1. repeatedly invoke ``getToken(last_block(f(bt)), b)`` until the oracle
   grants a token (``τ_b ∘ τ_a*`` in the paper's notation);
2. invoke ``consumeToken(b^{tkn_h})``;
3. the block is inserted under ``b_h`` in the BlockTree iff its token was
   actually consumed (i.e. it appears in the returned ``K[h]`` set), and
   the ``append`` output is the paper's ``evaluate`` of that outcome.

The paper stipulates that the ``getToken``/``consumeToken``/concatenation
sequence of a single append "occur atomically"; in this single-threaded
model atomicity is automatic (the protocol models introduce concurrency
explicitly through the simulator, where each replica's append is a single
simulator action).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.block import Block, Blockchain
from repro.core.blocktree import BlockTree
from repro.core.history import HistoryRecorder
from repro.core.selection import LongestChain, SelectionFunction
from repro.core.validity import AlwaysValid, ValidityPredicate
from repro.oracle.theta import TokenOracle, ValidatedBlock

__all__ = ["AppendOutcome", "RefinedBTADT"]


@dataclass(frozen=True)
class AppendOutcome:
    """Detailed outcome of a refined append (useful to tests and analyses)."""

    success: bool
    attempts: int
    validated: Optional[ValidatedBlock]
    parent_id: Optional[str]

    def __bool__(self) -> bool:
        return self.success


class RefinedBTADT:
    """BT-ADT whose ``append`` is implemented through a token oracle.

    Parameters
    ----------
    oracle:
        The Θ oracle (frugal or prodigal) controlling validation and forks.
    selection, predicate, genesis:
        The BT-ADT parameters; the predicate is still applied to the
        oracle-validated block (the oracle guarantees membership in ``B'``
        for its own notion of validity, and the predicate lets callers add
        application-level constraints on top).
    recorder, process:
        Optional history recording, as for
        :class:`repro.core.bt_adt.BlockTreeObject`.
    max_token_attempts:
        Bound on the number of ``getToken`` retries per append.  The paper
        loops "as long as it returns a token"; a finite bound keeps runs
        terminating when a test configures a zero-probability tape, and
        exceeding it makes the append fail (output ``False``).
    """

    def __init__(
        self,
        oracle: TokenOracle,
        selection: Optional[SelectionFunction] = None,
        predicate: Optional[ValidityPredicate] = None,
        genesis: Optional[Block] = None,
        recorder: Optional[HistoryRecorder] = None,
        process: Optional[str] = None,
        max_token_attempts: int = 10_000,
    ) -> None:
        if max_token_attempts < 1:
            raise ValueError("max_token_attempts must be at least 1")
        self.oracle = oracle
        self.selection = selection if selection is not None else LongestChain()
        self.predicate = predicate if predicate is not None else AlwaysValid()
        self.tree = BlockTree(genesis)
        self.max_token_attempts = max_token_attempts
        self._recorder = recorder
        self._process = process

    # -- operations --------------------------------------------------------------

    def read(self) -> Blockchain:
        """``read()``: unchanged by the refinement, returns ``{b0}⌢ f(bt)``."""
        op = self._invoke("read", None)
        chain = self.selection(self.tree)
        self._respond(op, chain)
        return chain

    def append(self, block: Block) -> bool:
        """The refined ``append``: ``getToken*; consumeToken``; insert on success."""
        return bool(self.append_detailed(block))

    def append_detailed(self, block: Block) -> AppendOutcome:
        """As :meth:`append` but returning the full :class:`AppendOutcome`."""
        op = self._invoke("append", block)
        process = self._process or block.creator or "p?"

        parent = self.selection(self.tree).tip
        validated: Optional[ValidatedBlock] = None
        attempts = 0
        while attempts < self.max_token_attempts:
            attempts += 1
            validated = self.oracle.get_token(parent, block, process=process)
            if validated is not None:
                break
        if validated is None:
            outcome = AppendOutcome(False, attempts, None, parent.block_id)
            self._respond(op, False)
            return outcome

        consumed = self.oracle.consume_token(validated, process=process)
        success = self._evaluate(validated, consumed)
        if success and self.predicate(validated.block, self.tree):
            # {b0}⌢ f(bt)|⌢_h {b_ℓ}: the block joins the tree under b_h.
            self.tree.append(validated.block)
        else:
            success = False
        self._respond(op, success)
        return AppendOutcome(success, attempts, validated, parent.block_id)

    @staticmethod
    def _evaluate(validated: ValidatedBlock, consumed: Tuple[ValidatedBlock, ...]) -> bool:
        """The paper's ``evaluate(b, δ_b ∘ δ_a*)``.

        True iff the validated block actually entered the oracle's
        ``K[h]`` set (its token was consumed), i.e. it is among the at most
        ``k`` winners for its parent.
        """
        return any(v.block_id == validated.block_id for v in consumed)

    # -- integration hooks ---------------------------------------------------------

    def adopt(self, block: Block) -> bool:
        """Insert a block produced elsewhere (a received update).

        Replica protocols call this when applying an ``update`` event for a
        block validated (token-stamped) by another process.  The block must
        name a parent already in the local tree.  Returns ``True`` iff the
        block was inserted (``False`` when it was already known).
        """
        if block.block_id in self.tree:
            return False
        self.tree.append(block)
        return True

    @property
    def k(self) -> float:
        """Fork bound of the underlying oracle (``∞`` for prodigal)."""
        return self.oracle.k

    # -- recording -------------------------------------------------------------------

    def _invoke(self, operation: str, argument: object):
        if self._recorder is None:
            return None
        return self._recorder.invoke(self._process or "p?", operation, argument)

    def _respond(self, op, output: object) -> None:
        if self._recorder is not None and op is not None:
            self._recorder.respond(op, output)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "∞" if self.oracle.k == math.inf else str(self.oracle.k)
        return f"RefinedBTADT(k={k}, blocks={len(self.tree)})"
