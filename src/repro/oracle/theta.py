"""The token oracles Θ_F and Θ_P (Definitions 3.5 and 3.6).

The oracle's abstract state is a family of merit tapes plus an infinite
array ``K[·]`` of sets, one per object (block): ``K[h]`` collects the
validated objects whose token ``tkn_h`` has been *consumed*, and the
frugal oracle refuses to grow ``K[h]`` beyond ``k`` elements.  The two
operations are:

* ``getToken(obj_h, obj_ℓ)`` — pop the invoker's tape; if the popped cell
  holds ``tkn``, return the validated object ``obj_ℓ^{tkn_h}`` (which is in
  ``O'`` by construction), otherwise return ``⊥``;
* ``consumeToken(obj_ℓ^{tkn_h})`` — insert the object into ``K[h]`` if
  ``|K[h]| < k`` and return (the current content of) ``K[h]``.

``Θ_P`` is ``Θ_F`` with ``k = ∞``.

The oracle is the *only* generator of valid blocks; the refinement in
:mod:`repro.oracle.refinement` therefore implements the BT-ADT ``append``
exclusively through these two operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.block import Block
from repro.core.history import HistoryRecorder
from repro.oracle.tape import TapeFamily

__all__ = ["ValidatedBlock", "TokenOracle", "FrugalOracle", "ProdigalOracle"]


def token_for(parent_id: str) -> str:
    """The token name ``tkn_h`` associated with parent block ``b_h``."""
    return f"tkn_{parent_id}"


@dataclass(frozen=True)
class ValidatedBlock:
    """The paper's ``b_ℓ^{tkn_h}``: a block plus the token that validates it.

    The wrapped :class:`~repro.core.block.Block` is already re-parented to
    ``b_h`` and carries the token identifier in its ``token`` field, so it
    can be appended to a BlockTree directly once the token is consumed.
    """

    block: Block
    token: str
    parent_id: str

    @property
    def block_id(self) -> str:
        return self.block.block_id


class TokenOracle:
    """Common implementation of Θ_F / Θ_P.

    Parameters
    ----------
    k:
        Maximal number of tokens that may be consumed per object
        (``math.inf`` gives the prodigal oracle).
    tapes:
        The merit-tape family; a fresh one (all merits = 1, i.e. every
        ``getToken`` succeeds only with the generated Bernoulli draw) is
        created when omitted.
    recorder:
        Optional history recorder: when provided, ``getToken`` and
        ``consumeToken`` calls are logged as operation events so oracle
        histories can be inspected like any other concurrent history.
    """

    def __init__(
        self,
        k: float = math.inf,
        tapes: Optional[TapeFamily] = None,
        recorder: Optional[HistoryRecorder] = None,
    ) -> None:
        if not (k == math.inf or (isinstance(k, (int, float)) and k >= 1)):
            raise ValueError(f"k must be >= 1 or infinity, got {k}")
        self.k = k
        self.tapes = tapes if tapes is not None else TapeFamily()
        self._consumed: Dict[str, List[ValidatedBlock]] = {}
        self._granted_tokens: Dict[str, int] = {}
        self._recorder = recorder

    # -- the two oracle operations -------------------------------------------

    def get_token(
        self, parent: Block | str, block: Block, process: Optional[str] = None
    ) -> Optional[ValidatedBlock]:
        """``getToken(obj_h, obj_ℓ)``.

        Pops one cell of the invoking process's tape.  On success, the
        block is re-parented under ``parent``, stamped with ``tkn_h`` and
        returned as a :class:`ValidatedBlock` (an element of ``O'``).  On
        failure returns ``None`` (the paper's ``⊥``).
        """
        parent_id = parent.block_id if isinstance(parent, Block) else parent
        invoker = process if process is not None else (block.creator or "p?")
        op = self._invoke(invoker, "getToken", (parent_id, block.block_id))
        success = self.tapes.draw(invoker)
        result: Optional[ValidatedBlock] = None
        if success:
            token = token_for(parent_id)
            validated = block.with_parent(parent_id).with_token(token)
            result = ValidatedBlock(block=validated, token=token, parent_id=parent_id)
            self._granted_tokens[parent_id] = self._granted_tokens.get(parent_id, 0) + 1
        self._respond(op, result)
        return result

    def consume_token(
        self, validated: ValidatedBlock, process: Optional[str] = None
    ) -> Tuple[ValidatedBlock, ...]:
        """``consumeToken(obj_ℓ^{tkn_h})``.

        Adds the validated block to ``K[h]`` provided ``|K[h]| < k`` and
        returns the (possibly unchanged) content of ``K[h]``.  The return
        value is what the refinement's ``evaluate`` inspects to decide the
        ``append`` output, and what the consensus reduction of Section 4.1
        decides on.
        """
        invoker = process if process is not None else (validated.block.creator or "p?")
        op = self._invoke(invoker, "consumeToken", validated)
        bucket = self._consumed.setdefault(validated.parent_id, [])
        already = any(v.block_id == validated.block_id for v in bucket)
        if not already and len(bucket) < self.k:
            bucket.append(validated)
        result = tuple(bucket)
        self._respond(op, result)
        return result

    # -- inspection -----------------------------------------------------------

    def consumed_for(self, parent_id: str) -> Tuple[ValidatedBlock, ...]:
        """Current content of ``K[parent]`` (the ``get(K, h)`` helper)."""
        return tuple(self._consumed.get(parent_id, ()))

    def consumed_counts(self) -> Dict[str, int]:
        """Number of consumed tokens per parent block (``|K[h]|``)."""
        return {parent: len(blocks) for parent, blocks in self._consumed.items()}

    def granted_counts(self) -> Dict[str, int]:
        """Number of tokens *granted* per parent (≥ consumed; for analyses)."""
        return dict(self._granted_tokens)

    @property
    def is_fork_free(self) -> bool:
        """``True`` for the k=1 oracle, the one with consensus power."""
        return self.k == 1

    # -- recording ---------------------------------------------------------------

    def _invoke(self, process: str, operation: str, argument: object):
        if self._recorder is None:
            return None
        return self._recorder.invoke(process, operation, argument)

    def _respond(self, op, output: object) -> None:
        if self._recorder is not None and op is not None:
            self._recorder.respond(op, output)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ProdigalOracle" if self.k == math.inf else f"FrugalOracle(k={self.k})"
        return f"{kind}(parents_with_consumed={len(self._consumed)})"


class FrugalOracle(TokenOracle):
    """Θ_{F,k}: at most ``k`` consumed tokens per block (Definition 3.5)."""

    def __init__(
        self,
        k: int = 1,
        tapes: Optional[TapeFamily] = None,
        recorder: Optional[HistoryRecorder] = None,
    ) -> None:
        if k == math.inf:
            raise ValueError("use ProdigalOracle for k = ∞")
        if int(k) != k or k < 1:
            raise ValueError(f"frugal oracle requires an integer k >= 1, got {k}")
        super().__init__(k=int(k), tapes=tapes, recorder=recorder)


class ProdigalOracle(TokenOracle):
    """Θ_P: the frugal oracle with ``k = ∞`` (Definition 3.6)."""

    def __init__(
        self,
        tapes: Optional[TapeFamily] = None,
        recorder: Optional[HistoryRecorder] = None,
    ) -> None:
        super().__init__(k=math.inf, tapes=tapes, recorder=recorder)
