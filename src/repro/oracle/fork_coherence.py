"""k-Fork Coherence (Definition 3.9, Theorem 3.2).

A concurrent history of the BT-ADT composed with Θ_F satisfies k-Fork
Coherence if at most ``k`` ``append()`` operations return ``⊤`` for the
same token.  Theorem 3.2 shows the composition satisfies it *by
construction*; this module provides the checker used to confirm that on
every generated execution (and to demonstrate, conversely, that prodigal
runs exceed any finite bound).

Two entry points are provided because the information is available at two
levels:

* :func:`check_fork_coherence_from_oracle` — inspect the oracle's ``K``
  sets directly (exact, cheap);
* :func:`check_fork_coherence_from_history` — count successful ``append``
  responses per consumed token from a recorded history (what an external
  observer could verify without access to the oracle state).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.block import Block
from repro.core.history import History
from repro.oracle.theta import TokenOracle

__all__ = [
    "ForkCoherenceResult",
    "check_fork_coherence_from_oracle",
    "check_fork_coherence_from_history",
]


@dataclass(frozen=True)
class ForkCoherenceResult:
    """Outcome of a k-Fork-Coherence check."""

    k: float
    holds: bool
    per_token: Dict[str, int] = field(default_factory=dict)
    violations: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.holds

    @property
    def max_forks(self) -> int:
        """The largest number of successful appends observed for one token."""
        return max(self.per_token.values(), default=0)


def check_fork_coherence_from_oracle(oracle: TokenOracle, k: Optional[float] = None) -> ForkCoherenceResult:
    """Verify ``|K[h]| ≤ k`` for every parent block ``h``.

    ``k`` defaults to the oracle's own bound; passing a smaller value lets
    benches ask "would this prodigal run have satisfied k-fork coherence?"
    """
    bound = oracle.k if k is None else k
    counts = oracle.consumed_counts()
    violations = tuple(
        f"token for parent {parent!r} consumed {count} times (bound {bound})"
        for parent, count in sorted(counts.items())
        if count > bound
    )
    return ForkCoherenceResult(
        k=bound, holds=not violations, per_token=counts, violations=violations
    )


def check_fork_coherence_from_history(history: History, k: float) -> ForkCoherenceResult:
    """Count successful appends per token in a recorded history.

    A successful append's argument is the block that was appended; the
    token it consumed is identified by the block's parent (the refinement
    stamps the block with ``tkn_{parent}``).  Appends of blocks without a
    token stamp are grouped by parent identifier, which is the same
    equivalence for refined executions and a conservative proxy otherwise.
    """
    per_token: Dict[str, int] = {}
    for response in history.append_responses(successful_only=True):
        block = response.argument
        if not isinstance(block, Block):
            continue
        key = block.token if block.token is not None else f"parent:{block.parent_id}"
        per_token[key] = per_token.get(key, 0) + 1
    violations = tuple(
        f"token {token!r} saw {count} successful appends (bound {k})"
        for token, count in sorted(per_token.items())
        if count > k
    )
    return ForkCoherenceResult(
        k=k, holds=not violations, per_token=per_token, violations=violations
    )
