"""Token oracles Θ and the oracle-based refinement of the BT-ADT.

Section 3.2 of the paper encapsulates the block-creation / validation
process in a *token oracle*: a process may append a block ``b_ℓ`` under a
block ``b_h`` only after obtaining (``getToken``) and consuming
(``consumeToken``) a token ``tkn_h`` for ``b_h``.  Two oracles are defined:

* the **prodigal** oracle Θ_P puts no bound on the number of tokens
  consumed per block (unbounded forks — proof-of-work systems);
* the **frugal** oracle Θ_{F,k} allows at most ``k`` consumed tokens per
  block (at most ``k`` forks; ``k = 1`` forbids forks entirely —
  consensus-based systems).

Modules:

* :mod:`repro.oracle.tape` — merit-parameterized pseudorandom token tapes;
* :mod:`repro.oracle.theta` — the Θ_F / Θ_P abstract data types;
* :mod:`repro.oracle.refinement` — the refinement R(BT-ADT, Θ) whose
  ``append`` is ``getToken*; consumeToken`` (Definition 3.7);
* :mod:`repro.oracle.fork_coherence` — the k-Fork-Coherence checker
  (Definition 3.9 / Theorem 3.2).
"""

from repro.oracle.tape import MeritTape, TapeFamily, DeterministicTape
from repro.oracle.theta import TokenOracle, FrugalOracle, ProdigalOracle, ValidatedBlock
from repro.oracle.theta_adt import ThetaADT, ProdigalADT, ThetaState, GetToken, ConsumeToken
from repro.oracle.refinement import RefinedBTADT
from repro.oracle.fork_coherence import (
    ForkCoherenceResult,
    check_fork_coherence_from_oracle,
    check_fork_coherence_from_history,
)

__all__ = [
    "MeritTape",
    "TapeFamily",
    "DeterministicTape",
    "TokenOracle",
    "FrugalOracle",
    "ProdigalOracle",
    "ValidatedBlock",
    "ThetaADT",
    "ProdigalADT",
    "ThetaState",
    "GetToken",
    "ConsumeToken",
    "RefinedBTADT",
    "ForkCoherenceResult",
    "check_fork_coherence_from_oracle",
    "check_fork_coherence_from_history",
]
