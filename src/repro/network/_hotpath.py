"""Monomorphic callback-plane hot paths (compiled callback plane).

Companion compilation unit to :mod:`repro.network._drain`: ``setup.py``
compiles both with mypyc when a compiler toolchain is present, and the
imports in :mod:`repro.network.event_core` / :mod:`repro.network.simulator`
then resolve to the extension modules.  Like ``_drain``, the source is
deliberately monomorphic — plain attribute access, ints, floats, lists,
dicts and tuples — so the compiled and interpreted flavours execute the
exact same logic and the pure-Python fallback is always available (and is
what CI tests by default).

What lives here is the per-delivery chain that dominates fork-heavy
profiles once the event *store* is array-native (ROADMAP item 2's
recorded ~65% callback share):

* :func:`deliver_one` — the single source of truth for the
  departed-pid / liveness guards shared by ``Network._deliver`` and
  ``Network._deliver_multicast``;
* :func:`deliver_span` — the batch-dispatch handler invoked by the drain
  loop when consecutive run entries share one interned delivery
  callback; it replays the scalar guard/clock protocol per message and
  hands same-receiver sub-runs to ``Process.on_message_batch``;
* :func:`dispatch_batch` — the default ``on_message_batch`` body: loop
  ``on_message`` with the exact scalar clock/guard semantics;
* :func:`record_replication` — ``HistoryRecorder``'s replication-event
  fast path (the dominant recorder call in block workloads);
* :func:`tree_append_index` — ``BlockTree.append``'s index maintenance
  (heights, parents, cumulative and subtree weights) on preallocated
  numpy columns instead of per-block dicts.

Every function has a retained pure-Python twin (``Network._deliver``'s
pre-PR10 body lives on in the scalar guards here; the recorder keeps
``_reference_replication``; the tree keeps the dict index behind
``index="reference"``) and the equivalence tests assert recorded
histories are byte-identical between the two planes.
"""

from __future__ import annotations


_Event = None  # resolved lazily; avoids a core<->network import cycle at load
_BlockAnnouncement = None  # resolved lazily; broadcast imports simulator imports us
_base_on_message_batch = None  # Process.on_message_batch; process.py imports us


def deliver_one(network, pid, message):
    """Deliver ``message`` to ``pid`` under the departed/liveness guards.

    The single helper behind ``Network._deliver`` (point-to-point, pid
    read off the message) and ``Network._deliver_multicast`` (shared
    envelope, pid carried beside it): a departed pid quarantines the
    message, a dead process drops it silently, a live one receives it.
    """
    process = network._processes.get(pid)
    if process is None:
        # Receiver deregistered between send and delivery (dynamic
        # membership): the message is quarantined, not delivered.
        network.messages_quarantined += 1
        return
    if process.alive:
        network.messages_delivered += 1
        process.on_message(message)


def dispatch_batch(process, deliveries):
    """Default ``Process.on_message_batch`` body: scalar-exact loop.

    Replays exactly what the drain loop would do per message — advance
    the virtual clock, dispatch ``on_message`` — and stops early when
    the batch is preempted (process died or departed mid-batch, or an
    overflow event now sorts before the next delivery).  Returns the
    number of messages consumed (always >= 1: the first delivery already
    passed the guards in the caller).
    """
    network = process.network
    sim = network.simulator
    count = 0
    for time, seq, message in deliveries:
        if count and network.batch_interrupted(process, time, seq):
            break
        if time > sim.now:
            sim.now = time
        count += 1
        process.on_message(message)
    return count


def deliver_span(network, times, seqs, args, pos, end, until, cell, multicast):
    """Batch-dispatch a span of same-callback delivery events.

    Invoked by the drain loop for run entries ``pos:end`` that all share
    one interned delivery method.  ``multicast`` selects the argument
    shape: ``(pid, envelope)`` tuples for ``_deliver_multicast`` spans,
    bare messages (pid on ``message.receiver``) for ``_deliver`` spans.

    The scalar protocol is replayed per message — overflow-preemption
    and ``until`` checks, clock advance, departed/dead guards — and
    consecutive deliveries to one live receiver are collected into a
    single ``process.on_message_batch`` call.  ``cell[0]`` tracks the
    consumed count for the drain loop's exception accounting; the return
    value is the total consumed (>= 1).

    Duplicate ``BlockAnnouncement`` floods — the bulk of gossip traffic,
    where every block reaches every node once per relaying neighbour —
    are skipped against the receiver's transport seen-set without
    dispatching at all.  The skip is exact: a duplicate's scalar path is
    ``on_message -> transport.handle -> seen-set hit -> None`` (nothing
    recorded, nothing mutated, the delivered counter bumped), and
    :meth:`Process.batch_dup_seen` only exposes the seen-set when both
    hooks on that path are the stock implementations.

    Receivers are classified lazily, with different staleness contracts
    per class:

    * ``scalar_fast`` — no seen-set *and* the stock ``on_message_batch``:
      straight per-event ``on_message`` dispatch, no sub-run scan.
    * ``batch_only`` — no seen-set but a custom ``on_message_batch``:
      sub-runs are collected and handed to the hook.
    * ``dup_sets`` — a live seen-set; dropped after every real dispatch,
      since an arbitrary callback could swap transports.

    The first two live on the network (``_span_scalar`` /
    ``_span_batch_only``), surviving across spans and drains, and are
    only dropped on ``register``/``deregister``.  That persistence is
    safe because going stale can only *miss a skip* (a receiver that
    gains a seen-set keeps taking the exact scalar path) or dispatch
    scalar to a batch-capable receiver — and ``on_message_batch`` is
    required to be scalar-equivalent anyway.  ``dup_sets`` stays local
    to one span call: its binding is only trusted between dispatches.

    The process table is re-read per event (registration may churn under
    any callback) and the overflow/``until``/liveness checks still run
    per event, so preemption ordering is untouched.
    """
    global _BlockAnnouncement, _base_on_message_batch
    announcement_cls = _BlockAnnouncement
    if announcement_cls is None:
        from repro.network.broadcast import BlockAnnouncement

        announcement_cls = _BlockAnnouncement = BlockAnnouncement
    base_batch = _base_on_message_batch
    if base_batch is None:
        from repro.network.process import Process

        base_batch = _base_on_message_batch = Process.on_message_batch
    sim = network.simulator
    core = sim._array_core
    overflow = core._overflow
    processes = network._processes
    dup_sets = {}
    scalar_fast = network._span_scalar
    batch_only = network._span_batch_only
    last_message = None
    last_block_id = None
    delivered = 0
    quarantined = 0
    count = 0
    k = pos
    # Callbacks never advance the clock themselves (only the drain and
    # ``on_message_batch`` do, and the batch path refreshes below), so
    # the comparison can run against a local mirror of ``sim.now``.
    now = sim.now
    try:
        while k < end:
            time = times[k]
            if count:
                # First event already cleared these checks in the drain
                # loop; later ones must re-check because callbacks can
                # push overflow events or the until clip may bite.
                if overflow:
                    head = overflow[0]
                    head_time = head[0]
                    if head_time < time or (head_time == time and head[1] < seqs[k]):
                        break
                if until is not None and time > until:
                    break
            if time > now:
                now = time
                sim.now = time
            entry = args[k]
            if multicast:
                pid = entry[0]
                message = entry[1]
            else:
                message = entry
                pid = message.receiver
            process = processes.get(pid)
            if process is None:
                quarantined += 1
                count += 1
                k += 1
                continue
            if not process.alive:
                count += 1
                k += 1
                continue
            if pid in scalar_fast:
                delivered += 1
                count += 1
                process.on_message(message)
                if dup_sets:
                    dup_sets.clear()
                k += 1
                continue
            if pid in batch_only:
                seen = None
            else:
                # The seen-set binding can only change under a real
                # dispatch (``dup_sets`` is cleared there), so a cached
                # set stays valid between dispatches; a ``None`` answer
                # is sticky for the whole span (stale = skip nothing).
                seen = dup_sets.get(pid)
                if seen is None:
                    seen = process.batch_dup_seen()
                    if seen is None:
                        if type(process).on_message_batch is base_batch:
                            scalar_fast.add(pid)
                            delivered += 1
                            count += 1
                            process.on_message(message)
                            if dup_sets:
                                dup_sets.clear()
                            k += 1
                            continue
                        batch_only.add(pid)
                    else:
                        dup_sets[pid] = seen
            if seen is not None:
                # Multicast spans hand one shared envelope to many
                # receivers; memoize its announcement id across events.
                if message is last_message:
                    block_id = last_block_id
                else:
                    block_id = None
                    if message.kind == "block":
                        payload = message.payload
                        if type(payload) is announcement_cls:
                            block_id = payload.block.block_id
                    last_message = message
                    last_block_id = block_id
                if block_id is not None and block_id in seen:
                    # Duplicate flood: scalar path is a pure no-op apart
                    # from the delivered counter and the clock advance
                    # (already applied above).
                    delivered += 1
                    count += 1
                    k += 1
                    continue
            # Collect the same-receiver sub-run (clipped by ``until``).
            j = k + 1
            if multicast:
                if until is None:
                    while j < end and args[j][0] == pid:
                        j += 1
                else:
                    while j < end and args[j][0] == pid and times[j] <= until:
                        j += 1
            else:
                if until is None:
                    while j < end and args[j].receiver == pid:
                        j += 1
                else:
                    while j < end and args[j].receiver == pid and times[j] <= until:
                        j += 1
            if j == k + 1:
                delivered += 1
                count += 1
                process.on_message(message)
                if dup_sets:
                    dup_sets.clear()
                k = j
                continue
            if multicast:
                deliveries = [(times[i], seqs[i], args[i][1]) for i in range(k, j)]
            else:
                deliveries = [(times[i], seqs[i], args[i]) for i in range(k, j)]
            consumed = process.on_message_batch(deliveries)
            if consumed < 1 or consumed > j - k:
                raise RuntimeError(
                    "on_message_batch consumed %r of %d deliveries"
                    % (consumed, j - k)
                )
            delivered += consumed
            count += consumed
            if dup_sets:
                dup_sets.clear()
            last_time = deliveries[consumed - 1][0]
            if last_time > sim.now:
                sim.now = last_time
            now = sim.now
            k += consumed
    finally:
        # ``cell[0]`` is only read by the drain loop when the handler
        # raised mid-span; keeping it current here (instead of per
        # event) takes a store off the skip path.
        cell[0] = count
        network.messages_delivered += delivered
        network.messages_quarantined += quarantined
    return count


def record_replication(recorder, kind, process, parent_id, block_id):
    """``HistoryRecorder._replication`` fast path (monomorphic).

    Byte-identical to the retained ``_reference_replication``: same
    ``Event`` construction order (global clock tick, then per-process
    sequence), same listener fan-out.  The recorder routes here unless
    it was built under ``history.reference_recording()``.
    """
    global _Event
    event_cls = _Event
    if event_cls is None:
        from repro.core.history import Event

        event_cls = _Event = Event
    seqs = recorder._seq
    seq = seqs.get(process, 0) + 1
    seqs[process] = seq
    event = event_cls(
        eid=next(recorder._clock),
        kind=kind,
        process=process,
        operation=kind.value,
        argument=(parent_id, block_id),
        seq=seq,
    )
    recorder._append(event)
    for listener in recorder._listeners:
        listener(event)
    return event


def tree_append_index(cols, parent_id, block_id, weight):
    """``BlockTree.append``'s index maintenance on numpy columns.

    Columnar twin of the reference dict maintenance (``index=
    "reference"``): assign the next slot, extend the id/parent columns,
    set height / cumulative weight, seed the subtree weight and add
    ``weight`` along the ancestor path with one fancy-indexed update
    (same IEEE additions, one per ancestor, as the dict walk).  Returns
    the new block's height.
    """
    slots = cols.slots
    parent = slots[parent_id]
    slot = cols.size
    if slot >= len(cols.height):
        cols.grow()
    height = cols.height
    cum = cols.cum_weight
    sub = cols.subtree_weight
    parents = cols.parents
    slots[block_id] = slot
    cols.ids.append(block_id)
    parents.append(parent)
    new_height = int(height[parent]) + 1
    height[slot] = new_height
    cum[slot] = float(cum[parent]) + weight
    sub[slot] = weight
    cols.size = slot + 1
    path = []
    cursor = parent
    while cursor >= 0:
        path.append(cursor)
        cursor = parents[cursor]
    sub[path] += weight
    return new_height
