"""Channel models: asynchrony, synchrony, partial synchrony, loss.

Section 4.2 distinguishes three synchrony assumptions:

* **asynchronous** — no upper bound on message delay;
* **synchronous** — messages sent by correct processes at time ``t`` are
  delivered by ``t + δ``;
* **weakly/partially synchronous** — there is an unknown time (GST) after
  which channels behave synchronously.

A channel model answers one question per message: *when* is it delivered
(a non-negative delay) or is it dropped (``None``)?  Keeping that decision
in one object makes the necessity results easy to exercise: the Theorem
4.6/4.7 benches wrap any model in :class:`LossyChannel` and sweep the drop
probability, and the Theorem 4.8 construction uses a plain
:class:`SynchronousChannel` to show the impossibility does not rely on
asynchrony at all.

All randomness is drawn from a seeded generator owned by the model, so a
given (seed, workload) pair always yields the same execution.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ChannelModel",
    "SynchronousChannel",
    "AsynchronousChannel",
    "PartiallySynchronousChannel",
    "LossyChannel",
    "TargetedLossChannel",
]


@runtime_checkable
class ChannelModel(Protocol):
    """Decides the fate of each message."""

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        """Return the delivery delay, or ``None`` if the message is lost."""
        ...


class SynchronousChannel:
    """Delivery within a known bound δ.

    Delays are drawn uniformly from ``[min_delay, delta]``; local delivery
    (sender == receiver) is immediate, which matches the convention that a
    process "receives" its own update as part of issuing it.
    """

    def __init__(self, delta: float = 1.0, min_delay: float = 0.1, seed: int = 0) -> None:
        if delta <= 0 or min_delay < 0 or min_delay > delta:
            raise ValueError("require 0 <= min_delay <= delta and delta > 0")
        self.delta = float(delta)
        self.min_delay = float(min_delay)
        self._rng = np.random.default_rng(seed)

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:  # noqa: ARG002
        if sender == receiver:
            return 0.0
        return float(self._rng.uniform(self.min_delay, self.delta))


class AsynchronousChannel:
    """No bound on delays: exponentially distributed with a heavy tail knob.

    ``tail_probability`` of messages receive an extra ``tail_factor``
    multiplier, modelling the unbounded-delay adversary within a finite
    simulation.  Messages are never dropped by this model (losses are the
    job of :class:`LossyChannel`).
    """

    def __init__(
        self,
        mean_delay: float = 1.0,
        tail_probability: float = 0.05,
        tail_factor: float = 20.0,
        seed: int = 0,
    ) -> None:
        if mean_delay <= 0:
            raise ValueError("mean_delay must be positive")
        if not 0 <= tail_probability <= 1:
            raise ValueError("tail_probability must be in [0, 1]")
        self.mean_delay = float(mean_delay)
        self.tail_probability = float(tail_probability)
        self.tail_factor = float(tail_factor)
        self._rng = np.random.default_rng(seed)

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:  # noqa: ARG002
        if sender == receiver:
            return 0.0
        delay = float(self._rng.exponential(self.mean_delay))
        if self._rng.random() < self.tail_probability:
            delay *= self.tail_factor
        return delay


class PartiallySynchronousChannel:
    """Partial synchrony (Dwork–Lynch–Stockmeyer): synchronous after GST.

    Before the Global Stabilization Time messages behave asynchronously
    (``pre_gst`` model); at or after GST they are delivered within ``delta``.
    """

    def __init__(
        self,
        gst: float = 50.0,
        delta: float = 1.0,
        pre_gst_mean: float = 5.0,
        seed: int = 0,
    ) -> None:
        if gst < 0:
            raise ValueError("GST must be non-negative")
        self.gst = float(gst)
        self._post = SynchronousChannel(delta=delta, seed=seed)
        self._pre = AsynchronousChannel(mean_delay=pre_gst_mean, seed=seed + 1)

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        if now >= self.gst:
            return self._post.delay_for(sender, receiver, now)
        return self._pre.delay_for(sender, receiver, now)


class LossyChannel:
    """Wrap another model and drop each message with a fixed probability.

    Local (self-addressed) messages are never dropped: the paper's R1/R2
    arguments are about *other* processes missing an update, and a replica
    trivially has its own update.
    """

    def __init__(self, inner: ChannelModel, drop_probability: float, seed: int = 0) -> None:
        if not 0 <= drop_probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self.inner = inner
        self.drop_probability = float(drop_probability)
        self._rng = np.random.default_rng(seed)
        self.dropped = 0

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        if sender != receiver and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return None
        return self.inner.delay_for(sender, receiver, now)


class TargetedLossChannel:
    """Drop exactly the messages selected by a predicate.

    Used to realise the paper's proof constructions where *one specific*
    update never reaches *one specific* process (Lemma 4.5): pass
    ``lambda sender, receiver, now: receiver == "k"`` style predicates.
    """

    def __init__(
        self,
        inner: ChannelModel,
        drop_if: Callable[[str, str, float], bool],
    ) -> None:
        self.inner = inner
        self.drop_if = drop_if
        self.dropped = 0

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        if sender != receiver and self.drop_if(sender, receiver, now):
            self.dropped += 1
            return None
        return self.inner.delay_for(sender, receiver, now)
