"""Channel models: asynchrony, synchrony, partial synchrony, loss.

Section 4.2 distinguishes three synchrony assumptions:

* **asynchronous** — no upper bound on message delay;
* **synchronous** — messages sent by correct processes at time ``t`` are
  delivered by ``t + δ``;
* **weakly/partially synchronous** — there is an unknown time (GST) after
  which channels behave synchronously.

A channel model answers one question per message: *when* is it delivered
(a non-negative delay) or is it dropped (``None``)?  Keeping that decision
in one object makes the necessity results easy to exercise: the Theorem
4.6/4.7 benches wrap any model in :class:`LossyChannel` and sweep the drop
probability, and the Theorem 4.8 construction uses a plain
:class:`SynchronousChannel` to show the impossibility does not rely on
asynchrony at all.

All randomness is drawn from a seeded generator owned by the model, so a
given (seed, workload) pair always yields the same execution.

Every model additionally answers the question for a whole fan-out at once:
``delays_for(sender, receivers, now)`` returns one delay (or ``None``) per
receiver and is **stream-identical** to the equivalent sequence of scalar
``delay_for`` calls — numpy's ``Generator`` fills vectorized ``uniform``/
``exponential``/``random`` draws by consuming the bit stream element by
element, exactly as the scalar calls do, so a batched multicast and a
per-recipient loop produce the same delays from the same seed.  The
scalar loop is kept as :func:`_reference_delays_for`, the equivalence
oracle the stream tests and the simulation benches compare against.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "ChannelModel",
    "SynchronousChannel",
    "AsynchronousChannel",
    "PartiallySynchronousChannel",
    "LossyChannel",
    "TargetedLossChannel",
    "batched_delays",
]

#: The batched return type: one entry per receiver, ``None`` = dropped.
DelayVector = List[Optional[float]]


@runtime_checkable
class ChannelModel(Protocol):
    """Decides the fate of each message.

    Only the scalar ``delay_for`` is required.  Models may additionally
    provide ``delays_for(sender, receivers, now) -> DelayVector`` — a
    batched fan-out draw that must be stream-identical to the sequence of
    scalar calls it replaces (same values, same generator state after) —
    and the batched message plane uses it via :func:`batched_delays`,
    falling back to the scalar loop otherwise.  It is deliberately *not*
    part of this protocol so scalar-only third-party models still satisfy
    the ``ChannelModel`` annotations (and ``isinstance`` checks).
    """

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        """Return the delivery delay, or ``None`` if the message is lost."""
        ...


def _reference_delays_for(
    channel: ChannelModel, sender: str, receivers: Sequence[str], now: float
) -> DelayVector:
    """The pre-batching scalar fan-out, kept as the equivalence oracle.

    This is what :meth:`Network.broadcast` did before the batched message
    plane existed: one ``delay_for`` call per receiver, in receiver order.
    The per-model ``delays_for`` implementations must match it bit-for-bit
    from the same generator state.
    """
    return [channel.delay_for(sender, receiver, now) for receiver in receivers]


def _scatter_inner_batch(
    inner: ChannelModel,
    sender: str,
    receivers: Sequence[str],
    now: float,
    keep_flags: Sequence[bool],
) -> DelayVector:
    """One inner batch over the kept receivers, scattered back in place.

    Shared by the loss wrappers: receivers whose ``keep_flags`` entry is
    false stay ``None`` (dropped); the survivors are forwarded to the
    inner model in receiver order — exactly the messages the scalar path
    would have forwarded — and their delays land back in their slots.
    """
    delays: DelayVector = [None] * len(receivers)
    kept_slots = [slot for slot, keep in enumerate(keep_flags) if keep]
    if kept_slots:
        kept_receivers = [receivers[slot] for slot in kept_slots]
        inner_delays = batched_delays(inner, sender, kept_receivers, now)
        for slot, delay in zip(kept_slots, inner_delays):
            delays[slot] = delay
    return delays


def batched_delays(
    channel: ChannelModel, sender: str, receivers: Sequence[str], now: float
) -> DelayVector:
    """Sample a fan-out through ``channel``, batched when it supports it.

    Third-party channel models only need the scalar ``delay_for``; this
    helper falls back to the (stream-identical) scalar loop for them, so
    the batched message plane accepts any :class:`ChannelModel`.
    """
    batched = getattr(channel, "delays_for", None)
    if batched is not None:
        return batched(sender, receivers, now)
    return _reference_delays_for(channel, sender, receivers, now)


class SynchronousChannel:
    """Delivery within a known bound δ.

    Delays are drawn uniformly from ``[min_delay, delta]``; local delivery
    (sender == receiver) is immediate, which matches the convention that a
    process "receives" its own update as part of issuing it.
    """

    def __init__(self, delta: float = 1.0, min_delay: float = 0.1, seed: int = 0) -> None:
        if delta <= 0 or min_delay < 0 or min_delay > delta:
            raise ValueError("require 0 <= min_delay <= delta and delta > 0")
        self.delta = float(delta)
        self.min_delay = float(min_delay)
        self._rng = np.random.default_rng(seed)

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:  # noqa: ARG002
        if sender == receiver:
            return 0.0
        return float(self._rng.uniform(self.min_delay, self.delta))

    def delays_for(
        self, sender: str, receivers: Sequence[str], now: float  # noqa: ARG002
    ) -> DelayVector:
        """One vectorized ``uniform`` draw for the whole fan-out.

        Self-delivery entries stay 0.0 and consume nothing, matching the
        scalar path; the remote entries are filled from a single
        ``Generator.uniform(size=k)`` call, which consumes the bit stream
        exactly as ``k`` scalar draws would.
        """
        if sender not in receivers:
            # The common fan-out (include_self=False): every entry draws.
            draws = self._rng.uniform(self.min_delay, self.delta, size=len(receivers))
            return draws.tolist()
        delays: DelayVector = [0.0] * len(receivers)
        remote = [i for i, receiver in enumerate(receivers) if receiver != sender]
        if remote:
            draws = self._rng.uniform(self.min_delay, self.delta, size=len(remote))
            for slot, value in zip(remote, draws.tolist()):
                delays[slot] = value
        return delays


class AsynchronousChannel:
    """No bound on delays: exponentially distributed with a heavy tail knob.

    ``tail_probability`` of messages receive an extra ``tail_factor``
    multiplier, modelling the unbounded-delay adversary within a finite
    simulation.  Messages are never dropped by this model (losses are the
    job of :class:`LossyChannel`).
    """

    def __init__(
        self,
        mean_delay: float = 1.0,
        tail_probability: float = 0.05,
        tail_factor: float = 20.0,
        seed: int = 0,
    ) -> None:
        if mean_delay <= 0:
            raise ValueError("mean_delay must be positive")
        if not 0 <= tail_probability <= 1:
            raise ValueError("tail_probability must be in [0, 1]")
        self.mean_delay = float(mean_delay)
        self.tail_probability = float(tail_probability)
        self.tail_factor = float(tail_factor)
        self._rng = np.random.default_rng(seed)

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:  # noqa: ARG002
        if sender == receiver:
            return 0.0
        delay = float(self._rng.exponential(self.mean_delay))
        if self._rng.random() < self.tail_probability:
            delay *= self.tail_factor
        return delay

    def delays_for(
        self, sender: str, receivers: Sequence[str], now: float  # noqa: ARG002
    ) -> DelayVector:
        """Batched fan-out with the scalar draw interleave preserved.

        Each message consumes ``exponential`` *then* ``random`` (the tail
        coin-flip); splitting those into two vector calls would permute
        the stream (all exponentials first, then all coin-flips) and break
        bit-identity with the scalar path.  The batch therefore keeps the
        per-message interleave and only hoists the generator bindings out
        of the loop.
        """
        rng = self._rng
        exponential = rng.exponential
        random = rng.random
        mean = self.mean_delay
        tail_probability = self.tail_probability
        tail_factor = self.tail_factor
        delays: DelayVector = []
        append = delays.append
        for receiver in receivers:
            if receiver == sender:
                append(0.0)
                continue
            delay = float(exponential(mean))
            if random() < tail_probability:
                delay *= tail_factor
            append(delay)
        return delays


class PartiallySynchronousChannel:
    """Partial synchrony (Dwork–Lynch–Stockmeyer): synchronous after GST.

    Before the Global Stabilization Time messages behave asynchronously
    (``pre_gst`` model); at or after GST they are delivered within ``delta``.
    """

    def __init__(
        self,
        gst: float = 50.0,
        delta: float = 1.0,
        pre_gst_mean: float = 5.0,
        seed: int = 0,
    ) -> None:
        if gst < 0:
            raise ValueError("GST must be non-negative")
        self.gst = float(gst)
        self._post = SynchronousChannel(delta=delta, seed=seed)
        self._pre = AsynchronousChannel(mean_delay=pre_gst_mean, seed=seed + 1)

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        if now >= self.gst:
            return self._post.delay_for(sender, receiver, now)
        return self._pre.delay_for(sender, receiver, now)

    def delays_for(
        self, sender: str, receivers: Sequence[str], now: float
    ) -> DelayVector:
        """A multicast happens at a single instant, hence in a single regime.

        Every receiver shares ``now``, so the whole batch is either before
        GST (delegate to the asynchronous model) or at/after it (delegate
        to the synchronous model) — the same per-message dispatch the
        scalar path performs, on the same sub-model generators.
        """
        if now >= self.gst:
            return self._post.delays_for(sender, receivers, now)
        return self._pre.delays_for(sender, receivers, now)


class LossyChannel:
    """Wrap another model and drop each message with a fixed probability.

    Local (self-addressed) messages are never dropped: the paper's R1/R2
    arguments are about *other* processes missing an update, and a replica
    trivially has its own update.
    """

    def __init__(self, inner: ChannelModel, drop_probability: float, seed: int = 0) -> None:
        if not 0 <= drop_probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self.inner = inner
        self.drop_probability = float(drop_probability)
        self._rng = np.random.default_rng(seed)
        self.dropped = 0

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        if sender != receiver and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return None
        return self.inner.delay_for(sender, receiver, now)

    def delays_for(
        self, sender: str, receivers: Sequence[str], now: float
    ) -> DelayVector:
        """One vectorized drop lottery, then one inner batch for survivors.

        The drop coin-flips come from this wrapper's *own* generator and
        the delays from the inner model's, so the two streams never
        interleave: a ``random(size=k)`` call over the non-self receivers
        consumes the drop stream exactly as ``k`` scalar flips would, and
        the inner model only ever samples the surviving receivers, in
        order — exactly the messages the scalar path forwards to it.
        """
        if not receivers:
            return []
        if sender not in receivers:
            # The common fan-out (include_self=False): every entry flips,
            # so the whole lottery is one vectorized comparison.
            keep_flags = (self._rng.random(size=len(receivers)) >= self.drop_probability).tolist()
            dropped = len(receivers) - sum(keep_flags)
            if not dropped:
                return batched_delays(self.inner, sender, receivers, now)
            self.dropped += dropped
            return _scatter_inner_batch(self.inner, sender, receivers, now, keep_flags)
        # The general path: self-addressed entries skip the drop lottery,
        # so the flips are consumed lazily, one per remote receiver.
        remote_count = sum(1 for receiver in receivers if receiver != sender)
        flips = (
            iter(self._rng.random(size=remote_count).tolist())
            if remote_count
            else iter(())
        )
        drop_probability = self.drop_probability
        keep_flags = [
            receiver == sender or next(flips) >= drop_probability
            for receiver in receivers
        ]
        dropped = len(receivers) - sum(keep_flags)
        self.dropped += dropped
        return _scatter_inner_batch(self.inner, sender, receivers, now, keep_flags)


class TargetedLossChannel:
    """Drop exactly the messages selected by a predicate.

    Used to realise the paper's proof constructions where *one specific*
    update never reaches *one specific* process (Lemma 4.5): pass
    ``lambda sender, receiver, now: receiver == "k"`` style predicates.
    """

    def __init__(
        self,
        inner: ChannelModel,
        drop_if: Callable[[str, str, float], bool],
    ) -> None:
        self.inner = inner
        self.drop_if = drop_if
        self.dropped = 0

    def delay_for(self, sender: str, receiver: str, now: float) -> Optional[float]:
        if sender != receiver and self.drop_if(sender, receiver, now):
            self.dropped += 1
            return None
        return self.inner.delay_for(sender, receiver, now)

    def delays_for(
        self, sender: str, receivers: Sequence[str], now: float
    ) -> DelayVector:
        """Predicate filter (no randomness), then one inner batch.

        The predicate consumes no generator state, so stream-identity only
        requires forwarding the surviving receivers to the inner model in
        receiver order — which is what the scalar path does.
        """
        drop_if = self.drop_if
        keep_flags = [
            receiver == sender or not drop_if(sender, receiver, now)
            for receiver in receivers
        ]
        self.dropped += len(receivers) - sum(keep_flags)
        return _scatter_inner_batch(self.inner, sender, receivers, now, keep_flags)
