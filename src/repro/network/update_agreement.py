"""Update Agreement (Definition 4.3) and LRC (Definition 4.4) checkers.

Both definitions are predicates over concurrent histories that contain the
replication events ``send_i(b_g, b)``, ``receive_i(b_g, b)`` and
``update_i(b_g, b)``:

Update Agreement
    * **R1** — every ``update_i(b_g, b_i)`` (a process inserting a block it
      generated) is accompanied by a ``send_i(b_g, b_i)``;
    * **R2** — every ``update_i(b_g, b_j)`` for a block generated elsewhere
      is preceded (at ``i``) by a ``receive_i(b_g, b_j)``;
    * **R3** — every update is eventually received by *every* process:
      ``∀ update_i(b_g, b_j), ∀ k: ∃ receive_k(b_g, b_j)``.

Light Reliable Communication
    * **Validity** — a correct sender eventually receives its own message;
    * **Agreement** — if any correct process receives a message, every
      correct process eventually receives it.

Theorems 4.6/4.7 establish both as *necessary* for BT Eventual
Consistency; the benches pair these checkers with the Eventual Prefix
checker to show that whenever loss injection breaks R3/Agreement, the
convergence property breaks too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.history import Event, EventKind, History

__all__ = [
    "UpdateAgreementResult",
    "LRCResult",
    "check_update_agreement",
    "check_light_reliable_communication",
]


def _key(event: Event) -> Tuple[str, str]:
    """The ``(parent id, block id)`` pair carried by a replication event."""
    parent_id, block_id = event.argument
    return str(parent_id), str(block_id)


@dataclass(frozen=True)
class UpdateAgreementResult:
    """Outcome of the R1/R2/R3 checks."""

    r1_holds: bool
    r2_holds: bool
    r3_holds: bool
    violations: Tuple[str, ...] = ()
    missing_receivers: Dict[Tuple[str, str], Tuple[str, ...]] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        return self.r1_holds and self.r2_holds and self.r3_holds

    def __bool__(self) -> bool:
        return self.holds


@dataclass(frozen=True)
class LRCResult:
    """Outcome of the LRC Validity/Agreement checks."""

    validity_holds: bool
    agreement_holds: bool
    violations: Tuple[str, ...] = ()

    @property
    def holds(self) -> bool:
        return self.validity_holds and self.agreement_holds

    def __bool__(self) -> bool:
        return self.holds


def check_update_agreement(
    history: History,
    processes: Optional[Iterable[str]] = None,
    block_creators: Optional[Dict[str, str]] = None,
) -> UpdateAgreementResult:
    """Check R1–R3 over a recorded history.

    Parameters
    ----------
    history:
        A history containing send/receive/update events.
    processes:
        The set of processes over which R3 quantifies ("every correct
        process"); defaults to every process that recorded at least one
        replication event.
    block_creators:
        Optional map block id → creator process.  When provided, R1 is
        checked only for updates of locally generated blocks and R2 only
        for updates of remotely generated blocks (the paper's reading);
        without it, the checks fall back to "an update not preceded by a
        local receive must be locally generated, hence must have a send".
    """
    sends = history.replication_events(EventKind.SEND)
    receives = history.replication_events(EventKind.RECEIVE)
    updates = history.replication_events(EventKind.UPDATE)

    send_index: Set[Tuple[str, str, str]] = {(e.process, *_key(e)) for e in sends}
    receive_index: Dict[Tuple[str, str, str], int] = {}
    for e in receives:
        key = (e.process, *_key(e))
        receive_index.setdefault(key, e.eid)

    if processes is None:
        procs = sorted(
            {e.process for e in sends} | {e.process for e in receives} | {e.process for e in updates}
        )
    else:
        procs = sorted(set(processes))

    violations: List[str] = []
    r1 = r2 = r3 = True
    missing_receivers: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    for update in updates:
        parent_id, block_id = _key(update)
        creator = None
        if block_creators is not None:
            creator = block_creators.get(block_id)
        if creator is not None:
            locally_generated = creator == update.process
        else:
            # Fallback heuristic: a process that *sent* the update generated
            # it (R1's premise); otherwise, an update never received locally
            # must also have been generated locally.
            locally_generated = (
                (update.process, parent_id, block_id) in send_index
                or (update.process, parent_id, block_id) not in receive_index
            )
        if locally_generated:
            # R1: the generating process must send its update.
            if (update.process, parent_id, block_id) not in send_index:
                r1 = False
                violations.append(
                    f"R1: update of {block_id} at {update.process} has no matching send"
                )
        else:
            # R2: a foreign update must be preceded by a local receive.
            received_at = receive_index.get((update.process, parent_id, block_id))
            if received_at is None or received_at > update.eid:
                r2 = False
                violations.append(
                    f"R2: update of {block_id} at {update.process} not preceded by a receive"
                )
        # R3: every process must (eventually) receive this update.
        missing = tuple(
            p
            for p in procs
            if (p, parent_id, block_id) not in receive_index
        )
        if missing:
            r3 = False
            missing_receivers[(parent_id, block_id)] = missing
            violations.append(
                f"R3: update of {block_id} never received by {', '.join(missing)}"
            )

    return UpdateAgreementResult(
        r1_holds=r1,
        r2_holds=r2,
        r3_holds=r3,
        violations=tuple(violations),
        missing_receivers=missing_receivers,
    )


def check_light_reliable_communication(
    history: History, correct_processes: Iterable[str]
) -> LRCResult:
    """Check LRC Validity and Agreement over a recorded history."""
    correct = sorted(set(correct_processes))
    sends = history.replication_events(EventKind.SEND)
    receives = history.replication_events(EventKind.RECEIVE)
    received_by: Dict[Tuple[str, str], Set[str]] = {}
    for e in receives:
        received_by.setdefault(_key(e), set()).add(e.process)

    violations: List[str] = []
    validity = True
    agreement = True

    # Validity: a correct sender eventually receives its own message.
    for send in sends:
        if send.process not in correct:
            continue
        key = _key(send)
        if send.process not in received_by.get(key, set()):
            validity = False
            violations.append(
                f"Validity: {send.process} sent {key[1]} but never received it"
            )

    # Agreement: if any correct process received m, all correct processes do.
    for key, receivers in received_by.items():
        if not receivers.intersection(correct):
            continue
        missing = [p for p in correct if p not in receivers]
        if missing:
            agreement = False
            violations.append(
                f"Agreement: {key[1]} received by {sorted(receivers & set(correct))} "
                f"but never by {missing}"
            )

    return LRCResult(
        validity_holds=validity,
        agreement_holds=agreement,
        violations=tuple(violations),
    )
