"""Registered adversary vocabulary: scheduled fault injection.

Section 4.2's failure model allows Byzantine processes and makes "no
assumption on the number of failures".  Until this module existed the
repo expressed process-level adversaries as two bespoke runners
(:mod:`repro.protocols.faults`); everything else — channels, topologies,
protocols — was first-class registered vocabulary.  A :class:`FaultModel`
closes that gap: it is a declarative adversary that injects its behaviour
as *scheduled events through the simulator itself*, so it composes with
every channel model, every topology and both event cores (``array`` /
``heap``) byte-identically.

The lifecycle mirrors how :func:`repro.protocols.base.run_protocol`
stages a run:

* :meth:`FaultModel.install` — called once after every process is
  registered and *before* any ``on_start``; validates membership and
  applies construction-time behaviour (e.g. muting silent members).
* :meth:`FaultModel.after_process_start` — called immediately after each
  process's own ``on_start()``, in registration order.  Crash faults
  schedule their kill timer here, which reproduces the legacy
  ``CrashingNakamotoReplica.on_start`` queue-insertion point exactly —
  the property that makes the registry-based ``crash`` event-for-event
  identical to the retained runner.
* :meth:`FaultModel.after_start` — called once after every process has
  started; global adversarial events (partition splits and heals, churn
  leaves and joins, eclipse windows) are scheduled on the simulator here.
* :meth:`FaultModel.heal_time` — the virtual time after which the
  adversary stops interfering (``None`` if it never does); the
  :class:`~repro.core.degradation.DegradationMonitor` uses it to measure
  time-to-heal.

Faults are *registered* (``@register_fault``), mirroring
``@register_topology``, so the engine's
:class:`~repro.engine.spec.FaultSpec` can name them declaratively
(``--fault partition:heal_at=60``, ``fault.kind`` sweep axes).

Healing and state transfer
--------------------------
Block dissemination is relay-on-first-reception (LRC), so blocks created
on one side of a partition are never re-announced once the partition
heals — without an explicit state transfer the two sides would stay
split-brain forever (their orphan buffers never fill).  Healing events
therefore perform a deterministic *sync sweep*: every alive replica
adopts every block known to its alive peers, in registration × tree
insertion order (:func:`state_sync`).  Churn rejoins sync the joiner the
same way before rebooting its timers via ``on_start()``.
"""

from __future__ import annotations

import inspect
from abc import ABC
from functools import partial
from typing import (
    Any,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    TYPE_CHECKING,
)

from repro.core.errors import UnknownVocabularyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.process import Process
    from repro.network.simulator import Network

__all__ = [
    "FaultModel",
    "CrashFault",
    "SilentFault",
    "ChurnFault",
    "PartitionFault",
    "EclipseFault",
    "register_fault",
    "available_faults",
    "get_fault",
    "build_fault",
    "state_sync",
    "FAULT_REGISTRY",
]


class FaultModel(ABC):
    """A declarative adversary acting through scheduled simulator events.

    All hooks default to no-ops so a concrete fault only implements the
    stages it needs; see the module docstring for when each is called.
    """

    def install(self, network: "Network") -> None:
        """Validate membership and apply pre-start behaviour."""

    def after_process_start(self, process: "Process") -> None:
        """Called right after ``process.on_start()``, in registration order."""

    def after_start(self, network: "Network") -> None:
        """Schedule global adversarial events on ``network.simulator``."""

    def heal_time(self) -> Optional[float]:
        """Virtual time after which the adversary stops interfering."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# registry (mirrors @register_topology)
# ---------------------------------------------------------------------------

#: Name -> fault class, in registration order.
FAULT_REGISTRY: Dict[str, Type[FaultModel]] = {}


def register_fault(name: str):
    """Class decorator: register a :class:`FaultModel` under ``name``.

    The decorated class is returned unchanged; a name collision raises so
    two modules cannot silently shadow each other's faults (the same
    contract as ``@register_topology`` / ``@register_protocol``).
    """

    def decorate(cls: Type[FaultModel]) -> Type[FaultModel]:
        if name in FAULT_REGISTRY:
            raise ValueError(f"fault {name!r} already registered")
        FAULT_REGISTRY[name] = cls
        return cls

    return decorate


def available_faults() -> Tuple[str, ...]:
    """Names of every registered fault."""
    return tuple(FAULT_REGISTRY)


def get_fault(name: str) -> Type[FaultModel]:
    """Resolve ``name`` to its fault class.

    Raises the uniform :class:`~repro.core.errors.UnknownVocabularyError`
    listing the registered names, like every other spec vocabulary.
    """
    try:
        return FAULT_REGISTRY[name]
    except KeyError:
        raise UnknownVocabularyError("fault", name, FAULT_REGISTRY) from None


def fault_accepts_seed(cls: Type[FaultModel]) -> bool:
    """``True`` iff the fault constructor takes a ``seed`` keyword."""
    return "seed" in inspect.signature(cls).parameters


def build_fault(
    kind: str, params: Optional[Mapping[str, Any]] = None, seed: int = 0
) -> FaultModel:
    """Instantiate the registered fault ``kind`` with ``params``.

    ``seed`` is forwarded only to faults whose constructor accepts one
    (and only when ``params`` does not pin it), exactly like
    ``build_topology`` — so a single spec-level integer reproduces the
    whole run without every fault having to declare a seed parameter.
    """
    cls = get_fault(kind)
    kwargs = dict(params or {})
    if fault_accepts_seed(cls) and "seed" not in kwargs:
        kwargs["seed"] = seed
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# state transfer (what makes partitions *heal* under LRC dissemination)
# ---------------------------------------------------------------------------


def state_sync(network: "Network", targets: Optional[Sequence[str]] = None) -> int:
    """Deterministic block-level resync among the alive registered replicas.

    Every target replica adopts every block known to each alive peer, in
    registration order × tree insertion order (parents first, so no
    orphan buffering is triggered).  ``targets=None`` syncs everyone —
    the partition-heal sweep; a churn rejoin passes only the joiner.
    Processes without a block tree (bare :class:`Process` instances) are
    skipped, so the fault layer stays protocol-agnostic.  Returns the
    number of blocks newly adopted.
    """
    processes = [network.process(pid) for pid in network.process_ids]
    sources = [p for p in processes if p.alive and hasattr(p, "tree")]
    if targets is None:
        sinks = sources
    else:
        registered = {p.pid: p for p in sources}
        sinks = [registered[pid] for pid in targets if pid in registered]
    adopted = 0
    for sink in sinks:
        adopt = getattr(sink, "adopt_block", None)
        if adopt is None:
            continue
        for source in sources:
            if source is sink:
                continue
            for block in source.tree:
                if adopt(block):
                    adopted += 1
    return adopted


# ---------------------------------------------------------------------------
# implementations
# ---------------------------------------------------------------------------


@register_fault("crash")
class CrashFault(FaultModel):
    """Replicas named in ``at`` crash at their configured virtual time.

    The registry re-expression of the legacy
    :class:`~repro.protocols.faults.CrashingNakamotoReplica` runner: the
    kill timer is scheduled through ``process.schedule`` immediately
    after the process's own ``on_start()``, at the exact queue-insertion
    point the legacy subclass used, so the recorded histories are
    event-for-event identical.
    """

    def __init__(self, at: Mapping[str, float]) -> None:
        self.at = {pid: float(t) for pid, t in at.items()}
        for pid, t in self.at.items():
            if t < 0:
                raise ValueError("crash_at must be non-negative")

    def install(self, network: "Network") -> None:
        unknown = sorted(set(self.at) - set(network.process_ids))
        if unknown:
            raise ValueError(f"unknown crash replicas {unknown}")

    def after_process_start(self, process: "Process") -> None:
        when = self.at.get(process.pid)
        if when is not None:
            process.schedule(when, process.crash)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrashFault(at={self.at!r})"


# Muted outbound primitives installed by SilentFault.  Module-level (not
# lambdas) so silenced processes survive a checkpoint pickle; they shadow
# the class methods as instance attributes, hence no ``self`` parameter.
def _muted_send(receiver, kind, payload) -> bool:  # noqa: ARG001
    return False


def _muted_broadcast(kind, payload, include_self=True) -> int:  # noqa: ARG001
    return 0


def _muted_multicast(receivers, kind, payload) -> int:  # noqa: ARG001
    return 0


@register_fault("silent")
class SilentFault(FaultModel):
    """``members`` become silent Byzantine: they receive but never send.

    The registry re-expression of the legacy
    :class:`~repro.protocols.faults.SilentCommitteeReplica`: outbound
    primitives are muted at install time (before any ``on_start``), which
    shadows the class methods exactly like the legacy subclass overrides
    did — the muted replica still processes deliveries and updates its
    local state, it just never proposes, votes or relays.
    """

    def __init__(self, members: Sequence[str]) -> None:
        self.members = tuple(members)

    def install(self, network: "Network") -> None:
        unknown = sorted(set(self.members) - set(network.process_ids))
        if unknown:
            raise ValueError(f"unknown byzantine replicas {unknown}")
        for pid in self.members:
            process = network.process(pid)
            process.byzantine = True
            # Instance attributes shadow the class methods for exactly
            # this process — the same muting the legacy subclass applied.
            process.send = _muted_send
            process.broadcast = _muted_broadcast
            process.multicast = _muted_multicast

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SilentFault(members={self.members!r})"


@register_fault("churn")
class ChurnFault(FaultModel):
    """Dynamic membership: processes leave (and optionally rejoin) mid-run.

    ``leave`` maps pid -> departure time: the process crashes and is
    deregistered from the network, so its in-flight deliveries are
    quarantined and every receiver cache is invalidated.  ``join`` maps a
    subset of those pids to a later rejoin time: the process is
    re-registered, resynced from its alive peers (:func:`state_sync`) and
    rebooted through its own ``on_start()``.
    """

    def __init__(
        self,
        leave: Mapping[str, float],
        join: Optional[Mapping[str, float]] = None,
        resync: bool = True,
    ) -> None:
        self.leave = {pid: float(t) for pid, t in leave.items()}
        self.join = {pid: float(t) for pid, t in (join or {}).items()}
        self.resync = bool(resync)
        for pid, t in self.leave.items():
            if t < 0:
                raise ValueError("leave times must be non-negative")
        stranger = sorted(set(self.join) - set(self.leave))
        if stranger:
            raise ValueError(f"join names replicas that never leave: {stranger}")
        for pid, t in self.join.items():
            if t <= self.leave[pid]:
                raise ValueError(f"{pid!r} must rejoin strictly after leaving")

    def install(self, network: "Network") -> None:
        unknown = sorted(set(self.leave) - set(network.process_ids))
        if unknown:
            raise ValueError(f"unknown churn replicas {unknown}")

    def after_start(self, network: "Network") -> None:
        simulator = network.simulator
        for pid in sorted(self.leave):
            process = network.process(pid)
            simulator.schedule_at(
                self.leave[pid], partial(self._leave, network, process)
            )
        for pid in sorted(self.join):
            process = network.process(pid)
            simulator.schedule_at(
                self.join[pid], partial(self._rejoin, network, process)
            )

    def _leave(self, network: "Network", process: "Process") -> None:
        network.deregister(process.pid)
        process.crash()

    def _rejoin(self, network: "Network", process: "Process") -> None:
        network.register(process)
        process.alive = True
        if self.resync:
            state_sync(network, targets=(process.pid,))
        process.on_start()

    def heal_time(self) -> Optional[float]:
        if not self.join:
            return None
        return max(self.join.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChurnFault(leave={self.leave!r}, join={self.join!r})"


class _GroupFilter:
    """Edge filter admitting only same-group traffic (partition split).

    A picklable callable (the nested ``allows`` closure it replaces could
    not cross a checkpoint): the fault keeps the *same object* it handed
    to :meth:`Network.add_message_filter`, and the pickle memo preserves
    that sharing, so ``remove_message_filter`` still finds it after a
    restore.
    """

    __slots__ = ("group_of",)

    def __init__(self, group_of: Mapping[str, int]) -> None:
        self.group_of = group_of

    def __call__(self, sender: str, receiver: str) -> bool:
        group_of = self.group_of
        return group_of.get(sender, -1) == group_of.get(receiver, -1)


class _VictimFilter:
    """Edge filter severing every edge touching the eclipsed victim."""

    __slots__ = ("victim",)

    def __init__(self, victim: str) -> None:
        self.victim = victim

    def __call__(self, sender: str, receiver: str) -> bool:
        if sender == receiver:
            return True
        victim = self.victim
        return sender != victim and receiver != victim


@register_fault("partition")
class PartitionFault(FaultModel):
    """Split-brain: the network splits into ``groups``, then (maybe) heals.

    From ``at`` (default: the start of the run) a message filter on the
    network drops every fan-out crossing group boundaries — both sides
    keep producing blocks against their own view.  Replicas not named in
    any group form one implicit extra side.  At ``heal_at`` (``None``
    never heals: the Theorem 4.6/4.7 shape) the filter is removed and a
    :func:`state_sync` sweep merges the diverged trees, after which the
    selection rule converges the replicas onto one branch.
    """

    def __init__(
        self,
        groups: Sequence[Sequence[str]],
        at: float = 0.0,
        heal_at: Optional[float] = None,
        resync: bool = True,
    ) -> None:
        self.groups = tuple(tuple(group) for group in groups)
        if not self.groups or any(not group for group in self.groups):
            raise ValueError("partition groups must be non-empty")
        seen: Dict[str, int] = {}
        for gi, group in enumerate(self.groups):
            for pid in group:
                if pid in seen:
                    raise ValueError(f"replica {pid!r} appears in two groups")
                seen[pid] = gi
        self._group_of = seen
        self.at = float(at)
        self.heal_at = None if heal_at is None else float(heal_at)
        self.resync = bool(resync)
        if self.at < 0:
            raise ValueError("partition time must be non-negative")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal_at must be after the partition time")
        self._filter = None

    def install(self, network: "Network") -> None:
        unknown = sorted(set(self._group_of) - set(network.process_ids))
        if unknown:
            raise ValueError(f"unknown partition replicas {unknown}")

    def after_start(self, network: "Network") -> None:
        simulator = network.simulator
        simulator.schedule_at(self.at, partial(self._split, network))
        if self.heal_at is not None:
            simulator.schedule_at(self.heal_at, partial(self._heal, network))

    def _split(self, network: "Network") -> None:
        allows = _GroupFilter(self._group_of)
        self._filter = allows
        network.add_message_filter(allows)

    def _heal(self, network: "Network") -> None:
        if self._filter is not None:
            network.remove_message_filter(self._filter)
            self._filter = None
        if self.resync:
            state_sync(network)

    def heal_time(self) -> Optional[float]:
        return self.heal_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionFault(groups={self.groups!r}, at={self.at!r}, "
            f"heal_at={self.heal_at!r})"
        )


@register_fault("eclipse")
class EclipseFault(FaultModel):
    """Isolate one replica's view during a window ``[at, until)``.

    While eclipsed, every fan-out to or from ``victim`` is filtered (its
    own dissemination echo still arrives, so its local records stay
    well-formed); the victim keeps producing against its stale view —
    the classic eclipse-attack shape.  When the window closes the filter
    is lifted and a :func:`state_sync` sweep reconciles both directions:
    the victim learns the network's branch and the network learns the
    victim's withheld blocks.
    """

    def __init__(
        self,
        victim: str,
        until: float,
        at: float = 0.0,
        resync: bool = True,
    ) -> None:
        self.victim = victim
        self.at = float(at)
        self.until = float(until)
        self.resync = bool(resync)
        if self.at < 0:
            raise ValueError("eclipse start must be non-negative")
        if self.until <= self.at:
            raise ValueError("eclipse window must end after it starts")
        self._filter = None

    def install(self, network: "Network") -> None:
        if self.victim not in network.process_ids:
            raise ValueError(f"unknown eclipse victim {self.victim!r}")

    def after_start(self, network: "Network") -> None:
        simulator = network.simulator
        simulator.schedule_at(self.at, partial(self._isolate, network))
        simulator.schedule_at(self.until, partial(self._release, network))

    def _isolate(self, network: "Network") -> None:
        allows = _VictimFilter(self.victim)
        self._filter = allows
        network.add_message_filter(allows)

    def _release(self, network: "Network") -> None:
        if self._filter is not None:
            network.remove_message_filter(self._filter)
            self._filter = None
        if self.resync:
            state_sync(network)

    def heal_time(self) -> Optional[float]:
        return self.until

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EclipseFault(victim={self.victim!r}, at={self.at!r}, until={self.until!r})"
