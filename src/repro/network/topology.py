"""Dissemination topologies: who hears a broadcast.

Until this module existed every protocol model was hard-wired to
full-mesh dissemination: a ``broadcast`` reached every registered
process.  The paper's system landscape (Table 1) is much richer —
ByzCoin and PeerCensus disseminate consensus traffic inside a committee,
Algorand's sortition committees restrict who votes, and every deployed
proof-of-work network gossips to a small peer sample rather than
flooding the planet.  A :class:`Topology` makes that dimension a
first-class, declarative layer of the message plane:

* the :class:`~repro.network.simulator.Network` owns one topology
  (default :class:`FullMesh`, byte-identical to the pre-topology
  broadcast path) and routes every ``broadcast`` through
  ``multicast(sender, topology.receivers(sender, pids), ...)``;
* topologies are *registered* (``@register_topology``), mirroring
  ``@register_protocol``, so the engine's
  :class:`~repro.engine.spec.TopologySpec` can name them declaratively
  (``--topology gossip``, sweep grids over topology kinds);
* all randomness is owned by the topology and seeded at construction, so
  a ``(seed, workload)`` pair still reproduces the whole run bit for bit.

Static vs. dynamic
------------------
A topology with ``static = True`` has a fixed receiver list per sender
for a given membership; the network caches those lists (invalidated when
:meth:`~repro.network.simulator.Network.register` changes membership)
exactly like the full-mesh ``_others`` exclusion cache.  A dynamic
topology (``static = False``, e.g. :class:`GossipFanout`) is consulted on
every fan-out and draws from its own seeded generator.

Receiver-order contract
-----------------------
Receiver order determines queue sequence numbers and therefore event
tie-breaks, so it is part of each topology's determinism contract:
deterministic topologies emit receivers in registration order (making
:class:`FullMesh` — and :class:`Committee` for member senders —
event-for-event identical to the pre-topology broadcast), while sampled
topologies (:class:`GossipFanout`) emit them in draw order.
"""

from __future__ import annotations

import inspect
import math
import random
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.errors import UnknownVocabularyError

__all__ = [
    "Topology",
    "FullMesh",
    "GossipFanout",
    "Committee",
    "Sharded",
    "Ring",
    "RandomRegular",
    "register_topology",
    "available_topologies",
    "get_topology",
    "TOPOLOGY_REGISTRY",
]

Pids = Tuple[str, ...]


class Topology(ABC):
    """Maps ``(sender, processes)`` to the receivers of a fan-out.

    ``processes`` is always the network's registered pid tuple in
    registration order; ``neighbors`` returns the subset (excluding the
    sender) that a broadcast by ``sender`` reaches.  :meth:`receivers`
    adds the ``include_self`` dimension the broadcast API exposes (a
    replica's own dissemination echo is how the paper's ``receive_i``
    event for the creator is recorded).
    """

    #: Static topologies have fixed per-sender receiver lists for a given
    #: membership; the network caches them.  Dynamic topologies (gossip)
    #: are consulted per fan-out.
    static: bool = True

    @abstractmethod
    def neighbors(self, sender: str, processes: Pids) -> Pids:
        """Receivers of ``sender``'s fan-out among ``processes`` (sender excluded)."""

    def receivers(self, sender: str, processes: Pids, include_self: bool = False) -> Pids:
        """The full receiver list of one broadcast by ``sender``."""
        selected = self.neighbors(sender, processes)
        if include_self:
            return (sender, *selected)
        return selected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# registry (mirrors @register_protocol)
# ---------------------------------------------------------------------------

#: Name -> topology class, in registration order.
TOPOLOGY_REGISTRY: Dict[str, Type[Topology]] = {}


def register_topology(name: str):
    """Class decorator: register a :class:`Topology` under ``name``.

    The decorated class is returned unchanged; a name collision raises so
    two modules cannot silently shadow each other's topologies (the same
    contract as ``@register_protocol``).
    """

    def decorate(cls: Type[Topology]) -> Type[Topology]:
        if name in TOPOLOGY_REGISTRY:
            raise ValueError(f"topology {name!r} already registered")
        TOPOLOGY_REGISTRY[name] = cls
        return cls

    return decorate


def available_topologies() -> Tuple[str, ...]:
    """Names of every registered topology."""
    return tuple(TOPOLOGY_REGISTRY)


def get_topology(name: str) -> Type[Topology]:
    """Resolve ``name`` to its topology class.

    Raises the uniform :class:`~repro.core.errors.UnknownVocabularyError`
    listing the registered names, like every other spec vocabulary.
    """
    try:
        return TOPOLOGY_REGISTRY[name]
    except KeyError:
        raise UnknownVocabularyError("topology", name, TOPOLOGY_REGISTRY) from None


def topology_accepts_seed(cls: Type[Topology]) -> bool:
    """``True`` iff the topology constructor takes a ``seed`` keyword."""
    return "seed" in inspect.signature(cls).parameters


# ---------------------------------------------------------------------------
# implementations
# ---------------------------------------------------------------------------


@register_topology("full")
class FullMesh(Topology):
    """Everyone hears everyone: the pre-topology broadcast semantics.

    The receiver lists are exactly the ones the pre-topology path built
    (the registered pid tuple with ``include_self``, the exclusion list
    without), so routing the default broadcast through this class is
    event-for-event identical to the historical ``_others`` path — the
    equivalence the topology test suite pins across all channel models.
    """

    def neighbors(self, sender: str, processes: Pids) -> Pids:
        return tuple(pid for pid in processes if pid != sender)

    def receivers(self, sender: str, processes: Pids, include_self: bool = False) -> Pids:
        if include_self:
            # The registered tuple itself: same object, same order, same
            # queue sequence numbers as the pre-topology broadcast.
            return processes
        return self.neighbors(sender, processes)


@register_topology("gossip")
class GossipFanout(Topology):
    """Epidemic gossip: each fan-out reaches ``fanout`` random peers.

    Every broadcast draws a fresh uniform sample of ``min(fanout, n-1)``
    distinct other processes from the topology's own seeded generator, so
    two runs with the same seed traverse identical receiver sequences
    (the determinism tests assert this).  Combined with the LRC relay
    (forward once on first reception) this is exactly how Bitcoin-style
    networks achieve reliable dissemination with per-node cost ``O(k)``
    instead of ``O(n)`` — the fan-out-vs-flood trade the
    ``simulation_gossip_fanout`` bench scenario measures.
    """

    static = False

    def __init__(self, fanout: int = 3, seed: int = 0) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def neighbors(self, sender: str, processes: Pids) -> Pids:
        others = [pid for pid in processes if pid != sender]
        k = min(self.fanout, len(others))
        if k <= 0:
            return ()
        if k == len(others):
            return tuple(others)
        chosen = self._rng.choice(len(others), size=k, replace=False)
        return tuple(others[i] for i in chosen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GossipFanout(fanout={self.fanout}, seed={self.seed})"


@register_topology("committee")
class Committee(Topology):
    """Committee-centred dissemination (ByzCoin / Algorand / Red Belly).

    Members of the committee fan out to every process (so observers still
    learn decided blocks) while non-members only reach the committee
    (clients submit upward, they do not flood the network).  With
    ``include_observers=False`` the committee closes entirely: members
    reach only members — the "committee-only dissemination" regime the
    ``simulation_sharded_committee`` bench scenario measures against full
    flood.

    ``members`` may be given explicitly; otherwise the first
    ``ceil(fraction * n)`` registered processes form the committee, which
    matches how the protocol runners name their writer sets (``p0..pk``).
    When every process is a member (the default committee protocols), the
    receiver lists are identical to :class:`FullMesh` — including order —
    so expressing a committee through this topology never perturbs an
    existing run.
    """

    def __init__(
        self,
        members: Optional[Sequence[str]] = None,
        fraction: float = 2.0 / 3.0,
        include_observers: bool = True,
    ) -> None:
        if members is None and not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.members = tuple(members) if members is not None else None
        self.fraction = fraction
        self.include_observers = include_observers

    def members_of(self, processes: Pids) -> Pids:
        """The committee, in registration order."""
        if self.members is not None:
            member_set = set(self.members)
            unknown = member_set - set(processes)
            if unknown:
                raise KeyError(
                    f"committee members {sorted(unknown)} are not registered processes"
                )
            return tuple(pid for pid in processes if pid in member_set)
        count = max(1, math.ceil(self.fraction * len(processes)))
        return processes[:count]

    def neighbors(self, sender: str, processes: Pids) -> Pids:
        members = self.members_of(processes)
        if sender in members:
            if self.include_observers:
                return tuple(pid for pid in processes if pid != sender)
            return tuple(pid for pid in members if pid != sender)
        return members

    def receivers(self, sender: str, processes: Pids, include_self: bool = False) -> Pids:
        if include_self and self.include_observers and sender in self.members_of(processes):
            # Same tuple/order as FullMesh: a member's open broadcast is
            # byte-identical to the pre-topology path.
            return processes
        return super().receivers(sender, processes, include_self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        who = list(self.members) if self.members is not None else f"fraction={self.fraction:.2f}"
        return f"Committee(members={who}, include_observers={self.include_observers})"


@register_topology("sharded")
class Sharded(Topology):
    """Shards with gateway cross-links.

    Processes are partitioned into shards — either explicitly via
    ``groups`` (lists of pids) or into ``shards`` contiguous
    registration-order slices of near-equal size.  Within a shard every
    member hears every other member; the first ``cross_links`` members of
    each shard act as *gateways* and are additionally connected to every
    other shard's gateways.  With ``cross_links >= 1`` the gateway clique
    keeps the graph connected, so LRC-style relays still disseminate
    blocks globally (shard → gateway → foreign gateways → foreign
    shards), at multi-hop latency — the cross-shard regime the ROADMAP's
    sharded-sweep direction targets.
    """

    def __init__(
        self,
        shards: int = 2,
        cross_links: int = 1,
        groups: Optional[Sequence[Sequence[str]]] = None,
    ) -> None:
        if groups is None and shards < 1:
            raise ValueError("shards must be >= 1")
        if cross_links < 0:
            raise ValueError("cross_links must be >= 0")
        self.shards = shards
        self.cross_links = cross_links
        self.groups = tuple(tuple(g) for g in groups) if groups is not None else None

    def shards_of(self, processes: Pids) -> Tuple[Pids, ...]:
        """The shard partition, each shard in registration order."""
        if self.groups is not None:
            assigned = [pid for group in self.groups for pid in group]
            if len(assigned) != len(set(assigned)):
                raise ValueError("sharded groups overlap")
            missing = set(processes) - set(assigned)
            unknown = set(assigned) - set(processes)
            if unknown:
                raise KeyError(
                    f"sharded groups name unregistered processes {sorted(unknown)}"
                )
            if missing:
                raise KeyError(
                    f"sharded groups leave processes unassigned: {sorted(missing)}"
                )
            return tuple(
                tuple(pid for pid in processes if pid in set(group))
                for group in self.groups
            )
        count = min(self.shards, len(processes)) or 1
        bounds = np.linspace(0, len(processes), count + 1).round().astype(int)
        return tuple(
            tuple(processes[bounds[i] : bounds[i + 1]]) for i in range(count)
        )

    def neighbors(self, sender: str, processes: Pids) -> Pids:
        partition = self.shards_of(processes)
        mine: Optional[Pids] = None
        for shard in partition:
            if sender in shard:
                mine = shard
                break
        if mine is None:  # pragma: no cover - shards_of covers all processes
            raise KeyError(f"process {sender!r} is not assigned to any shard")
        out: List[str] = [pid for pid in mine if pid != sender]
        if sender in mine[: self.cross_links]:
            seen = set(out)
            for shard in partition:
                if shard is mine:
                    continue
                for gateway in shard[: self.cross_links]:
                    if gateway not in seen:
                        seen.add(gateway)
                        out.append(gateway)
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = f"groups={self.groups!r}" if self.groups is not None else f"shards={self.shards}"
        return f"Sharded({shape}, cross_links={self.cross_links})"


@register_topology("ring")
class Ring(Topology):
    """A ring in registration order: each process reaches ``hops`` each way.

    The minimal connected topology — the worst case for dissemination
    latency (diameter ``n / 2``) and the cheapest in message volume.
    """

    def __init__(self, hops: int = 1) -> None:
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.hops = hops

    def neighbors(self, sender: str, processes: Pids) -> Pids:
        n = len(processes)
        if n <= 1:
            return ()
        index = processes.index(sender)
        span = set()
        for hop in range(1, self.hops + 1):
            span.add((index + hop) % n)
            span.add((index - hop) % n)
        span.discard(index)
        return tuple(processes[i] for i in sorted(span))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ring(hops={self.hops})"


@register_topology("random-regular")
class RandomRegular(Topology):
    """An (approximately) ``degree``-regular random overlay.

    The graph is the union of ``ceil(degree / 2)`` Hamiltonian cycles,
    each drawn from a seeded shuffle — the classic peer-sampling overlay
    shape: connected by construction (every cycle alone is), symmetric,
    and with every node's degree in ``[2, 2 * ceil(degree / 2)]`` (below
    ``degree`` only when duplicate edges collapse).  The adjacency is a
    pure function of ``(seed, membership)``: it is rebuilt from scratch
    for a given pid tuple rather than consuming a mutable stream, so
    cache invalidation on (re-)registration cannot shift the graph of an
    unchanged membership.
    """

    def __init__(self, degree: int = 4, seed: int = 0) -> None:
        if degree < 2:
            raise ValueError("degree must be >= 2")
        self.degree = degree
        self.seed = seed

    def adjacency(self, processes: Pids) -> Dict[str, Pids]:
        """The full neighbor map for ``processes`` (deterministic)."""
        n = len(processes)
        links: Dict[str, List[str]] = {pid: [] for pid in processes}
        if n > 1:
            rng = random.Random(f"{self.seed}|{'|'.join(processes)}")
            rounds = max(1, -(-self.degree // 2))
            for _ in range(rounds):
                order = list(processes)
                rng.shuffle(order)
                for i, pid in enumerate(order):
                    peer = order[(i + 1) % n]
                    if peer != pid and peer not in links[pid]:
                        links[pid].append(peer)
                        links[peer].append(pid)
        # Registration order, like every deterministic topology.
        position = {pid: i for i, pid in enumerate(processes)}
        return {
            pid: tuple(sorted(peers, key=position.__getitem__))
            for pid, peers in links.items()
        }

    def neighbors(self, sender: str, processes: Pids) -> Pids:
        return self.adjacency(processes)[sender]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomRegular(degree={self.degree}, seed={self.seed})"


def build_topology(kind: str, params: Optional[Dict[str, Any]] = None, seed: int = 0) -> Topology:
    """Construct a registered topology from plain data.

    The declarative entry point :class:`~repro.engine.spec.TopologySpec`
    delegates here: ``kind`` resolves through the registry and ``seed`` is
    forwarded only to topologies whose constructor accepts one (and only
    when ``params`` does not already pin it), so a single spec-level seed
    reproduces the whole run.
    """
    cls = get_topology(kind)
    kwargs = dict(params or {})
    if topology_accepts_seed(cls) and "seed" not in kwargs:
        kwargs["seed"] = seed
    return cls(**kwargs)
