"""Communication abstractions: flooding and Light Reliable Communication.

Definition 4.4 introduces the **Light Reliable Communication (LRC)**
abstraction, a weakening of reliable broadcast keeping only its liveness
flavour:

* *Validity* — if a correct process sends a message, it eventually
  receives it;
* *Agreement* — if a message is received by some correct process, it is
  eventually received by every correct process.

Theorem 4.7 shows LRC is necessary for Eventual Consistency; the protocol
models therefore disseminate blocks through one of the two primitives
below, and the benches break them (by injecting loss) to reproduce the
necessity result.

* :class:`FloodingBroadcast` — best effort: one send per destination over
  the underlying channel, no retransmission.  Over reliable channels this
  *implements* LRC; over lossy channels it does not (which is the point).
* :class:`LightReliableCommunication` — flooding plus gossip-style relay:
  on first reception every process forwards the message once to everyone.
  This tolerates the loss of any single copy (and most multi-loss
  patterns), mirroring how Bitcoin/Ethereum-style dissemination achieves
  the LRC properties in practice.

Both primitives record the paper's ``send``/``receive`` replication events
through the shared history recorder; the ``update`` event is recorded by
the replica when it applies the block (see :mod:`repro.protocols.base`).

Dissemination rides the network's batched message plane: an n-way
``disseminate`` (and every LRC relay) is one shared envelope, one batched
channel draw and one bulk queue insert through
:meth:`repro.network.simulator.Network.multicast` — the LRC relay storm in
particular no longer allocates O(n²) per-recipient closures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.block import Block
from repro.network.process import Process
from repro.network.simulator import Message

__all__ = ["BlockAnnouncement", "FloodingBroadcast", "LightReliableCommunication"]

#: Message kind used for block dissemination.
BLOCK_KIND = "block"


@dataclass(frozen=True, slots=True)
class BlockAnnouncement:
    """Payload of a block dissemination message: ``(parent id, block)``."""

    parent_id: str
    block: Block

    @property
    def block_id(self) -> str:
        return self.block.block_id


class FloodingBroadcast:
    """Best-effort dissemination: send once to every process, never relay."""

    def __init__(self, owner: Process) -> None:
        self.owner = owner
        self._delivered: Set[str] = set()
        self._on_deliver: Optional[Callable[[BlockAnnouncement, str], None]] = None

    def on_deliver(self, callback: Callable[[BlockAnnouncement, str], None]) -> None:
        """Register the replica callback invoked on first delivery of a block."""
        self._on_deliver = callback

    # -- sending ------------------------------------------------------------------

    def disseminate(self, announcement: BlockAnnouncement) -> None:
        """Send the announcement to every process (including ourselves).

        Records the ``send`` replication event once (the paper's
        ``send_i(b_g, b)`` is a single event regardless of fan-out).
        """
        self.owner.recorder.send(
            self.owner.pid, announcement.parent_id, announcement.block_id
        )
        self.owner.broadcast(BLOCK_KIND, announcement, include_self=True)

    # -- receiving ------------------------------------------------------------------

    def handle(self, message: Message) -> Optional[BlockAnnouncement]:
        """Process a delivery; returns the announcement on *first* delivery."""
        if message.kind != BLOCK_KIND:
            return None
        announcement: BlockAnnouncement = message.payload
        if announcement.block_id in self._delivered:
            return None
        self._delivered.add(announcement.block_id)
        self.owner.recorder.receive(
            self.owner.pid, announcement.parent_id, announcement.block_id
        )
        if self._on_deliver is not None:
            self._on_deliver(announcement, message.sender)
        return announcement

    def handle_batch(self, deliveries) -> int:
        """Batched :meth:`handle`: vectorized seen-set path for dup floods.

        ``deliveries`` holds ``(time, seq, message)`` triples addressed
        to the owner (see :meth:`Process.on_message_batch
        <repro.network.process.Process.on_message_batch>`).  A duplicate
        ``BlockAnnouncement`` is a pure no-op in the scalar path — the
        seen-set check records nothing and calls nothing — so runs of
        duplicates are skipped against the seen set alone, without the
        per-message preemption check.  That skip is only taken while
        ``clean`` holds (owner alive and registered, overflow heap
        empty): a duplicate dispatches no callback, so neither fact can
        change under it, while a *real* delivery can crash the owner or
        push overflow events and therefore re-evaluates both.  First
        deliveries and non-block messages replay the exact scalar
        semantics via ``owner.on_message``.  Returns the consumed count.
        """
        owner = self.owner
        network = owner.network
        sim = network.simulator
        delivered = self._delivered
        processes = network._processes
        pid = owner.pid
        count = 0
        clean = not network._overflow_pending()
        for time, seq, message in deliveries:
            if clean and message.kind == BLOCK_KIND:
                payload = message.payload
                if (
                    type(payload) is BlockAnnouncement
                    and payload.block.block_id in delivered
                ):
                    count += 1
                    continue
            if count and network.batch_interrupted(owner, time, seq):
                break
            if time > sim.now:
                sim.now = time
            count += 1
            owner.on_message(message)
            clean = (
                owner.alive
                and processes.get(pid) is owner
                and not network._overflow_pending()
            )
        return count

    @property
    def delivered_blocks(self) -> Tuple[str, ...]:
        return tuple(sorted(self._delivered))


class LightReliableCommunication(FloodingBroadcast):
    """Flooding with relay-on-first-reception (gossip).

    Every process forwards each announcement exactly once upon first
    receiving it.  If *some* correct process receives the announcement, its
    relay gives every other correct process ``n - 1`` additional chances to
    receive it — over channels that drop messages independently this is
    what makes the LRC Agreement property hold except with vanishing
    probability, and over reliable channels it holds deterministically.
    """

    def __init__(self, owner: Process, relay: bool = True) -> None:
        super().__init__(owner)
        self.relay = relay
        self.relayed = 0

    def handle(self, message: Message) -> Optional[BlockAnnouncement]:
        announcement = super().handle(message)
        if announcement is not None and self.relay and message.sender != self.owner.pid:
            # Forward once; do not re-record a send event (the relay is part
            # of the communication abstraction, not a new update by us).
            self.owner.broadcast(BLOCK_KIND, announcement, include_self=False)
            self.relayed += 1
        return announcement
