"""Message-passing substrate (Section 4.2 of the paper).

A deterministic discrete-event simulator plus the communication
abstractions the paper reasons about:

* :mod:`repro.network.simulator` — the event loop and virtual clock;
* :mod:`repro.network.channels` — channel models: asynchronous,
  synchronous (δ-bounded), partially synchronous (GST), lossy;
* :mod:`repro.network.process` — the process framework, including crash
  and Byzantine behaviours, wired to a shared
  :class:`~repro.core.history.HistoryRecorder`;
* :mod:`repro.network.topology` — pluggable dissemination topologies
  (full mesh, gossip fan-out, committee, sharded, ring, random-regular)
  deciding who hears each broadcast, registered as spec vocabulary;
* :mod:`repro.network.broadcast` — best-effort flooding and the Light
  Reliable Communication (LRC) abstraction of Definition 4.4;
* :mod:`repro.network.update_agreement` — the Update Agreement properties
  R1–R3 (Definition 4.3) and the LRC property checker used by the
  Theorem 4.6/4.7 benches.
"""

from repro.network.simulator import Simulator, Network, Message
from repro.network.channels import (
    ChannelModel,
    SynchronousChannel,
    AsynchronousChannel,
    PartiallySynchronousChannel,
    LossyChannel,
)
from repro.network.process import Process, CrashingProcess, SilentProcess
from repro.network.topology import (
    Topology,
    FullMesh,
    GossipFanout,
    Committee,
    Sharded,
    Ring,
    RandomRegular,
    register_topology,
    available_topologies,
    get_topology,
)
from repro.network.broadcast import FloodingBroadcast, LightReliableCommunication
from repro.network.update_agreement import (
    UpdateAgreementResult,
    check_update_agreement,
    check_light_reliable_communication,
)

__all__ = [
    "Simulator",
    "Network",
    "Message",
    "ChannelModel",
    "SynchronousChannel",
    "AsynchronousChannel",
    "PartiallySynchronousChannel",
    "LossyChannel",
    "Process",
    "CrashingProcess",
    "SilentProcess",
    "Topology",
    "FullMesh",
    "GossipFanout",
    "Committee",
    "Sharded",
    "Ring",
    "RandomRegular",
    "register_topology",
    "available_topologies",
    "get_topology",
    "FloodingBroadcast",
    "LightReliableCommunication",
    "UpdateAgreementResult",
    "check_update_agreement",
    "check_light_reliable_communication",
]
