"""Array-native event calendar for the discrete-event simulator.

The heap core (``Simulator(core="heap")``) stores every pending event as
a Python tuple in one global ``heapq`` — O(log n) object-churning pushes
and pops.  This module replaces that with a *calendar queue* whose
storage is numpy:

* events live in per-time-slot **buckets** — growable numpy structured
  arrays with dtype ``time: f8, seq: i8, method: i2, arg: i8``;
* the ``method`` column is an index into an **interned method-dispatch
  table** (reference-counted, slots recycled when a bucket drains, so
  one-shot closures cannot exhaust the 32767-entry i2 space);
* the ``arg`` column is an index into the bucket's **arg intern pool** —
  argument objects are interned per bucket and the whole pool is dropped
  when the bucket drains, so no per-slot free-list bookkeeping runs on
  the hot path;
* a fan-out (:meth:`ArrayEventCore.schedule_block`) is one vectorized
  column fill per touched bucket — the shared method is interned once,
  times arrive as one numpy array, and slot grouping is a single stable
  argsort — plus one ``lexsort`` per bucket at drain time, instead of k
  heap pushes;
* scalar pushes append to a small per-bucket staging list (a Python
  list append is ~2x faster than a numpy scalar row write) that is
  flushed into the arrays when the bucket is materialized.

Draining pops the lowest-slot bucket (a tiny heap of slot numbers),
sorts it once by ``(time, seq)``, and walks it with the loop in
:mod:`repro.network._drain`.  Events scheduled *into the active slot or
earlier* while it drains go to a small overflow heap that interleaves
with the run — this preserves exact ``(time, seq)`` order, so recorded
histories are byte-identical to the heap core's (asserted by the
equivalence suite).

The drain loop (:mod:`repro.network._drain`) and the callback-plane hot
paths (:mod:`repro.network._hotpath`) are importable as compiled
extensions when ``setup.py`` was able to build them (mypyc);
``COMPILED_MODULES`` reports which flavour of each is live.  Absent a
compiler the pure-Python modules are used and results are identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.network import _drain, _hotpath

__all__ = [
    "ArrayEventCore",
    "EVENT_DTYPE",
    "NO_ARG",
    "COMPILED_MODULES",
    "DRAIN_COMPILED",
]

class _NoArgType:
    """Singleton type of :data:`NO_ARG`.

    Pickles by global name (``__reduce__`` returns ``"NO_ARG"``) so a
    checkpointed queue entry carrying the sentinel restores to the *same*
    object — both cores dispatch on ``arg is NO_ARG`` identity, which a
    plain ``object()`` would break across a pickle round-trip.
    """

    __slots__ = ()

    def __reduce__(self):
        return "NO_ARG"


#: Sentinel marking "call the method with no argument".  The heap core in
#: :mod:`repro.network.simulator` re-exports this as ``_NO_ARG`` so both
#: cores dispatch through the same identity check.
NO_ARG = _NoArgType()

def _is_compiled(module) -> bool:
    return str(getattr(module, "__file__", "")).endswith((".so", ".pyd"))


#: Per-module report of which hot-path flavour is live: True when the
#: import resolved to a compiled extension (mypyc build), False under
#: the pure-Python fallback.  ``repro bench`` records this dict and the
#: compiled-flavour CI job asserts every value is True.
COMPILED_MODULES = {
    "_drain": _is_compiled(_drain),
    "_hotpath": _is_compiled(_hotpath),
}

#: Backwards-compatible alias (pre-PR10 name) for the drain-loop entry
#: of :data:`COMPILED_MODULES`.
DRAIN_COMPILED = COMPILED_MODULES["_drain"]

EVENT_DTYPE = np.dtype(
    [("time", "f8"), ("seq", "i8"), ("method", "i2"), ("arg", "i8")]
)

_METHOD_TABLE_LIMIT = 32767  # max live i2 index


def _pack_int_args(args):
    """Pack a homogeneous list of Python ints into an int64 array.

    Checkpoint-only representation: bulk-scheduled workload blocks carry
    per-event args as plain int lists, which pickle one object at a
    time.  An int64 array pickles as a single buffer — 10-20x faster and
    smaller.  Lists holding anything other than plain ints (multicast
    message objects, floats, mixed payloads) are kept as-is.
    """
    if not isinstance(args, list) or not args or type(args[0]) is not int:
        return args
    try:
        return np.asarray(args, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return args


def _unpack_int_args(packed):
    """Invert :func:`_pack_int_args`; ``tolist`` restores identical ints."""
    if isinstance(packed, np.ndarray):
        return packed.tolist()
    return packed


def _pack_bucket_table(buckets):
    """Consolidate a bucket table's deferred blocks for pickling.

    A long run's pending workload lives in tens of thousands of small
    per-bucket ``(times, seqs, mid, args)`` blocks; pickled one by one,
    the fixed per-array cost dominates (~8us each, regardless of size).
    Concatenating every block into four whole-table columns plus one
    per-block metadata array turns the snapshot into a handful of large
    buffer writes.  Blocks whose args are not plain ints (multicast
    message objects) keep their arg lists verbatim, in block order.
    """
    try:
        return _pack_bucket_table_columns(buckets, pack_ints=True)
    except (TypeError, ValueError, OverflowError):
        # A block whose args *started* with a plain int but held mixed
        # types further in.  Not produced by any current scheduling
        # path; repack with every arg list kept verbatim.
        return _pack_bucket_table_columns(buckets, pack_ints=False)


def _pack_bucket_table_columns(buckets, pack_ints):
    slots = np.fromiter(buckets.keys(), dtype=np.int64, count=len(buckets))
    rest = []  # per-bucket (rows, count, stage, args) — the non-block state
    meta = []  # per-block (slot, mid, length, int_packed) rows
    t_parts, s_parts, raw_args = [], [], []
    int_chain = []  # args of every int block, flattened; converted once
    for slot, bucket in buckets.items():
        count = bucket.count
        rows = bucket.data[:count].copy() if count else None
        rest.append((rows, count, bucket.stage, bucket.args))
        for bt, bs, bmid, bargs in bucket.blocks:
            int_packed = pack_ints and bool(bargs) and type(bargs[0]) is int
            meta.append((slot, bmid, len(bt), 1 if int_packed else 0))
            t_parts.append(bt)
            s_parts.append(bs)
            if int_packed:
                int_chain.extend(bargs)
            else:
                raw_args.append(bargs)
    return (
        "bucket-table/1",
        slots,
        rest,
        np.array(meta, dtype=np.int64) if meta else None,
        np.concatenate(t_parts) if t_parts else None,
        np.concatenate(s_parts) if s_parts else None,
        np.asarray(int_chain, dtype=np.int64) if int_chain else None,
        raw_args,
    )


def _unpack_bucket_table(packed):
    """Invert :func:`_pack_bucket_table` into a fresh bucket dict."""
    _tag, slots, rest, meta, times, seqs, int_args, raw_args = packed
    buckets = {}
    for slot, (rows, count, stage, args) in zip(slots.tolist(), rest):
        bucket = _Bucket()
        bucket.stage = stage
        bucket.args = args
        if count:
            bucket.reserve(count)
            bucket.data[:count] = rows
            bucket.count = count
        buckets[slot] = bucket
    if meta is not None:
        pos = apos = rpos = 0
        for slot, mid, length, int_packed in meta.tolist():
            bt = times[pos : pos + length]
            bs = seqs[pos : pos + length]
            pos += length
            if int_packed:
                bargs = int_args[apos : apos + length].tolist()
                apos += length
            else:
                bargs = raw_args[rpos]
                rpos += 1
            buckets[slot].blocks.append((bt, bs, mid, bargs))
    return buckets


class _Bucket:
    """Events of one time slot.

    Three complementary stores, all merged (and sorted once) when the
    bucket is materialized:

    * ``data`` — the canonical :data:`EVENT_DTYPE` structured array,
      filled by the generic bulk path (:meth:`ArrayEventCore.extend`);
    * ``blocks`` — deferred shared-method column blocks from the fan-out
      fast path: appending ``(times, seqs, mid, args)`` views is O(1),
      so a multicast pays no per-bucket numpy fill at insert time;
    * ``stage`` — scalar pushes as plain tuples (a list append is ~2x
      faster than a numpy scalar row write).

    ``args`` is the bucket-local arg intern pool for ``data``/``stage``
    rows; blocks carry their own arg lists, chained after it at
    materialization.
    """

    __slots__ = ("data", "count", "t", "s", "m", "a", "blocks", "stage", "args")

    def __init__(self) -> None:
        self.data: Optional[np.ndarray] = None
        self.count = 0
        self.t: Any = None  # cached field views of ``data``
        self.s: Any = None
        self.m: Any = None
        self.a: Any = None
        self.blocks: List[Tuple[Any, Any, int, List[Any]]] = []
        self.stage: List[Tuple[float, int, int, int]] = []
        self.args: List[Any] = []  # bucket-local arg intern pool

    def reserve(self, extra: int) -> None:
        needed = self.count + extra
        data = self.data
        if data is not None and needed <= len(data):
            return
        capacity = 64
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=EVENT_DTYPE)
        if data is not None and self.count:
            grown[: self.count] = data[: self.count]
        self.data = grown
        self.t = grown["time"]
        self.s = grown["seq"]
        self.m = grown["method"]
        self.a = grown["arg"]

    # -- pickling (checkpoint support) --------------------------------------
    #
    # The cached field views ``t``/``s``/``m``/``a`` alias ``data``; a
    # default pickle would materialize them as four *independent* arrays,
    # severing the aliasing ``reserve`` relies on.  State is therefore the
    # filled row prefix plus the deferred stores, and ``__setstate__``
    # rebuilds the views by reserving fresh storage.

    def __getstate__(self):
        rows = self.data[: self.count].copy() if self.count else None
        # Bulk-scheduled blocks (the client-workload path) carry their
        # args as plain lists — often hundreds of thousands of Python
        # ints, which pickle one object at a time.  Packing homogeneous
        # int lists into int64 arrays turns them into buffer copies;
        # ``__setstate__`` unpacks with ``tolist()`` so the restored
        # lists hold identical Python ints.
        blocks = [
            (times, seqs, mid, _pack_int_args(args))
            for times, seqs, mid, args in self.blocks
        ]
        return (rows, self.count, blocks, self.stage, self.args)

    def __setstate__(self, state):
        rows, count, blocks, stage, args = state
        self.data = None
        self.count = 0
        self.t = self.s = self.m = self.a = None
        self.blocks = [
            (times, seqs, mid, _unpack_int_args(packed))
            for times, seqs, mid, packed in blocks
        ]
        self.stage = stage
        self.args = args
        if count:
            self.reserve(count)
            self.data[:count] = rows
            self.count = count


class ArrayEventCore:
    """Calendar queue over numpy buckets; drop-in backend for Simulator.

    ``slot_width`` is the virtual-time span of one bucket.  It trades
    bucket count against overflow traffic: events pushed into the slot
    currently being drained bypass the arrays and go through a classic
    heap, so the width should be small relative to typical scheduling
    deltas (with message delays around 0.1–1.0 the default 0.25 keeps
    the overflow share in the low percent).
    """

    __slots__ = (
        "slot_width",
        "no_arg",
        "_inv_width",
        "_seq",
        "_inserted",
        "_consumed",
        "_buckets",
        "_bucket_heap",
        "_overflow",
        "_methods",
        "_method_ids",
        "_method_refs",
        "_method_free",
        "_run_times",
        "_run_seqs",
        "_run_methods",
        "_run_args",
        "_run_pos",
        "_run_len",
        "_run_slot",
        "_span_handlers",
        "_span_cell",
    )

    def __init__(self, slot_width: float = 0.25) -> None:
        if slot_width <= 0:
            raise ValueError("slot_width must be positive")
        self.slot_width = slot_width
        self.no_arg = NO_ARG
        self._inv_width = 1.0 / slot_width
        self._seq = 0  # same numbering as the heap core's itertools.count()
        self._inserted = 0
        self._consumed = 0
        self._buckets: Dict[int, _Bucket] = {}
        self._bucket_heap: List[int] = []
        # Events routed past the bucket plane while their slot is being
        # drained; plain (time, seq, method, arg) tuples, never interned.
        self._overflow: List[Tuple[float, int, Callable, Any]] = []
        # Interned method-dispatch table.  Slot refcounts are decremented
        # in bulk when a bucket materializes; zero-ref slots are recycled
        # through the free list so one-shot closures (Process.schedule
        # guards) cannot exhaust the i2 index space.
        self._methods: List[Any] = []
        self._method_ids: Dict[Any, int] = {}
        self._method_refs: List[int] = []
        self._method_free: List[int] = []
        # Active run: the materialized current bucket as parallel lists.
        self._run_times: List[float] = []
        self._run_seqs: List[int] = []
        self._run_methods: List[Any] = []
        self._run_args: List[Any] = []
        self._run_pos = 0
        self._run_len = 0
        self._run_slot: Optional[int] = None
        # Batch dispatch (the compiled callback plane): methods mapped
        # here have same-method run spans handed to their handler in one
        # call instead of per-event dispatch; the cell carries the
        # handler's consumed count for exception-path accounting.
        self._span_handlers: Dict[Any, Callable] = {}
        self._span_cell: List[int] = [0]

    def register_span_handler(self, method: Callable, handler: Callable) -> None:
        """Route same-method run spans of ``method`` to ``handler``.

        The drain loop probes consecutive run entries for *identity*
        with the current method object (interning guarantees exactly one
        object per live method id, so identity equals same-id) and, when
        two or more share it, calls ``handler(times, seqs, args, pos,
        end, until, cell)`` instead of dispatching each event.  The
        handler must consume >= 1 event, return the consumed count, and
        keep ``cell[0]`` current so an exception mid-span still accounts
        the events it processed.
        """
        self._span_handlers[method] = handler

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Queued events not yet processed.

        Exact between ``run()`` calls; during a drain it lags by the
        events processed so far in that call (they are accounted in one
        step when the drain returns).
        """
        return self._inserted - self._consumed

    # -- pickling (checkpoint support) ----------------------------------------

    def __getstate__(self):
        # The bucket table is repacked into whole-table columns (see
        # :func:`_pack_bucket_table`); every other slot pickles as-is.
        state = {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_buckets"
        }
        state["_buckets"] = _pack_bucket_table(self._buckets)
        return state

    def __setstate__(self, state):
        # Slots added after a checkpoint format shipped get defaults
        # first, so pre-PR10 snapshots restore cleanly.
        self._span_handlers = {}
        self._span_cell = [0]
        packed = state.pop("_buckets")
        for name, value in state.items():
            setattr(self, name, value)
        self._buckets = _unpack_bucket_table(packed)

    # -- insertion -------------------------------------------------------------

    def push(self, time: float, method: Callable, arg: Any) -> int:
        """Insert one event; returns its sequence number."""
        seq = self._seq
        self._seq = seq + 1
        self._inserted += 1
        slot = int(time * self._inv_width)
        run_slot = self._run_slot
        if run_slot is not None and slot <= run_slot:
            heappush(self._overflow, (time, seq, method, arg))
            return seq
        bucket = self._buckets.get(slot)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[slot] = bucket
            heappush(self._bucket_heap, slot)
        mid = self._intern_method(method, 1)
        args = bucket.args
        bucket.stage.append((time, seq, mid, len(args)))
        args.append(arg)
        return seq

    def schedule_small(
        self,
        now: float,
        times: List[float],
        method: Callable,
        args: List[Any],
        validate: bool = True,
    ) -> int:
        """Scalar-staged twin of :meth:`schedule_block` for small fan-outs.

        At typical multicast sizes (a handful of receivers) the numpy
        constants of :meth:`schedule_block` — asarray, astype, argsort —
        cost more than the whole insert; this path stages each entry as
        a plain tuple instead.  Sequence numbers, overflow routing and
        method refcounts are identical to the block path (the method is
        interned lazily so a fan-out routed entirely to the overflow
        heap leaves no zero-ref table entry behind).
        """
        k = len(times)
        if k == 0:
            return 0
        if validate:
            for time in times:
                if time < now:
                    raise ValueError("cannot schedule into the past")
        base = self._seq
        self._seq = base + k
        self._inserted += k
        inv = self._inv_width
        run_slot = self._run_slot
        buckets = self._buckets
        mid = -1
        for i in range(k):
            time = times[i]
            slot = int(time * inv)
            if run_slot is not None and slot <= run_slot:
                heappush(self._overflow, (time, base + i, method, args[i]))
                continue
            bucket = buckets.get(slot)
            if bucket is None:
                bucket = _Bucket()
                buckets[slot] = bucket
                heappush(self._bucket_heap, slot)
            if mid < 0:
                mid = self._intern_method(method, 1)
            else:
                self._method_refs[mid] += 1
            pool = bucket.args
            bucket.stage.append((time, base + i, mid, len(pool)))
            pool.append(args[i])
        return k

    def schedule_block(
        self,
        now: float,
        times: np.ndarray,
        method: Callable,
        args: List[Any],
        validate: bool = True,
    ) -> int:
        """Bulk insert one shared ``method`` at ``times[i]`` with ``args[i]``.

        The fan-out fast path: ``times`` is already a float64 array (e.g.
        ``now`` plus a channel's batched delay vector), the method is
        interned exactly once, and each touched bucket receives one
        vectorized column fill.  Sequence numbers follow array order.
        ``validate=False`` skips the past-timestamp check for callers
        whose times are ``now`` plus non-negative delays by construction
        (the multicast plane).
        """
        k = len(times)
        if k == 0:
            return 0
        if validate and float(times.min()) < now:
            raise ValueError("cannot schedule into the past")
        base = self._seq
        self._seq = base + k
        self._inserted += k
        slots = (times * self._inv_width).astype(np.int64)
        run_slot = self._run_slot
        first = int(slots[0])
        if int(slots[k - 1]) == first and (run_slot is None or first > run_slot):
            # Cheap probe: a block whose ends share an inactive slot is
            # usually single-slot — confirm without a full sort.
            if int(slots.min()) == first and int(slots.max()) == first:
                seqs = np.arange(base, base + k, dtype=np.int64)
                self._append_block(
                    first, times, seqs, self._intern_method(method, k), args
                )
                return k
        # General case: one stable argsort groups the block by slot (and,
        # because slots are monotone in time, puts any entries belonging
        # to the active slot or earlier in a prefix).  Within a bucket
        # insertion order is irrelevant — materialization sorts by
        # (time, seq) — so permuted views are fine.
        order = np.argsort(slots, kind="stable")
        ss = slots[order]
        ts = times[order]
        qs = base + order
        picked = order.tolist()
        ags = [args[i] for i in picked]
        start = 0
        if run_slot is not None and int(ss[0]) <= run_slot:
            # The prefix landing in (or before) the slot currently being
            # drained goes to the overflow heap, entry by entry.
            start = int(np.searchsorted(ss, run_slot, side="right"))
            overflow = self._overflow
            prefix_times = ts[:start].tolist()
            prefix_seqs = qs[:start].tolist()
            for i in range(start):
                heappush(
                    overflow, (prefix_times[i], prefix_seqs[i], method, ags[i])
                )
            if start == k:
                return k
        mid = self._intern_method(method, k - start)
        slot_list = ss[start:].tolist()
        bounds = np.flatnonzero(ss[start + 1 :] != ss[start:-1]).tolist()
        prev = start
        for b in bounds:
            nxt = start + b + 1
            self._append_block(
                slot_list[prev - start], ts[prev:nxt], qs[prev:nxt], mid, ags[prev:nxt]
            )
            prev = nxt
        self._append_block(slot_list[prev - start], ts[prev:], qs[prev:], mid, ags[prev:])
        return k

    def _append_block(self, slot, times, seqs, mid, args) -> None:
        """O(1) deferred insert of one shared-method column block."""
        bucket = self._buckets.get(slot)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[slot] = bucket
            heappush(self._bucket_heap, slot)
        bucket.blocks.append((times, seqs, mid, args))

    def extend(self, now: float, entries: List[Tuple[float, Callable, Any]]) -> int:
        """Bulk insert ``(time, method, arg)`` entries; returns the count.

        The generic :meth:`Simulator.schedule_many` backend: per-entry
        methods, so each is interned individually.  The whole batch is
        validated against ``now`` before any entry is inserted (the heap
        core raises at the first offending entry, having already pushed
        the earlier ones — an error-path-only difference).  Sequence
        numbers follow list order, matching what the same entries pushed
        one by one would receive.
        """
        k = len(entries)
        if k == 0:
            return 0
        if k < 16:
            # Small batches: per-entry scalar staging (the ``push`` body,
            # batch-validated first) beats the fromiter/argsort setup.
            for entry in entries:
                if entry[0] < now:
                    raise ValueError("cannot schedule into the past")
            base = self._seq
            self._seq = base + k
            self._inserted += k
            inv = self._inv_width
            run_slot = self._run_slot
            buckets = self._buckets
            for i in range(k):
                time, method, arg = entries[i]
                seq = base + i
                slot = int(time * inv)
                if run_slot is not None and slot <= run_slot:
                    heappush(self._overflow, (time, seq, method, arg))
                    continue
                bucket = buckets.get(slot)
                if bucket is None:
                    bucket = _Bucket()
                    buckets[slot] = bucket
                    heappush(self._bucket_heap, slot)
                mid = self._intern_method(method, 1)
                pool = bucket.args
                bucket.stage.append((time, seq, mid, len(pool)))
                pool.append(arg)
            return k
        times = np.fromiter((entry[0] for entry in entries), dtype=np.float64, count=k)
        if float(times.min()) < now:
            raise ValueError("cannot schedule into the past")
        base = self._seq
        self._seq = base + k
        self._inserted += k
        slots = (times * self._inv_width).astype(np.int64)
        run_slot = self._run_slot
        if run_slot is not None and int(slots.min()) <= run_slot:
            self._extend_mixed(run_slot, entries, times, slots, base)
            return k
        seqs = np.arange(base, base + k, dtype=np.int64)
        intern = self._intern_method
        slot_list = slots.tolist()
        first = slot_list[0]
        if all(slot == first for slot in slot_list):
            mids = np.fromiter(
                (intern(entry[1], 1) for entry in entries), dtype=np.int16, count=k
            )
            self._bulk_into(first, times, seqs, mids, [entry[2] for entry in entries])
            return k
        order = np.argsort(slots, kind="stable")
        picked = order.tolist()
        ts = times[order]
        qs = seqs[order]
        mids = np.fromiter(
            (intern(entries[i][1], 1) for i in picked), dtype=np.int16, count=k
        )
        ags = [entries[i][2] for i in picked]
        ss = slots[order]
        slot_sorted = ss.tolist()
        bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
        prev = 0
        for b in bounds.tolist():
            self._bulk_into(
                slot_sorted[prev], ts[prev:b], qs[prev:b], mids[prev:b], ags[prev:b]
            )
            prev = b
        self._bulk_into(slot_sorted[prev], ts[prev:], qs[prev:], mids[prev:], ags[prev:])
        return k

    def _extend_mixed(self, run_slot, entries, times, slots, base) -> None:
        """Entry-by-entry routing for batches straddling the active slot."""
        overflow = self._overflow
        time_list = times.tolist()
        slot_list = slots.tolist()
        buckets = self._buckets
        for i in range(len(entries)):
            slot = slot_list[i]
            time = time_list[i]
            _, method, arg = entries[i]
            seq = base + i
            if slot <= run_slot:
                heappush(overflow, (time, seq, method, arg))
                continue
            bucket = buckets.get(slot)
            if bucket is None:
                bucket = _Bucket()
                buckets[slot] = bucket
                heappush(self._bucket_heap, slot)
            mid = self._intern_method(method, 1)
            args = bucket.args
            bucket.stage.append((time, seq, mid, len(args)))
            args.append(arg)

    def _bulk_into(self, slot, times, seqs, mids, args) -> None:
        """Append one column block to ``slot``'s bucket (``mids`` may be
        a scalar id, broadcast over the block)."""
        bucket = self._buckets.get(slot)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[slot] = bucket
            heappush(self._bucket_heap, slot)
        m = len(times)
        bucket.reserve(m)
        n0 = bucket.count
        n1 = n0 + m
        start = len(bucket.args)
        bucket.t[n0:n1] = times
        bucket.s[n0:n1] = seqs
        bucket.m[n0:n1] = mids
        bucket.a[n0:n1] = np.arange(start, start + m, dtype=np.int64)
        bucket.args.extend(args)
        bucket.count = n1

    # -- method interning ------------------------------------------------------

    def _intern_method(self, method: Callable, count: int) -> int:
        ids = self._method_ids
        mid = ids.get(method)
        if mid is not None:
            self._method_refs[mid] += count
            return mid
        free = self._method_free
        if free:
            mid = free.pop()
            self._methods[mid] = method
            self._method_refs[mid] = count
        else:
            mid = len(self._methods)
            if mid > _METHOD_TABLE_LIMIT:
                raise RuntimeError(
                    "method-dispatch table exhausted: more than "
                    f"{_METHOD_TABLE_LIMIT} distinct callbacks are live at once"
                )
            self._methods.append(method)
            self._method_refs.append(count)
        ids[method] = mid
        return mid

    def _release_method(self, mid: int, count: int) -> None:
        refs = self._method_refs
        remaining = refs[mid] - count
        refs[mid] = remaining
        if remaining == 0:
            method = self._methods[mid]
            del self._method_ids[method]
            self._methods[mid] = None
            self._method_free.append(mid)

    # -- drain -----------------------------------------------------------------

    def drain(self, sim, until: Optional[float], max_events: int) -> int:
        return _drain.drain_events(self, sim, until, max_events)

    def _start_next_run(self) -> bool:
        """Materialize the lowest-slot bucket as the active run.

        Returns False (and clears the run marker) when no bucket is left.
        Invariants relied on: every heap entry corresponds to a live
        bucket (buckets are only removed here, together with their heap
        entry), and while a run is active every live bucket's slot is
        strictly greater than ``_run_slot`` (same-or-earlier pushes were
        diverted to the overflow heap).
        """
        heap = self._bucket_heap
        if not heap:
            self._run_slot = None
            self._run_times = []
            self._run_seqs = []
            self._run_methods = []
            self._run_args = []
            self._run_pos = 0
            self._run_len = 0
            return False
        slot = heappop(heap)
        bucket = self._buckets.pop(slot)
        table = self._methods
        pool = bucket.args
        stage = bucket.stage
        blocks = bucket.blocks
        count = bucket.count
        release = self._release_method
        if not blocks and count == 0:
            # Scalar pushes only (timers, small protocol steps): a plain
            # tuple sort beats numpy at these sizes.
            stage.sort()  # seqs are unique, so (time, seq) decides every tie
            times = [row[0] for row in stage]
            seqs = [row[1] for row in stage]
            methods = []
            args = []
            for row in stage:
                mid = row[2]
                methods.append(table[mid])
                args.append(pool[row[3]])
                release(mid, 1)
        elif count == 0 and len(stage) + sum(len(b[3]) for b in blocks) <= 32:
            # Small mixed bucket (a few scalar pushes plus small fan-out
            # blocks — the sparse-traffic shape): a tuple merge and one
            # list sort beat the concatenate/lexsort constants.
            rows = []
            for time, seq, mid, aidx in stage:
                rows.append((time, seq, mid, pool[aidx]))
            for bt, bs, bmid, bargs in blocks:
                bt_list = bt.tolist()
                bs_list = bs.tolist()
                for i in range(len(bargs)):
                    rows.append((bt_list[i], bs_list[i], bmid, bargs[i]))
            rows.sort()  # seqs unique: (time, seq) decides, args never compared
            times = []
            seqs = []
            methods = []
            args = []
            for time, seq, mid, arg in rows:
                times.append(time)
                seqs.append(seq)
                methods.append(table[mid])
                args.append(arg)
                release(mid, 1)
        else:
            # Merge the structured rows, the staged scalars and the
            # deferred fan-out blocks into one column set, then sort once.
            t_parts = []
            s_parts = []
            m_parts = []
            a_parts = []
            if count:
                t_parts.append(bucket.t[:count])
                s_parts.append(bucket.s[:count])
                m_parts.append(bucket.m[:count].astype(np.int64))
                a_parts.append(bucket.a[:count])
            if stage:
                t_col, s_col, m_col, a_col = zip(*stage)
                t_parts.append(np.array(t_col, dtype=np.float64))
                s_parts.append(np.array(s_col, dtype=np.int64))
                m_parts.append(np.array(m_col, dtype=np.int64))
                a_parts.append(np.array(a_col, dtype=np.int64))
            if blocks:
                offset = len(pool)
                mid_vals = []
                lens = []
                for bt, bs, bmid, bargs in blocks:
                    t_parts.append(bt)
                    s_parts.append(bs)
                    mid_vals.append(bmid)
                    lens.append(len(bargs))
                    pool.extend(bargs)
                total = len(pool) - offset
                m_parts.append(
                    np.repeat(np.array(mid_vals, dtype=np.int64), np.array(lens))
                )
                a_parts.append(np.arange(offset, offset + total, dtype=np.int64))
            if len(t_parts) == 1:
                t_all = t_parts[0]
                s_all = s_parts[0]
                m_all = m_parts[0]
                a_all = a_parts[0]
            else:
                t_all = np.concatenate(t_parts)
                s_all = np.concatenate(s_parts)
                m_all = np.concatenate(m_parts)
                a_all = np.concatenate(a_parts)
            order = np.lexsort((s_all, t_all))
            times = t_all[order].tolist()
            seqs = s_all[order].tolist()
            aids = a_all[order].tolist()
            args = [pool[i] for i in aids]
            counts = np.bincount(m_all)  # order-independent refcounts
            live = np.flatnonzero(counts)
            if live.size == 1:
                # One shared callback (the common multicast bucket).
                mid = int(live[0])
                methods = [table[mid]] * len(times)
                release(mid, len(times))
            else:
                methods = [table[i] for i in m_all[order].tolist()]
                for mid, c in enumerate(counts.tolist()):
                    if c:
                        release(mid, c)
        self._run_times = times
        self._run_seqs = seqs
        self._run_methods = methods
        self._run_args = args
        self._run_pos = 0
        self._run_len = len(times)
        self._run_slot = slot
        return True
