"""Inner drain loop of the array-native event calendar.

This module is the compilation unit for the optional accelerated build:
``setup.py`` compiles it with mypyc (or Cython) when a compiler toolchain
is present, in which case the import in :mod:`repro.network.event_core`
resolves to the extension module instead of this file.  The source is
deliberately monomorphic — plain attribute access, ints, floats, lists
and tuples — so the compiled and interpreted versions execute the exact
same logic and the pure-Python fallback is always available.

The loop itself is the calendar-queue pop protocol:

* the *run* is the current time-slot bucket, already sorted by
  ``(time, seq)`` and materialized into parallel Python lists;
* the *overflow* heap holds events scheduled (while the run was active)
  into the run's own slot or earlier — they must interleave with the
  remaining run entries, so each pop compares the two heads;
* when both are exhausted the next bucket is materialized
  (:meth:`ArrayEventCore._start_next_run`) and the loop continues.

Ordering is exactly the heap core's ``(time, seq)``; the equivalence
tests assert recorded histories are byte-identical.
"""

from __future__ import annotations

from heapq import heappop


def drain_events(core, sim, until, max_events):
    """Process queued events in ``(time, seq)`` order; returns the count.

    Mirrors the heap core's run loop contract: stops once the next event
    would pass ``until`` (leaving it queued), stops at ``max_events``,
    advances ``sim.now`` before each dispatch, and accounts processed
    events on the simulator even if a callback raises.  The run cursor
    is kept in a local and written back on every exit path (including
    exceptions); the loop itself is the only reader in between.
    """
    processed = 0
    overflow = core._overflow
    no_arg = core.no_arg
    pos = core._run_pos
    now = sim.now
    try:
        while processed < max_events:
            if pos >= core._run_len and not overflow:
                core._run_pos = pos
                if not core._start_next_run():
                    break
                pos = 0
            run_times = core._run_times
            run_seqs = core._run_seqs
            run_methods = core._run_methods
            run_args = core._run_args
            length = core._run_len
            while processed < max_events:
                from_overflow = False
                if pos < length:
                    time = run_times[pos]
                    if overflow:
                        head = overflow[0]
                        head_time = head[0]
                        if head_time < time or (
                            head_time == time and head[1] < run_seqs[pos]
                        ):
                            from_overflow = True
                            time = head_time
                elif overflow:
                    time = overflow[0][0]
                    from_overflow = True
                else:
                    break
                if until is not None and time > until:
                    return processed
                if from_overflow:
                    method = None
                    _, _, method, arg = heappop(overflow)
                else:
                    method = run_methods[pos]
                    arg = run_args[pos]
                    pos += 1
                if time > now:
                    now = time
                    sim.now = time
                if arg is no_arg:
                    method()
                else:
                    method(arg)
                processed += 1
    finally:
        core._run_pos = pos
        sim.events_processed += processed
        core._consumed += processed
    return processed
