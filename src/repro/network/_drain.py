"""Inner drain loop of the array-native event calendar.

This module is the compilation unit for the optional accelerated build:
``setup.py`` compiles it with mypyc (or Cython) when a compiler toolchain
is present, in which case the import in :mod:`repro.network.event_core`
resolves to the extension module instead of this file.  The source is
deliberately monomorphic — plain attribute access, ints, floats, lists
and tuples — so the compiled and interpreted versions execute the exact
same logic and the pure-Python fallback is always available.

The loop itself is the calendar-queue pop protocol:

* the *run* is the current time-slot bucket, already sorted by
  ``(time, seq)`` and materialized into parallel Python lists;
* the *overflow* heap holds events scheduled (while the run was active)
  into the run's own slot or earlier — they must interleave with the
  remaining run entries, so each pop compares the two heads;
* when both are exhausted the next bucket is materialized
  (:meth:`ArrayEventCore._start_next_run`) and the loop continues.

Ordering is exactly the heap core's ``(time, seq)``; the equivalence
tests assert recorded histories are byte-identical.

Batch dispatch (the compiled callback plane): when the active run holds
two or more *consecutive* entries sharing one interned method — detected
by object identity, since interning stores exactly one method object per
live id — and that method is registered in the core's span-handler table,
the whole span is handed to the handler in one call instead of per-event
dispatch.  The handler replays the scalar clock/guard protocol itself
(see :func:`repro.network._hotpath.deliver_span`) and reports progress
through a shared cell so exception-path accounting stays exact.
"""

from __future__ import annotations

from heapq import heappop


def drain_events(core, sim, until, max_events):
    """Process queued events in ``(time, seq)`` order; returns the count.

    Mirrors the heap core's run loop contract: stops once the next event
    would pass ``until`` (leaving it queued), stops at ``max_events``,
    advances ``sim.now`` before each dispatch, and accounts processed
    events on the simulator even if a callback raises.  The run cursor
    is kept in a local and written back on every exit path (including
    exceptions); the loop itself is the only reader in between.

    When ``sim.callback_timer`` is set (``timed_callbacks()`` profiling),
    each dispatch is bracketed with the timer and accumulated onto
    ``sim.callback_seconds`` — that is the numerator of the bench's
    ``callback_share`` metric.
    """
    processed = 0
    overflow = core._overflow
    no_arg = core.no_arg
    pos = core._run_pos
    now = sim.now
    spans = core._span_handlers
    cell = core._span_cell
    timer = getattr(sim, "callback_timer", None)
    # Span end-scan memo: the run arrays are immutable while the run is
    # active (mid-run schedules go to the overflow heap), so a scanned
    # span boundary stays valid for the whole run.  Without the memo an
    # overflow preemption mid-span would force a rescan of the remaining
    # region on every resume — quadratic on callback-heavy floods.
    span_end = 0
    span_method = None
    try:
        while processed < max_events:
            if pos >= core._run_len and not overflow:
                core._run_pos = pos
                if not core._start_next_run():
                    break
                pos = 0
                span_end = 0
                span_method = None
            run_times = core._run_times
            run_seqs = core._run_seqs
            run_methods = core._run_methods
            run_args = core._run_args
            length = core._run_len
            while processed < max_events:
                from_overflow = False
                if pos < length:
                    time = run_times[pos]
                    if overflow:
                        head = overflow[0]
                        head_time = head[0]
                        if head_time < time or (
                            head_time == time and head[1] < run_seqs[pos]
                        ):
                            from_overflow = True
                            time = head_time
                elif overflow:
                    time = overflow[0][0]
                    from_overflow = True
                else:
                    break
                if until is not None and time > until:
                    return processed
                if from_overflow:
                    method = None
                    _, _, method, arg = heappop(overflow)
                else:
                    method = run_methods[pos]
                    if (
                        spans
                        and pos + 1 < length
                        and run_methods[pos + 1] is method
                    ):
                        handler = spans.get(method)
                        if handler is not None:
                            if method is span_method and pos < span_end:
                                end = span_end
                            else:
                                end = pos + 2
                                while end < length and run_methods[end] is method:
                                    end += 1
                                span_method = method
                                span_end = end
                            budget = pos + (max_events - processed)
                            if end > budget:
                                end = budget
                            cell[0] = 0
                            consumed = 0
                            try:
                                if timer is None:
                                    consumed = handler(
                                        run_times, run_seqs, run_args,
                                        pos, end, until, cell,
                                    )
                                else:
                                    t0 = timer()
                                    consumed = handler(
                                        run_times, run_seqs, run_args,
                                        pos, end, until, cell,
                                    )
                                    sim.callback_seconds += timer() - t0
                            finally:
                                if consumed == 0:
                                    consumed = cell[0]
                                processed += consumed
                                pos += consumed
                                now = sim.now
                            continue
                    arg = run_args[pos]
                    pos += 1
                if time > now:
                    now = time
                    sim.now = time
                if timer is None:
                    if arg is no_arg:
                        method()
                    else:
                        method(arg)
                else:
                    t0 = timer()
                    if arg is no_arg:
                        method()
                    else:
                        method(arg)
                    sim.callback_seconds += timer() - t0
                processed += 1
    finally:
        core._run_pos = pos
        sim.events_processed += processed
        core._consumed += processed
    return processed
