"""Process framework for the message-passing substrate.

A :class:`Process` is a state machine driven by two callbacks —
``on_start`` (at time 0) and ``on_message`` (per delivery) — plus whatever
timers it schedules on the simulator.  Protocol replicas
(:mod:`repro.protocols.base`) subclass it.

Failure behaviours follow Section 4.2's Byzantine model:

* :class:`CrashingProcess` mixin — halts at a configured time (crash
  fault); the network stops delivering to it and it stops emitting;
* :class:`SilentProcess` — a Byzantine process that withholds every
  message it should send (the adversary used by the update-agreement and
  LRC necessity experiments);
* arbitrary Byzantine behaviours are obtained by overriding the callbacks
  in protocol-specific subclasses (e.g. the equivocating proposer used by
  the consensus-protocol tests).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.core.history import HistoryRecorder
from repro.network import _hotpath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.simulator import Message, Network

__all__ = ["Process", "CrashingProcess", "SilentProcess"]


class _AliveGuard:
    """Queue-entry wrapper that skips the action once its owner is dead.

    The picklable replacement for the nested ``guarded`` closure
    :meth:`Process.schedule` used to allocate — checkpoint snapshots carry
    pending timer entries, and closures cannot cross a pickle boundary.
    A fresh instance per call preserves the historical behaviour of the
    event cores' method interning (each timer is a distinct callback).
    """

    __slots__ = ("process", "action")

    def __init__(self, process: "Process", action) -> None:
        self.process = process
        self.action = action

    def __call__(self) -> None:
        if self.process.alive:
            self.action()


class Process:
    """Base class for all simulated processes."""

    def __init__(self, pid: str) -> None:
        self.pid = pid
        self.network: Optional["Network"] = None
        self.alive = True
        self.byzantine = False

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.register`."""
        self.network = network

    @property
    def recorder(self) -> HistoryRecorder:
        assert self.network is not None, "process not attached to a network"
        return self.network.recorder

    @property
    def now(self) -> float:
        assert self.network is not None
        return self.network.simulator.now

    @property
    def is_correct(self) -> bool:
        """Correct = neither crashed nor Byzantine."""
        return self.alive and not self.byzantine

    # -- messaging helpers ------------------------------------------------------

    def send(self, receiver: str, kind: str, payload: Any) -> bool:
        """Send a point-to-point message (dropped silently if not alive)."""
        assert self.network is not None
        if not self.alive:
            return False
        return self.network.send(self.pid, receiver, kind, payload)

    def broadcast(self, kind: str, payload: Any, include_self: bool = True) -> int:
        """Best-effort broadcast through the network's dissemination topology.

        Reaches every process under the default full mesh; restricted
        topologies (gossip fan-out, committee, sharded — see
        :mod:`repro.network.topology`) narrow the receiver list.
        """
        assert self.network is not None
        if not self.alive:
            return 0
        return self.network.broadcast(self.pid, kind, payload, include_self=include_self)

    def multicast(self, receivers, kind: str, payload: Any) -> int:
        """Send one payload to an explicit receiver subset (batched).

        The building block sharded fan-outs ride on: one shared envelope,
        one batched channel draw, one bulk queue insert — see
        :meth:`repro.network.simulator.Network.multicast`.
        """
        assert self.network is not None
        if not self.alive:
            return 0
        return self.network.multicast(self.pid, receivers, kind, payload)

    def schedule(self, delay: float, action) -> None:
        """Schedule a local timer; the action is skipped if we are dead by then."""
        assert self.network is not None
        self.network.simulator.schedule(delay, _AliveGuard(self, action))

    # -- lifecycle callbacks ------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the network starts (override as needed)."""

    def on_message(self, message: "Message") -> None:
        """Called for every delivered message (override as needed)."""

    def on_message_batch(
        self, deliveries: List[Tuple[float, int, "Message"]]
    ) -> int:
        """Handle a run of consecutive deliveries addressed to this process.

        ``deliveries`` holds ``(time, seq, message)`` triples in
        ``(time, seq)`` order, handed over by the array core's batch
        dispatch when consecutive queue entries share one delivery
        callback.  The default implementation replays the exact scalar
        semantics — advance the virtual clock, call :meth:`on_message`,
        stop when this process dies or departs mid-batch or an overflow
        event preempts the run — so subclasses that only override
        :meth:`on_message` behave identically under both dispatch modes.
        Returns the number of messages consumed (always >= 1); the
        remainder is re-dispatched through the scalar guards.
        """
        return _hotpath.dispatch_batch(self, deliveries)

    def batch_dup_seen(self) -> Optional[Set[str]]:
        """Seen-block-id set for the batch plane's duplicate-flood skip.

        Return the transport's delivered-block-id set **only** when a
        duplicate ``BlockAnnouncement`` delivery is provably a no-op in
        the scalar path (``on_message`` would just hit the transport's
        seen-set and return).  The default is ``None`` — no skip; every
        delivery dispatches through :meth:`on_message` — which is always
        safe.  ``BlockchainReplica`` overrides this with the stock-hook
        guards.
        """
        return None

    def crash(self) -> None:
        """Crash this process immediately."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if not self.alive:
            flags.append("crashed")
        if self.byzantine:
            flags.append("byzantine")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{type(self).__name__}({self.pid}{suffix})"


class CrashingProcess(Process):
    """A process that crashes at a pre-programmed virtual time."""

    def __init__(self, pid: str, crash_at: float) -> None:
        super().__init__(pid)
        if crash_at < 0:
            raise ValueError("crash_at must be non-negative")
        self.crash_at = crash_at

    def on_start(self) -> None:
        self.schedule(self.crash_at, self.crash)


class SilentProcess(Process):
    """A Byzantine process that never sends anything.

    It still receives messages (and may update internal state), but all
    outbound traffic is suppressed — the cheapest adversary able to break
    properties that need every correct process's updates to circulate.
    """

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.byzantine = True

    def send(self, receiver: str, kind: str, payload: Any) -> bool:  # noqa: ARG002
        return False

    def broadcast(self, kind: str, payload: Any, include_self: bool = True) -> int:  # noqa: ARG002
        return 0

    def multicast(self, receivers, kind: str, payload: Any) -> int:  # noqa: ARG002
        return 0
