"""Discrete-event simulator and network fabric.

The paper's message-passing model has ``n`` processes, a fictional global
clock the processes cannot read, and channels of varying synchrony.  This
module provides:

* :class:`Simulator` — a classical discrete-event engine: a priority queue
  of timestamped callbacks, a virtual clock, and a run loop.  Everything is
  deterministic given the seeds of the channel models and protocols, which
  makes every benchmark re-run bit-identical.
* :class:`Message` — an immutable envelope (sender, receiver, kind,
  payload, send time).
* :class:`Network` — glue between the simulator, a channel model deciding
  per-message delays/drops, and the registered processes.  Delivery is the
  only way processes interact; there is no shared memory across processes
  in this substrate.

The simulator is intentionally single-threaded: determinism and
reproducibility of the paper's histories matter far more here than wall
clock parallelism.  What the event core *is* optimized for is allocation
pressure on the fan-out hot path: queue entries are plain
``(time, seq, method, arg)`` tuples rather than per-recipient lambda
closures, an n-way multicast shares a single :class:`Message` envelope and
draws all its channel delays in one batched call
(:func:`repro.network.channels.batched_delays`), and
:meth:`Simulator.schedule_many` bulk-inserts the resulting deliveries.
The pre-batching scalar fan-out is kept verbatim as
``Network._reference_broadcast`` (constructed with ``batched=False``), the
equivalence oracle the history tests and the ``simulation_*`` bench
scenarios compare against: both paths consume the channel generators
identically and assign queue sequence numbers in the same receiver order,
so the recorded histories are bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter

import numpy as np
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.core.errors import UnknownVocabularyError
from repro.core.history import HistoryRecorder
from repro.network import _hotpath
from repro.network.channels import batched_delays
from repro.network.event_core import NO_ARG, ArrayEventCore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.network.channels import ChannelModel
    from repro.network.process import Process
    from repro.network.topology import Topology

__all__ = ["Simulator", "Message", "Network", "MULTICAST", "timed_callbacks"]

#: Module toggle read at :class:`Simulator` construction: when True, the
#: run loops bracket every callback dispatch with ``perf_counter`` and
#: accumulate ``callback_seconds`` / ``drain_seconds`` — the inputs of
#: the bench's ``callback_share`` metric.  Off by default (two timer
#: calls per event are measurable noise on the hot path).
_TIMED_CALLBACKS = False


@contextmanager
def timed_callbacks():
    """Enable per-callback timing on simulators created in this scope.

    ``repro bench --profile`` wraps its measurement leg with this to
    record what share of the drain is spent inside callbacks (the
    ``callback_share`` trajectory number); tests and normal runs never
    pay the timer overhead.
    """
    global _TIMED_CALLBACKS
    previous = _TIMED_CALLBACKS
    _TIMED_CALLBACKS = True
    try:
        yield
    finally:
        _TIMED_CALLBACKS = previous

#: Receiver marker carried by a shared multicast envelope.  The actual
#: recipient of each delivery is the queue entry's argument, not the
#: envelope; processes address replies through ``message.sender``.
MULTICAST = "*"

#: Queue-entry marker for a no-argument callback (the ``schedule``/
#: ``schedule_at`` API).  A private sentinel rather than ``None`` so that
#: ``call_at(t, fn, None)`` / ``schedule_many`` entries carrying a
#: legitimate ``None`` argument still invoke ``fn(None)``.  Owned by the
#: array core module (both cores dispatch on the same identity check).
_NO_ARG = NO_ARG


@dataclass(frozen=True, slots=True)
class Message:
    """A network message envelope.

    Multicast deliveries share one envelope across all recipients (the
    ``receiver`` field is then :data:`MULTICAST`); point-to-point sends
    carry their receiver as before.
    """

    sender: str
    receiver: str
    kind: str
    payload: Any
    sent_at: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.sender}->{self.receiver} @{self.sent_at:.2f})"


class Simulator:
    """Discrete-event engine with a virtual clock and two storage cores.

    ``core="array"`` (the default) keeps pending events in the
    calendar-queue of numpy buckets provided by
    :class:`~repro.network.event_core.ArrayEventCore` — vectorized bulk
    inserts, one sort per time-slot bucket, interned method dispatch.
    ``core="heap"`` keeps the classical ``heapq`` of
    ``(time, seq, method, arg)`` tuples verbatim; it is retained as the
    equivalence oracle, and the two cores produce identical event
    orderings (``seq`` is a global insertion counter under both, so ties
    on ``time`` resolve in insertion order and comparisons never reach
    the uncomparable callables).

    ``arg is _NO_ARG`` marks a no-argument callback (the public
    :meth:`schedule` API); otherwise the run loop calls ``method(arg)``.
    """

    CORES = ("array", "heap")

    def __init__(self, core: str = "array", slot_width: float = 0.25) -> None:
        if core not in self.CORES:
            raise UnknownVocabularyError("simulator core", core, self.CORES)
        self.core = core
        self._array_core: Optional[ArrayEventCore] = (
            ArrayEventCore(slot_width=slot_width) if core == "array" else None
        )
        self._queue: List[Tuple[float, int, Callable[..., None], Any]] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        # callback_share instrumentation (see :func:`timed_callbacks`).
        self.callback_timer: Optional[Callable[[], float]] = (
            perf_counter if _TIMED_CALLBACKS else None
        )
        self.callback_seconds: float = 0.0
        self.drain_seconds: float = 0.0

    def register_batch_handler(
        self, method: Callable[[Any], None], handler: Callable[..., int]
    ) -> None:
        """Route same-method event spans of ``method`` to ``handler``.

        Forwarded to the array core's span-handler table (see
        :meth:`ArrayEventCore.register_span_handler
        <repro.network.event_core.ArrayEventCore.register_span_handler>`);
        a no-op under the heap core, whose scalar loop is the oracle the
        batch-dispatch plane is equivalence-tested against.
        """
        core = self._array_core
        if core is not None:
            core.register_span_handler(method, handler)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        core = self._array_core
        if core is not None:
            core.push(self.now + delay, action, _NO_ARG)
            return
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), action, _NO_ARG)
        )

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        core = self._array_core
        if core is not None:
            core.push(time, action, _NO_ARG)
            return
        heapq.heappush(self._queue, (time, next(self._sequence), action, _NO_ARG))

    def call_at(self, time: float, method: Callable[[Any], None], arg: Any) -> None:
        """Schedule ``method(arg)`` at an absolute virtual time.

        The single-argument form the message plane uses: no closure is
        allocated, the bound method and its argument ride the queue entry.
        """
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        core = self._array_core
        if core is not None:
            core.push(time, method, arg)
            return
        heapq.heappush(self._queue, (time, next(self._sequence), method, arg))

    def schedule_many(
        self, entries: Iterable[Tuple[float, Callable[[Any], None], Any]]
    ) -> int:
        """Bulk insert ``(time, method, arg)`` entries; returns the count.

        ``entries`` may be any iterable — including a one-shot generator —
        and is materialized exactly once before insertion, so lazily built
        fan-outs are safe.  Sequence numbers are assigned in iteration
        order, so a batched fan-out tie-breaks exactly like the equivalent
        sequence of :meth:`call_at` calls (a property the seq-parity
        regression test pins down).

        An entry timestamped before ``now`` raises :class:`ValueError`
        under both cores; the array core validates the whole batch before
        inserting anything, while the heap core raises at the first
        offending entry (an error-path-only difference).
        """
        if not isinstance(entries, list):
            entries = list(entries)
        core = self._array_core
        if core is not None:
            return core.extend(self.now, entries)
        queue = self._queue
        push = heapq.heappush
        sequence = self._sequence
        now = self.now
        count = 0
        for time, method, arg in entries:
            if time < now:
                raise ValueError("cannot schedule into the past")
            push(queue, (time, next(sequence), method, arg))
            count += 1
        return count

    def schedule_fanout(
        self,
        delays: Sequence[Optional[float]],
        method: Callable[[Any], None],
        args: Sequence[Any],
    ) -> int:
        """Bulk insert one shared ``method`` from a channel delay vector.

        ``delays[i] is None`` marks a dropped recipient: its entry is
        skipped and consumes no sequence number, exactly as if the caller
        had filtered it out of a :meth:`schedule_many` batch.  Everything
        else is scheduled at ``now + delays[i]`` with argument
        ``args[i]``, sequence numbers in vector order.  Under the array
        core the shared method is interned once and each touched bucket
        receives one vectorized fill — the multicast hot path.
        """
        now = self.now
        if None in delays:
            kept = [
                (delay, arg) for delay, arg in zip(delays, args) if delay is not None
            ]
            if not kept:
                return 0
            delays = [delay for delay, _ in kept]
            args = [arg for _, arg in kept]
        core = self._array_core
        if core is not None:
            if len(delays) < 16:
                # Small fan-outs (typical multicast degree): the scalar
                # staging path skips the asarray/argsort constants.  A
                # Python float add is the same IEEE-754 operation as the
                # vectorized broadcast, so timestamps are bit-identical.
                times = [float(now + delay) for delay in delays]
                return core.schedule_small(
                    now, times, method, list(args), validate=False
                )
            times = np.asarray(delays, dtype=np.float64) + now
            # Channel delays are non-negative by contract, so the block
            # cannot land before ``now`` — skip the validation pass.
            return core.schedule_block(now, times, method, list(args), validate=False)
        queue = self._queue
        push = heapq.heappush
        sequence = self._sequence
        for delay, arg in zip(delays, args):
            push(queue, (now + delay, next(sequence), method, arg))
        return len(delays)

    def schedule_block(
        self,
        times: Sequence[float],
        method: Callable[[Any], None],
        args: Sequence[Any],
    ) -> int:
        """Bulk insert one shared ``method`` at absolute ``times``.

        The workload-plane primitive: ``times`` may be a numpy float64
        array (used as-is, no per-entry conversion) and ``args`` a
        same-length sequence.  Sequence numbers follow array order, as
        for :meth:`schedule_many`; a timestamp before ``now`` raises
        :class:`ValueError`.
        """
        core = self._array_core
        if core is not None:
            arr = np.ascontiguousarray(times, dtype=np.float64)
            return core.schedule_block(self.now, arr, method, list(args))
        queue = self._queue
        push = heapq.heappush
        sequence = self._sequence
        now = self.now
        count = 0
        for time, arg in zip(times, args):
            if time < now:
                raise ValueError("cannot schedule into the past")
            push(queue, (time, next(sequence), method, arg))
            count += 1
        return count

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        core = self._array_core
        if core is not None:
            return core.pending
        return len(self._queue)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_sink: Optional[Callable[["Simulator"], None]] = None,
    ) -> int:
        """Process queued events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events scheduled
            later stay in the queue; an event at exactly ``until`` is
            still processed).  ``None`` drains the queue.
        max_events:
            Safety bound against runaway protocols.
        checkpoint_every:
            When set, drain in chunks of at most this many events and
            invoke ``checkpoint_sink(self)`` after every nonzero chunk.
            Chunking does not perturb event order — it only pauses the
            drain loop at snapshot boundaries.
        checkpoint_sink:
            Callable receiving this simulator at each chunk boundary
            (typically :meth:`CheckpointWriter.write <
            repro.engine.checkpoint.CheckpointWriter.write>` via a
            bound snapshot helper).

        Returns the number of events processed by this call.
        """
        if checkpoint_every is None:
            processed = self._drain_once(until, max_events)
        else:
            if checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be positive")
            processed = 0
            while processed < max_events:
                chunk = min(checkpoint_every, max_events - processed)
                step = self._drain_once(until, chunk)
                processed += step
                if step and checkpoint_sink is not None:
                    checkpoint_sink(self)
                if step < chunk:
                    break
        if processed >= max_events and self.pending:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"({self.pending} still pending at t={self.now:.2f})"
            )
        if until is not None and self.now < until:
            # Whether the queue drained early or only later events remain,
            # the clock still advances to the requested horizon.
            self.now = until
        return processed

    def _drain_once(self, until: Optional[float], max_events: int) -> int:
        """Drain up to ``max_events`` events without the quiesce/clock tail."""
        core = self._array_core
        timer = getattr(self, "callback_timer", None)
        if timer is None:
            if core is not None:
                return core.drain(self, until, max_events)
            return self._run_heap(until, max_events)
        t0 = timer()
        try:
            if core is not None:
                return core.drain(self, until, max_events)
            return self._run_heap(until, max_events)
        finally:
            self.drain_seconds += timer() - t0

    def _run_heap(self, until: Optional[float], max_events: int) -> int:
        """The pre-array run loop, verbatim: pop tuples off one heapq.

        (Plus the optional ``timed_callbacks`` brackets, so the heap
        oracle leg reports the same ``callback_share`` metric.)
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        timer = getattr(self, "callback_timer", None)
        try:
            while queue and processed < max_events:
                if until is not None and queue[0][0] > until:
                    break
                time, _, method, arg = pop(queue)
                if time > self.now:
                    self.now = time
                if timer is None:
                    if arg is _NO_ARG:
                        method()
                    else:
                        method(arg)
                else:
                    t0 = timer()
                    if arg is _NO_ARG:
                        method()
                    else:
                        method(arg)
                    self.callback_seconds += timer() - t0
                processed += 1
        finally:
            self.events_processed += processed
        return processed


class Network:
    """Processes + channel model + simulator.

    The network owns the shared :class:`~repro.core.history.HistoryRecorder`
    so that every replica's operation events and every ``send``/``receive``/
    ``update`` replication event land in a single concurrent history, ready
    for the consistency and update-agreement checkers.

    ``batched=False`` routes every fan-out through the pre-batching scalar
    path (one ``delay_for`` call and one closure per recipient) — the
    reference oracle the equivalence tests and the ``simulation_*`` bench
    scenarios compare the batched plane against.

    ``topology`` decides who hears a ``broadcast`` (see
    :mod:`repro.network.topology`): the default :class:`FullMesh` keeps
    the historical everyone-hears-everyone semantics byte-identically,
    while gossip / committee / sharded topologies restrict each sender's
    fan-out to its neighbor set.  Static topologies have their per-sender
    receiver lists cached alongside the full-mesh ``_others`` exclusion
    cache; both caches are invalidated when membership changes.
    """

    def __init__(
        self,
        simulator: Simulator,
        channel: "ChannelModel",
        recorder: Optional[HistoryRecorder] = None,
        batched: bool = True,
        topology: Optional["Topology"] = None,
    ) -> None:
        from repro.network.topology import FullMesh

        self.simulator = simulator
        self.channel = channel
        self.recorder = recorder if recorder is not None else HistoryRecorder()
        self.batched = batched
        self.topology = topology if topology is not None else FullMesh()
        # The full-mesh broadcast path is the hot default and must stay
        # byte-identical to the pre-topology code, so it keeps its own
        # branch (and the `_others` cache) instead of the generic one.
        self._fullmesh = type(self.topology) is FullMesh
        self._processes: Dict[str, "Process"] = {}
        self._pids: Tuple[str, ...] = ()
        # sender -> every other pid, in registration order.  Built lazily
        # and invalidated on register: broadcasts with include_self=False
        # (every LRC relay) would otherwise rebuild this list — and
        # re-validate each receiver against the process table — per call.
        self._others: Dict[str, Tuple[str, ...]] = {}
        # (sender, include_self) -> receiver tuple for static non-fullmesh
        # topologies; validated against the process table once per entry
        # and invalidated on register, exactly like ``_others``.
        self._topology_receivers: Dict[Tuple[str, bool], Tuple[str, ...]] = {}
        # Pids that left through ``deregister`` (dynamic membership /
        # churn faults).  Traffic addressed to them is *quarantined* —
        # counted, silently absorbed — rather than raising the unknown-
        # receiver KeyError reserved for genuine addressing bugs.
        self._departed: set = set()
        # Receiver classification for the span batch-dispatch path
        # (`_hotpath.deliver_span`): pids proven to take the straight
        # scalar dispatch / the custom-``on_message_batch`` path.  Both
        # are populated lazily per span and only *dropped* on membership
        # change — a stale entry can at worst miss a duplicate-flood
        # skip or dispatch scalar to a batch-capable receiver, and
        # ``on_message_batch`` is required to be scalar-equivalent.
        self._span_scalar: set = set()
        self._span_batch_only: set = set()
        # Active message filters (fault models: partitions, eclipses).
        # Empty on the hot path; a fan-out blocked by a filter counts as
        # sent + dropped and consumes no channel randomness.
        self._message_filters: List[Callable[[str, str], bool]] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_quarantined = 0
        if batched:
            # Compiled callback plane: consecutive queue entries sharing
            # one delivery callback are handed to the span handlers in
            # one call (scalar-exact; see `_hotpath.deliver_span`).  The
            # scalar plane (`batched=False`) keeps per-event dispatch and
            # is the equivalence oracle.
            simulator.register_batch_handler(self._deliver, self._deliver_span)
            simulator.register_batch_handler(
                self._deliver_multicast, self._deliver_multicast_span
            )

    # -- membership -------------------------------------------------------------

    def register(self, process: "Process") -> None:
        if process.pid in self._processes:
            raise ValueError(f"process {process.pid!r} already registered")
        self._processes[process.pid] = process
        self._pids = self._pids + (process.pid,)
        self._others.clear()
        self._topology_receivers.clear()
        self._departed.discard(process.pid)
        self._span_scalar.discard(process.pid)
        self._span_batch_only.discard(process.pid)
        if process.network is not self:
            # A rejoining process (churn) keeps its existing transport
            # wiring and merit registration; attaching again would reset
            # both mid-run.
            process.attach(self)

    def deregister(self, pid: str) -> "Process":
        """Remove ``pid`` from the membership (dynamic churn).

        Invalidates the ``_others`` exclusion cache and the topology
        receiver caches exactly like :meth:`register` does, and marks the
        pid departed so in-flight deliveries addressed to it — and late
        point-to-point sends from peers that have not noticed yet — are
        quarantined gracefully instead of raising.  Returns the removed
        process (callers decide whether it also crashes).
        """
        try:
            process = self._processes.pop(pid)
        except KeyError:
            raise KeyError(f"unknown process {pid!r}") from None
        self._pids = tuple(p for p in self._pids if p != pid)
        self._others.clear()
        self._topology_receivers.clear()
        self._departed.add(pid)
        self._span_scalar.discard(pid)
        self._span_batch_only.discard(pid)
        return process

    def process(self, pid: str) -> "Process":
        return self._processes[pid]

    @property
    def process_ids(self) -> Tuple[str, ...]:
        return self._pids

    def correct_process_ids(self) -> Tuple[str, ...]:
        """Processes that are neither crashed nor Byzantine."""
        return tuple(p.pid for p in self._processes.values() if p.is_correct)

    # -- message plane ---------------------------------------------------------------

    def add_message_filter(self, allows: Callable[[str, str], bool]) -> None:
        """Install a ``(sender, receiver) -> bool`` edge filter.

        Fault models (partitions, eclipses) install these through
        scheduled simulator events; a fan-out blocked by any active
        filter counts as sent + dropped and consumes no channel
        randomness — exactly like a filtered receiver list.
        """
        self._message_filters.append(allows)

    def remove_message_filter(self, allows: Callable[[str, str], bool]) -> None:
        """Remove a previously installed edge filter (partition heal)."""
        self._message_filters.remove(allows)

    def _filter_allows(self, sender: str, receiver: str) -> bool:
        return all(allows(sender, receiver) for allows in self._message_filters)

    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> bool:
        """Send one message; returns ``False`` if the channel dropped it."""
        if sender not in self._processes:
            # A departed (deregistered) process can no longer reach the
            # fabric; its late sends are silently absorbed.
            return False
        if receiver not in self._processes:
            if receiver in self._departed:
                self.messages_sent += 1
                self.messages_quarantined += 1
                return False
            raise KeyError(f"unknown receiver {receiver!r}")
        if self._message_filters and not self._filter_allows(sender, receiver):
            self.messages_sent += 1
            self.messages_dropped += 1
            return False
        now = self.simulator.now
        message = Message(sender, receiver, kind, payload, now)
        self.messages_sent += 1
        delay = self.channel.delay_for(sender, receiver, now)
        if delay is None:
            self.messages_dropped += 1
            return False
        self.simulator.call_at(now + delay, self._deliver, message)
        return True

    def multicast(
        self, sender: str, receivers: Sequence[str], kind: str, payload: Any
    ) -> int:
        """Send one payload to many receivers; returns messages not dropped.

        Builds a single shared envelope, draws every fan-out delay in one
        batched channel call, and bulk-inserts the deliveries — one tuple
        per recipient instead of one :class:`Message` plus one closure.
        Stream- and order-identical to the per-recipient scalar loop (see
        the module docstring).
        """
        processes = self._processes
        if sender not in processes:
            return 0
        if any(pid not in processes for pid in receivers):
            kept = []
            for pid in receivers:
                if pid in processes:
                    kept.append(pid)
                elif pid in self._departed:
                    self.messages_sent += 1
                    self.messages_quarantined += 1
                else:
                    raise KeyError(f"unknown receiver {pid!r}")
            receivers = kept
        if not self.batched:
            delivered = 0
            for pid in receivers:
                if self._reference_send(sender, pid, kind, payload):
                    delivered += 1
            return delivered
        return self._multicast_trusted(sender, receivers, kind, payload)

    def _multicast_trusted(
        self, sender: str, receivers: Sequence[str], kind: str, payload: Any
    ) -> int:
        """The multicast fast path: receivers already known to be registered."""
        attempted = len(receivers)
        if self._message_filters:
            # Filtered pairs are dropped before the channel draw, so a
            # partition consumes no randomness for severed edges — the
            # batched path stays stream-identical to the scalar loop.
            receivers = [
                pid for pid in receivers if self._filter_allows(sender, pid)
            ]
        simulator = self.simulator
        now = simulator.now
        envelope = Message(sender, MULTICAST, kind, payload, now)
        delays = batched_delays(self.channel, sender, receivers, now)
        scheduled = simulator.schedule_fanout(
            delays,
            self._deliver_multicast,
            [(pid, envelope) for pid in receivers],
        )
        self.messages_sent += attempted
        self.messages_dropped += attempted - scheduled
        return scheduled

    def broadcast(self, sender: str, kind: str, payload: Any, include_self: bool = True) -> int:
        """Fan out to the sender's topology neighbors; returns messages not dropped.

        Under the default :class:`~repro.network.topology.FullMesh` this
        reaches every registered process, exactly as before topologies
        existed; other topologies restrict the receiver list (gossip
        samples, committee members, shard + gateways, ...).
        """
        if sender not in self._processes:
            # Departed (deregistered) senders cannot reach the fabric.
            return 0
        if not self.batched and self._fullmesh:
            return self._reference_broadcast(sender, kind, payload, include_self)
        receivers = self._broadcast_receivers(sender, include_self)
        if not self.batched:
            # Topology-restricted scalar path: the same reference sends,
            # over the topology's receiver list.
            delivered = 0
            for pid in receivers:
                if self._reference_send(sender, pid, kind, payload):
                    delivered += 1
            return delivered
        return self._multicast_trusted(sender, receivers, kind, payload)

    def _broadcast_receivers(self, sender: str, include_self: bool) -> Sequence[str]:
        """The receiver list of one broadcast, with per-sender caching.

        Full mesh keeps the historical fast path (the registered tuple /
        the ``_others`` exclusion cache).  Static topologies are asked
        once per ``(sender, include_self)`` and validated against the
        process table; dynamic topologies are consulted per call (they
        draw from their own seeded generator and sample only registered
        pids by construction).
        """
        if self._fullmesh:
            if include_self:
                return self._pids
            receivers = self._others.get(sender, None)
            if receivers is None:
                receivers = tuple(pid for pid in self._pids if pid != sender)
                self._others[sender] = receivers
            return receivers
        topology = self.topology
        if not topology.static:
            return topology.receivers(sender, self._pids, include_self)
        key = (sender, include_self)
        receivers = self._topology_receivers.get(key, None)
        if receivers is None:
            receivers = tuple(topology.receivers(sender, self._pids, include_self))
            processes = self._processes
            for pid in receivers:
                if pid not in processes:
                    raise KeyError(
                        f"topology {topology!r} names unknown receiver {pid!r}"
                    )
            self._topology_receivers[key] = receivers
        return receivers

    def _reference_broadcast(
        self, sender: str, kind: str, payload: Any, include_self: bool = True
    ) -> int:
        """Pre-batching scalar fan-out (PR ≤ 3), kept as the equivalence
        and perf oracle: one envelope, one scalar channel draw and one
        closure per recipient."""
        delivered = 0
        for pid in self._processes:
            if pid == sender and not include_self:
                continue
            if self._reference_send(sender, pid, kind, payload):
                delivered += 1
        return delivered

    def _reference_send(self, sender: str, receiver: str, kind: str, payload: Any) -> bool:
        """The pre-batching ``send``: scalar draw + per-message closure."""
        if receiver not in self._processes:
            if receiver in self._departed:
                self.messages_sent += 1
                self.messages_quarantined += 1
                return False
            raise KeyError(f"unknown receiver {receiver!r}")
        if self._message_filters and not self._filter_allows(sender, receiver):
            self.messages_sent += 1
            self.messages_dropped += 1
            return False
        now = self.simulator.now
        message = Message(sender, receiver, kind, payload, now)
        self.messages_sent += 1
        delay = self.channel.delay_for(sender, receiver, now)
        if delay is None:
            self.messages_dropped += 1
            return False
        # One queue entry (bound method + argument) instead of a closure:
        # same timestamp, same single sequence number, same dispatch — and,
        # unlike a lambda, picklable by checkpoint snapshots.
        self.simulator.call_at(now + delay, self._deliver, message)
        return True

    def _deliver(self, message: Message) -> None:
        # Departed-pid / liveness guards live in one helper shared with
        # the multicast twin and the compiled span path: a quarantined
        # (deregistered) receiver absorbs the message, a crashed process
        # receives nothing, a live one gets ``on_message``.
        _hotpath.deliver_one(self, message.receiver, message)

    def _deliver_multicast(self, entry: Tuple[str, Message]) -> None:
        """Deliver a shared multicast envelope to one recipient."""
        _hotpath.deliver_one(self, entry[0], entry[1])

    def _deliver_span(self, times, seqs, args, pos, end, until, cell) -> int:
        """Batch-dispatch a span of consecutive ``_deliver`` events."""
        return _hotpath.deliver_span(
            self, times, seqs, args, pos, end, until, cell, False
        )

    def _deliver_multicast_span(self, times, seqs, args, pos, end, until, cell) -> int:
        """Batch-dispatch a span of consecutive ``_deliver_multicast`` events."""
        return _hotpath.deliver_span(
            self, times, seqs, args, pos, end, until, cell, True
        )

    def batch_interrupted(self, process: "Process", time: float, seq: int) -> bool:
        """Should an in-flight delivery batch stop before ``(time, seq)``?

        True when the receiving process died or departed mid-batch (the
        scalar guards must re-run), or when an event pushed into the
        overflow heap by an earlier callback now sorts before the next
        delivery.  Called by ``Process.on_message_batch`` between
        messages; the remainder of the batch is re-dispatched through
        the scalar-exact span loop.
        """
        if not process.alive or self._processes.get(process.pid) is not process:
            return True
        core = self.simulator._array_core
        if core is not None and core._overflow:
            head = core._overflow[0]
            head_time = head[0]
            if head_time < time or (head_time == time and head[1] < seq):
                return True
        return False

    def _overflow_pending(self) -> bool:
        """Any events in the array core's overflow heap right now?

        The flood dedup fast path may skip per-message preemption checks
        only while this is False (no event can sort into the batch).
        """
        core = self.simulator._array_core
        return core is not None and bool(core._overflow)

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """Invoke ``on_start`` on every process (at time 0)."""
        for process in self._processes.values():
            process.on_start()

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_sink: Optional[Callable[[Simulator], None]] = None,
    ) -> int:
        """Convenience: start (if not already) is caller's business; run the clock."""
        return self.simulator.run(
            until=until,
            max_events=max_events,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
        )

    def history(self):
        """The concurrent history recorded so far."""
        return self.recorder.history()
