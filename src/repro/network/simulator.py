"""Discrete-event simulator and network fabric.

The paper's message-passing model has ``n`` processes, a fictional global
clock the processes cannot read, and channels of varying synchrony.  This
module provides:

* :class:`Simulator` — a classical discrete-event engine: a priority queue
  of timestamped callbacks, a virtual clock, and a run loop.  Everything is
  deterministic given the seeds of the channel models and protocols, which
  makes every benchmark re-run bit-identical.
* :class:`Message` — an immutable envelope (sender, receiver, kind,
  payload, send time).
* :class:`Network` — glue between the simulator, a channel model deciding
  per-message delays/drops, and the registered processes.  Delivery is the
  only way processes interact; there is no shared memory across processes
  in this substrate.

The simulator is intentionally single-threaded: determinism and
reproducibility of the paper's histories matter far more here than wall
clock parallelism, and the event loop is already dominated by protocol
logic rather than queue overhead (heap operations are O(log n)).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.core.history import HistoryRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.network.channels import ChannelModel
    from repro.network.process import Process

__all__ = ["Simulator", "Message", "Network"]


@dataclass(frozen=True)
class Message:
    """A network message envelope."""

    sender: str
    receiver: str
    kind: str
    payload: Any
    sent_at: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.sender}->{self.receiver} @{self.sent_at:.2f})"


class Simulator:
    """Priority-queue discrete-event engine with a virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), action))

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (time, next(self._sequence), action))

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Process queued events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events scheduled
            later stay in the queue).  ``None`` drains the queue.
        max_events:
            Safety bound against runaway protocols.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue and processed < max_events:
            time, _, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = max(self.now, time)
            action()
            processed += 1
            self.events_processed += 1
        if processed >= max_events and self._queue:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"({len(self._queue)} still pending at t={self.now:.2f})"
            )
        if until is not None and self.now < until:
            # Whether the queue drained early or only later events remain,
            # the clock still advances to the requested horizon.
            self.now = until
        return processed


class Network:
    """Processes + channel model + simulator.

    The network owns the shared :class:`~repro.core.history.HistoryRecorder`
    so that every replica's operation events and every ``send``/``receive``/
    ``update`` replication event land in a single concurrent history, ready
    for the consistency and update-agreement checkers.
    """

    def __init__(
        self,
        simulator: Simulator,
        channel: "ChannelModel",
        recorder: Optional[HistoryRecorder] = None,
    ) -> None:
        self.simulator = simulator
        self.channel = channel
        self.recorder = recorder if recorder is not None else HistoryRecorder()
        self._processes: Dict[str, "Process"] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- membership -------------------------------------------------------------

    def register(self, process: "Process") -> None:
        if process.pid in self._processes:
            raise ValueError(f"process {process.pid!r} already registered")
        self._processes[process.pid] = process
        process.attach(self)

    def process(self, pid: str) -> "Process":
        return self._processes[pid]

    @property
    def process_ids(self) -> Tuple[str, ...]:
        return tuple(self._processes)

    def correct_process_ids(self) -> Tuple[str, ...]:
        """Processes that are neither crashed nor Byzantine."""
        return tuple(p.pid for p in self._processes.values() if p.is_correct)

    # -- message plane ---------------------------------------------------------------

    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> bool:
        """Send one message; returns ``False`` if the channel dropped it."""
        if receiver not in self._processes:
            raise KeyError(f"unknown receiver {receiver!r}")
        message = Message(sender, receiver, kind, payload, self.simulator.now)
        self.messages_sent += 1
        delay = self.channel.delay_for(sender, receiver, self.simulator.now)
        if delay is None:
            self.messages_dropped += 1
            return False
        self.simulator.schedule(delay, lambda m=message: self._deliver(m))
        return True

    def broadcast(self, sender: str, kind: str, payload: Any, include_self: bool = True) -> int:
        """Send to every registered process; returns messages not dropped."""
        delivered = 0
        for pid in self._processes:
            if pid == sender and not include_self:
                continue
            if self.send(sender, pid, kind, payload):
                delivered += 1
        return delivered

    def _deliver(self, message: Message) -> None:
        process = self._processes.get(message.receiver)
        if process is None:  # pragma: no cover - receivers cannot unregister
            return
        if not process.alive:
            # Crashed processes receive nothing.
            return
        self.messages_delivered += 1
        process.on_message(message)

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """Invoke ``on_start`` on every process (at time 0)."""
        for process in self._processes.values():
            process.on_start()

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Convenience: start (if not already) is caller's business; run the clock."""
        return self.simulator.run(until=until, max_events=max_events)

    def history(self):
        """The concurrent history recorded so far."""
        return self.recorder.history()
