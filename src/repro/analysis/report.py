"""Plain-text table rendering for benches, examples and EXPERIMENTS.md.

The original paper's evaluation artefacts are figures of admissible
histories, a hierarchy diagram and one classification table; this
reproduction regenerates them as text.  The helpers here keep all of that
formatting in one place so the benches print uniform, diff-able output.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

__all__ = ["render_table", "render_classification_table"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_classification_table(results: Mapping[str, object]) -> str:
    """Render Table 1 (system → refinement) from classification results.

    ``results`` maps system name to
    :class:`repro.protocols.classification.ClassificationResult`.
    """
    rows = []
    for name in sorted(results):
        result = results[name]
        refinement = getattr(result, "refinement", None)
        expected = getattr(result, "expected", None)
        matches = getattr(result, "matches_paper", None)
        rows.append(
            [
                name,
                refinement.label() if refinement is not None else "(none)",
                expected.label() if expected is not None else "-",
                {True: "yes", False: "NO", None: "-"}[matches],
            ]
        )
    return render_table(
        ["system", "measured refinement", "paper (Table 1)", "match"],
        rows,
        title="Table 1 — mapping of existing systems",
    )
