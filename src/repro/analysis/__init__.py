"""Analysis utilities: fork statistics, convergence metrics, report rendering.

These are the measurement tools the benchmark harness uses to turn raw
runs (histories + replica trees) into the numbers and tables reported in
EXPERIMENTS.md:

* :mod:`repro.analysis.forks` — per-run fork statistics (fork points,
  maximal fork degree, wasted blocks), the quantities the k-fork-coherence
  and fork-rate ablations sweep;
* :mod:`repro.analysis.convergence` — common-prefix / divergence metrics
  over replica views and over read histories (the quantitative face of
  the Eventual Prefix property);
* :mod:`repro.analysis.report` — plain-text table rendering used by the
  benches and examples so every "figure" and "table" of the paper has a
  textual counterpart in this reproduction.
"""

from repro.analysis.forks import ForkStatistics, fork_statistics, wasted_block_ratio
from repro.analysis.convergence import (
    ConvergenceSummary,
    common_prefix_depth,
    divergence_by_pair,
    convergence_summary,
)
from repro.analysis.fairness import FairnessReport, creator_shares, fairness_report
from repro.analysis.report import render_table, render_classification_table

__all__ = [
    "ForkStatistics",
    "fork_statistics",
    "wasted_block_ratio",
    "ConvergenceSummary",
    "common_prefix_depth",
    "divergence_by_pair",
    "convergence_summary",
    "FairnessReport",
    "creator_shares",
    "fairness_report",
    "render_table",
    "render_classification_table",
]
