"""Fork statistics over BlockTrees and protocol runs.

The paper's oracles differ precisely in how many forks they allow per
block, so the quantitative companion to the k-Fork-Coherence theorem is a
set of fork statistics: how many fork points a run produced, the maximal
fork degree, and how many blocks ended up off the selected chain ("wasted"
work).  The fork-rate ablation bench sweeps the oracle bound and the
network delay against these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.core.blocktree import BlockTree
from repro.core.selection import LongestChain, SelectionFunction

__all__ = ["ForkStatistics", "fork_statistics", "wasted_block_ratio", "merge_statistics"]


@dataclass(frozen=True)
class ForkStatistics:
    """Summary of the branching structure of one BlockTree."""

    total_blocks: int
    height: int
    leaves: int
    fork_points: int
    max_fork_degree: int
    blocks_on_selected_chain: int

    @property
    def wasted_blocks(self) -> int:
        """Blocks that are in the tree but not on the selected chain."""
        return self.total_blocks - self.blocks_on_selected_chain

    @property
    def wasted_ratio(self) -> float:
        """Fraction of non-genesis blocks not on the selected chain."""
        non_genesis = max(self.total_blocks - 1, 1)
        wasted_non_genesis = max(self.wasted_blocks - 0, 0)
        return wasted_non_genesis / non_genesis

    @property
    def fork_rate(self) -> float:
        """Fork points per non-genesis block (0 for a pure chain)."""
        non_genesis = max(self.total_blocks - 1, 1)
        return self.fork_points / non_genesis


_LONGEST = LongestChain()


def fork_statistics(
    tree: BlockTree, selection: Optional[SelectionFunction] = None
) -> ForkStatistics:
    """Compute :class:`ForkStatistics` for one tree.

    The selected-chain length is recovered from the tree's cached heights
    (``height_of(tip) + 1``) rather than by measuring a rematerialized
    chain, and the selection itself is index-backed and memoized, so this
    is cheap even on large fork-heavy trees.
    """
    chain = (selection if selection is not None else _LONGEST)(tree)
    return ForkStatistics(
        total_blocks=len(tree),
        height=tree.height,
        leaves=len(tree.leaves()),
        fork_points=len(tree.fork_points()),
        max_fork_degree=tree.max_fork_degree(),
        blocks_on_selected_chain=tree.height_of(chain.tip.block_id) + 1,
    )


def wasted_block_ratio(tree: BlockTree, selection: Optional[SelectionFunction] = None) -> float:
    """Shortcut for :attr:`ForkStatistics.wasted_ratio`."""
    return fork_statistics(tree, selection).wasted_ratio


def merge_statistics(per_replica: Mapping[str, ForkStatistics]) -> Dict[str, float]:
    """Aggregate per-replica statistics into run-level averages."""
    if not per_replica:
        return {
            "replicas": 0.0,
            "mean_blocks": 0.0,
            "mean_forks": 0.0,
            "max_fork_degree": 0.0,
            "mean_wasted_ratio": 0.0,
        }
    stats = list(per_replica.values())
    return {
        "replicas": float(len(stats)),
        "mean_blocks": sum(s.total_blocks for s in stats) / len(stats),
        "mean_forks": sum(s.fork_points for s in stats) / len(stats),
        "max_fork_degree": float(max(s.max_fork_degree for s in stats)),
        "mean_wasted_ratio": sum(s.wasted_ratio for s in stats) / len(stats),
    }
