"""Fairness / chain-quality analysis over the merit parameter.

The paper deliberately stops short of formalizing fairness ("we only offer
a generic merit parameter that can be used to define fairness", Related
Work) — this module provides the natural instantiation so the hook can be
exercised:

* the **representation share** of a process is the fraction of the blocks
  on the selected chain (or in the whole tree) that it created;
* a run is **α-fair** (chain-quality style) when every process's share is
  at least ``α`` times its merit;
* :func:`fairness_report` compares shares against merits and reports the
  worst-case ratio, which the fairness ablation bench sweeps against merit
  skew.

This is an *extension* relative to the paper (flagged as such in
DESIGN.md / EXPERIMENTS.md): the definitions follow the chain-quality
notion of Garay et al.'s Bitcoin backbone analysis, which the paper cites
for Bitcoin's eventual-consistency result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.block import Blockchain
from repro.core.blocktree import BlockTree
from repro.workload.merit import MeritDistribution

__all__ = ["FairnessReport", "creator_shares", "fairness_report"]


@dataclass(frozen=True)
class FairnessReport:
    """Merit-vs-representation comparison for one run."""

    shares: Dict[str, float]
    merits: Dict[str, float]
    ratios: Dict[str, float]
    worst_ratio: float
    blocks_counted: int

    def is_alpha_fair(self, alpha: float) -> bool:
        """``True`` iff every positive-merit process has share ≥ α · merit."""
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        return self.worst_ratio >= alpha

    def describe(self) -> str:
        lines = ["fairness (share / merit per process):"]
        for process in sorted(self.ratios):
            lines.append(
                f"  {process}: share={self.shares.get(process, 0.0):.3f} "
                f"merit={self.merits.get(process, 0.0):.3f} "
                f"ratio={self.ratios[process]:.2f}"
            )
        lines.append(f"  worst ratio: {self.worst_ratio:.2f} over {self.blocks_counted} blocks")
        return "\n".join(lines)


def creator_shares(chain_or_tree: Blockchain | BlockTree) -> Dict[str, float]:
    """Fraction of non-genesis blocks created by each process."""
    if isinstance(chain_or_tree, Blockchain):
        blocks = [b for b in chain_or_tree if not b.is_genesis]
    else:
        blocks = [b for b in chain_or_tree if not b.is_genesis]
    if not blocks:
        return {}
    counts: Dict[str, int] = {}
    for block in blocks:
        creator = block.creator or "?"
        counts[creator] = counts.get(creator, 0) + 1
    total = len(blocks)
    return {creator: count / total for creator, count in counts.items()}


def fairness_report(
    chain_or_tree: Blockchain | BlockTree,
    merit: MeritDistribution,
    processes: Optional[Tuple[str, ...]] = None,
) -> FairnessReport:
    """Compare each process's representation against its merit.

    ``processes`` restricts the report (default: every process with
    positive merit).  Zero-merit processes are excluded from the worst-case
    ratio — they are not entitled to any share.
    """
    shares = creator_shares(chain_or_tree)
    candidates = (
        tuple(processes)
        if processes is not None
        else tuple(p for p in merit.processes if merit.merit_of(p) > 0)
    )
    merits = {p: merit.merit_of(p) for p in candidates}
    ratios: Dict[str, float] = {}
    for process in candidates:
        entitled = merits[process]
        if entitled <= 0:
            continue
        ratios[process] = shares.get(process, 0.0) / entitled
    worst = min(ratios.values()) if ratios else 1.0
    blocks_counted = sum(
        1 for b in chain_or_tree if not getattr(b, "is_genesis", False)
    )
    return FairnessReport(
        shares=shares,
        merits=merits,
        ratios=ratios,
        worst_ratio=worst,
        blocks_counted=blocks_counted,
    )
