"""Convergence metrics: the quantitative face of the Eventual Prefix property.

The Eventual Prefix property is a yes/no criterion; these helpers measure
*how much* a set of replica views (or read results) agrees:

* :func:`common_prefix_depth` — the score of the prefix shared by *all*
  chains (the paper's ``mcps`` generalized to a set);
* :func:`divergence_by_pair` — per-pair divergence: how far behind the
  shared prefix each pair's views are;
* :func:`convergence_summary` — the aggregate used by the loss/synchrony
  ablation benches, including the fraction of replica pairs in perfect
  agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.block import Blockchain
from repro.core.score import LengthScore, ScoreFunction, mcps

__all__ = [
    "ConvergenceSummary",
    "common_prefix_depth",
    "divergence_by_pair",
    "convergence_summary",
]


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregate agreement metrics over a set of replica views."""

    replicas: int
    min_score: float
    max_score: float
    common_prefix_score: float
    mean_pairwise_mcps: float
    fully_agreeing_pairs: int
    total_pairs: int

    @property
    def agreement_ratio(self) -> float:
        """Fraction of replica pairs whose views are prefix-related."""
        if self.total_pairs == 0:
            return 1.0
        return self.fully_agreeing_pairs / self.total_pairs

    @property
    def max_divergence(self) -> float:
        """How far the most advanced view is beyond the common prefix."""
        return self.max_score - self.common_prefix_score


def common_prefix_depth(
    chains: Sequence[Blockchain], score: Optional[ScoreFunction] = None
) -> float:
    """Score of the prefix shared by *all* chains (genesis-only → s0).

    Works on the chains' cached identifier tuples: the shared length is
    narrowed chain by chain without building any intermediate prefix
    ``Blockchain`` (each of which would re-validate its whole path); only
    a non-length score function needs the final prefix materialized.
    """
    scorer = score if score is not None else LengthScore()
    if not chains:
        return 0.0
    first_ids = chains[0].ids
    shared = len(first_ids)
    for chain in chains[1:]:
        ids = chain.ids
        limit = min(shared, len(ids))
        k = 0
        while k < limit and first_ids[k] == ids[k]:
            k += 1
        shared = k
        if shared <= 1:  # genesis only — cannot shrink further
            break
    if isinstance(scorer, LengthScore):
        return float(shared - 1)
    return scorer(chains[0].prefix(shared - 1))


def divergence_by_pair(
    views: Mapping[str, Blockchain], score: Optional[ScoreFunction] = None
) -> Dict[Tuple[str, str], float]:
    """For each replica pair, the score of their maximal common prefix."""
    scorer = score if score is not None else LengthScore()
    return {
        (a, b): mcps(views[a], views[b], scorer)
        for a, b in combinations(sorted(views), 2)
    }


def convergence_summary(
    views: Mapping[str, Blockchain], score: Optional[ScoreFunction] = None
) -> ConvergenceSummary:
    """Aggregate agreement metrics over replica views."""
    scorer = score if score is not None else LengthScore()
    chains = [views[k] for k in sorted(views)]
    scores = [scorer(c) for c in chains]
    pairwise = divergence_by_pair(views, scorer)
    agreeing = sum(
        1
        for (a, b) in pairwise
        if views[a].is_prefix_of(views[b]) or views[b].is_prefix_of(views[a])
    )
    return ConvergenceSummary(
        replicas=len(chains),
        min_score=min(scores) if scores else 0.0,
        max_score=max(scores) if scores else 0.0,
        common_prefix_score=common_prefix_depth(chains, scorer),
        mean_pairwise_mcps=(
            sum(pairwise.values()) / len(pairwise) if pairwise else 0.0
        ),
        fully_agreeing_pairs=agreeing,
        total_pairs=len(pairwise),
    )
