"""repro — executable reproduction of *Blockchain Abstract Data Type*.

The package implements, as runnable Python, the full formal framework of
Anceaume, Del Pozzo, Ludinard, Potop-Butucaru and Tucci-Piergiovanni
(*Blockchain Abstract Data Type*, SPAA 2019 / arXiv:1802.09877):

``repro.core``
    Blocks, blockchains, the BlockTree, selection functions, score
    functions, validity predicates, the generic Abstract Data Type
    machinery, the BT-ADT sequential specification, concurrent histories
    and the BT Strong / BT Eventual consistency criteria.

``repro.oracle``
    The token oracles Θ_P (prodigal) and Θ_F (frugal, parameterized by k),
    merit tapes, the refinement R(BT-ADT, Θ) and the k-Fork-Coherence
    checker.

``repro.concurrent``
    A shared-memory substrate (atomic registers, compare&swap, atomic
    snapshot, a cooperative scheduler) and the wait-free reductions of
    Section 4.1 used to establish the oracles' consensus numbers.

``repro.network``
    A deterministic discrete-event message-passing simulator with
    asynchronous / synchronous / partially-synchronous and lossy channels,
    Byzantine process behaviours, and the Light Reliable Communication and
    Update Agreement abstractions of Section 4.2/4.3.

``repro.protocols``
    Models of the systems classified in Table 1 (Bitcoin, Ethereum,
    ByzCoin, Algorand, PeerCensus, Red Belly, Hyperledger Fabric) plus the
    consensus substrate several of them rely on, and a classifier that
    maps an execution onto the paper's refinement hierarchy.

``repro.workload`` and ``repro.analysis``
    Workload/scenario generators (including the exact histories of
    Figures 2, 3, 4 and 13) and analysis utilities (fork statistics,
    convergence metrics, report rendering).
"""

from repro.core.block import Block, Blockchain, GENESIS, genesis_block
from repro.core.blocktree import BlockTree
from repro.core.bt_adt import BTADT
from repro.core.history import History, Event, EventKind
from repro.core.consistency import (
    BTStrongConsistency,
    BTEventualConsistency,
    check_strong_consistency,
    check_eventual_consistency,
)
from repro.core.selection import (
    LongestChain,
    HeaviestChain,
    GHOSTSelection,
)
from repro.core.score import LengthScore, WeightScore
from repro.oracle.theta import FrugalOracle, ProdigalOracle
from repro.oracle.refinement import RefinedBTADT

__version__ = "1.0.0"

__all__ = [
    "Block",
    "Blockchain",
    "GENESIS",
    "genesis_block",
    "BlockTree",
    "BTADT",
    "History",
    "Event",
    "EventKind",
    "BTStrongConsistency",
    "BTEventualConsistency",
    "check_strong_consistency",
    "check_eventual_consistency",
    "LongestChain",
    "HeaviestChain",
    "GHOSTSelection",
    "LengthScore",
    "WeightScore",
    "FrugalOracle",
    "ProdigalOracle",
    "RefinedBTADT",
    "__version__",
]
