"""Merit distributions.

Throughout Section 5 every system characterizes its participants by a
merit parameter ``α_p`` normalized so that ``Σ_p α_p = 1``: hashing power
(Bitcoin), memory bandwidth (Ethereum), stake (Algorand), or a uniform
``1/|M|`` over the permitted writers with ``0`` for everyone else
(Red Belly, Hyperledger Fabric).  This module provides those
distributions as small immutable objects consumed by the protocol runners
and by the oracle's tape family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "MeritDistribution",
    "uniform_merit",
    "zipf_merit",
    "proportional_merit",
    "permissioned_merit",
]


@dataclass(frozen=True)
class MeritDistribution:
    """An immutable map process id → normalized merit."""

    merits: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.merits:
            raise ValueError("a merit distribution needs at least one process")
        total = sum(m for _, m in self.merits)
        if total <= 0:
            raise ValueError("total merit must be positive")
        if any(m < 0 for _, m in self.merits):
            raise ValueError("merits must be non-negative")
        # Lookup index for merit_of: with population-scale runs the linear
        # scan over the tuple shows up in profiles.  (object.__setattr__
        # because the dataclass is frozen; not a field, so equality and
        # serialization are unchanged.)
        object.__setattr__(self, "_index", dict(self.merits))

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float], normalize: bool = True) -> "MeritDistribution":
        items = tuple(sorted(mapping.items()))
        if normalize:
            total = sum(v for _, v in items)
            if total <= 0:
                raise ValueError("total merit must be positive")
            items = tuple((k, v / total) for k, v in items)
        return cls(items)

    # -- queries ---------------------------------------------------------------------

    def merit_of(self, process: str) -> float:
        """Merit of ``process`` (0.0 for unknown processes, as for V \\ M)."""
        return self._index.get(process, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.merits)

    @property
    def processes(self) -> Tuple[str, ...]:
        return tuple(pid for pid, _ in self.merits)

    @property
    def total(self) -> float:
        return float(sum(m for _, m in self.merits))

    def writers(self) -> Tuple[str, ...]:
        """Processes with strictly positive merit (the permitted appenders)."""
        return tuple(pid for pid, merit in self.merits if merit > 0)

    def dominant(self) -> str:
        """Process with the largest merit (ties → lexicographically first)."""
        best = max(m for _, m in self.merits)
        return min(pid for pid, m in self.merits if m == best)


def _pids(n: int, prefix: str = "p") -> Tuple[str, ...]:
    if n < 1:
        raise ValueError("need at least one process")
    return tuple(f"{prefix}{i}" for i in range(n))


def uniform_merit(n: int, prefix: str = "p") -> MeritDistribution:
    """``α_p = 1/n`` for every process — the symmetric baseline."""
    pids = _pids(n, prefix)
    return MeritDistribution(tuple((pid, 1.0 / n) for pid in pids))


def zipf_merit(n: int, exponent: float = 1.0, prefix: str = "p") -> MeritDistribution:
    """Zipf-skewed merits: ``α_{p_i} ∝ 1 / (i + 1)^exponent``.

    Models mining-pool style concentration; the ablation benches sweep the
    exponent to study how merit skew affects fork/convergence behaviour.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    pids = _pids(n, prefix)
    # Deliberately a scalar loop: numpy's vectorized pow differs from
    # Python's by ULPs for fractional exponents, and the stream-identity
    # tests pin these weights byte-for-byte (n is the process count, so
    # there is nothing to vectorize anyway).
    raw = np.array([1.0 / (i + 1) ** exponent for i in range(n)], dtype=float)
    weights = raw / raw.sum()
    return MeritDistribution(tuple(zip(pids, (float(w) for w in weights))))


def proportional_merit(weights: Sequence[float], prefix: str = "p") -> MeritDistribution:
    """Merits proportional to explicit weights (e.g. stake amounts)."""
    if not weights:
        raise ValueError("weights must be non-empty")
    arr = np.asarray(weights, dtype=float)
    if (arr < 0).any() or arr.sum() <= 0:
        raise ValueError("weights must be non-negative with a positive sum")
    pids = _pids(len(weights), prefix)
    normalized = arr / arr.sum()
    return MeritDistribution(tuple(zip(pids, (float(w) for w in normalized))))


def permissioned_merit(
    writers: Iterable[str], readers: Iterable[str] = ()
) -> MeritDistribution:
    """The consortium/permissioned pattern of Red Belly and Hyperledger.

    Every process in ``writers`` gets merit ``1/|writers|``; every process
    in ``readers`` gets merit ``0`` (it may read the BlockTree but never
    append).
    """
    writer_list = sorted(set(writers))
    reader_list = sorted(set(readers) - set(writer_list))
    if not writer_list:
        raise ValueError("a permissioned system needs at least one writer")
    share = 1.0 / len(writer_list)
    merits = [(pid, share) for pid in writer_list] + [(pid, 0.0) for pid in reader_list]
    return MeritDistribution(tuple(sorted(merits)))
