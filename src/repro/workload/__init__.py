"""Workload generators: merits, transactions and the paper's scenarios.

* :mod:`repro.workload.merit` — merit (hashing power / stake / permission)
  distributions, normalized so that ``Σ α_p = 1`` as in Section 5;
* :mod:`repro.workload.transactions` — deterministic transaction streams
  and client workloads used by the permissioned-system models and the
  examples;
* :mod:`repro.workload.population` — population-scale client workloads
  generated column-wise (one rng fill per replica) and bulk-inserted
  into the event calendar;
* :mod:`repro.workload.scenarios` — hand-built concurrent histories
  reproducing Figures 2, 3, 4 and 13, plus parameterized random history
  generators used by the property-based tests and the hierarchy benches.
"""

from repro.workload.merit import (
    MeritDistribution,
    uniform_merit,
    zipf_merit,
    proportional_merit,
    permissioned_merit,
)
from repro.workload.population import ClientPopulation
from repro.workload.transactions import TransactionGenerator, ClientWorkload
from repro.workload.scenarios import (
    figure2_history,
    figure3_history,
    figure4_history,
    figure13_history,
    generate_chain_history,
    generate_forked_history,
)

__all__ = [
    "MeritDistribution",
    "uniform_merit",
    "zipf_merit",
    "proportional_merit",
    "permissioned_merit",
    "TransactionGenerator",
    "ClientWorkload",
    "ClientPopulation",
    "figure2_history",
    "figure3_history",
    "figure4_history",
    "figure13_history",
    "generate_chain_history",
    "generate_forked_history",
]
