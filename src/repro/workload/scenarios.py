"""Hand-built histories reproducing the paper's figures, plus generators.

Figures 2, 3 and 4 of the paper are concrete two-process concurrent
histories used to illustrate (respectively) a history satisfying BT Strong
Consistency, one satisfying BT Eventual Consistency but not SC, and one
satisfying neither.  Figure 13 illustrates the Update Agreement
replication events.  The functions below rebuild those histories exactly
(same chains, same per-process read sequences, length score, longest-chain
selection), so the figure-level benches and tests can check the paper's
verdicts mechanically.

The module also provides two parameterized generators used by the
property-based tests and the hierarchy benches:

* :func:`generate_chain_history` — a fork-free history with interleaved
  reads at ``n`` processes (always SC);
* :func:`generate_forked_history` — a history with a transient fork that
  is resolved (EC, not SC) or left unresolved (neither), depending on
  ``resolve``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.block import Block, Blockchain, GENESIS, GENESIS_ID
from repro.core.history import History, HistoryRecorder

__all__ = [
    "figure2_history",
    "figure3_history",
    "figure4_history",
    "figure13_history",
    "generate_chain_history",
    "generate_forked_history",
]


def _block(block_id: str, parent_id: str, creator: str = "i") -> Block:
    return Block(block_id=block_id, parent_id=parent_id, creator=creator)


def _chain(*blocks: Block) -> Blockchain:
    return Blockchain((GENESIS, *blocks))


def _record_append(recorder: HistoryRecorder, process: str, block: Block) -> None:
    recorder.complete(process, "append", block, True)


def _record_read(recorder: HistoryRecorder, process: str, chain: Blockchain) -> None:
    recorder.complete(process, "read", None, chain)


def figure2_history() -> History:
    """The SC history of Figure 2.

    Two processes ``i`` and ``j``; a single chain ``b0·1·2·3·4`` grows over
    time; ``i`` reads prefixes of length 2, 3, 4 and ``j`` reads prefixes
    of length 1, 2, 4.  Every pair of returned chains is prefix-related.
    """
    b1 = _block("1", GENESIS_ID)
    b2 = _block("2", "1")
    b3 = _block("3", "2")
    b4 = _block("4", "3")
    chain1 = _chain(b1)
    chain2 = _chain(b1, b2)
    chain3 = _chain(b1, b2, b3)
    chain4 = _chain(b1, b2, b3, b4)

    rec = HistoryRecorder()
    _record_append(rec, "i", b1)
    _record_read(rec, "j", chain1)
    _record_append(rec, "i", b2)
    _record_read(rec, "i", chain2)
    _record_read(rec, "j", chain2)
    _record_append(rec, "j", b3)
    _record_read(rec, "i", chain3)
    _record_append(rec, "i", b4)
    _record_read(rec, "i", chain4)
    _record_read(rec, "j", chain4)
    return rec.history()


def figure3_history() -> History:
    """The EC-but-not-SC history of Figure 3.

    The tree forks below the genesis block: one branch ``1·3·5`` and one
    branch ``2·4``.  Process ``i`` initially follows the ``2·4`` branch
    while ``j`` follows ``1``; eventually both adopt ``b0·1·3·5``.  The
    first reads of ``i`` and ``j`` diverge (Strong Prefix fails) but the
    final reads agree, so the Eventual Prefix property holds.
    """
    b1 = _block("1", GENESIS_ID, creator="j")
    b2 = _block("2", GENESIS_ID, creator="i")
    b3 = _block("3", "1", creator="j")
    b4 = _block("4", "2", creator="i")
    b5 = _block("5", "3", creator="j")
    branch_24 = _chain(b2, b4)
    branch_1 = _chain(b1)
    branch_13 = _chain(b1, b3)
    branch_135 = _chain(b1, b3, b5)

    rec = HistoryRecorder()
    _record_append(rec, "j", b1)
    _record_append(rec, "i", b2)
    _record_append(rec, "i", b4)
    _record_read(rec, "j", branch_1)
    _record_read(rec, "i", branch_24)
    _record_append(rec, "j", b3)
    _record_read(rec, "j", branch_13)
    _record_append(rec, "j", b5)
    _record_read(rec, "i", branch_135)
    _record_read(rec, "j", branch_135)
    return rec.history()


def figure4_history() -> History:
    """The history of Figure 4, satisfying neither criterion.

    Processes ``i`` and ``j`` adopt permanently diverging branches
    (``2·4·6`` at ``i`` versus ``1·3·5`` at ``j``); their views never
    re-converge, so both Strong Prefix and Eventual Prefix fail.
    """
    b1 = _block("1", GENESIS_ID, creator="j")
    b2 = _block("2", GENESIS_ID, creator="i")
    b3 = _block("3", "1", creator="j")
    b4 = _block("4", "2", creator="i")
    b5 = _block("5", "3", creator="j")
    b6 = _block("6", "4", creator="i")

    rec = HistoryRecorder()
    for process, block in (("j", b1), ("i", b2), ("j", b3), ("i", b4), ("j", b5), ("i", b6)):
        _record_append(rec, process, block)
    _record_read(rec, "i", _chain(b2, b4))
    _record_read(rec, "j", _chain(b1, b3))
    _record_read(rec, "i", _chain(b2, b4, b6))
    _record_read(rec, "j", _chain(b1, b3, b5))
    return rec.history()


def figure13_history(drop_for: Sequence[str] = ()) -> History:
    """The Update Agreement history of Figure 13.

    Process ``i`` generates a block ``b`` on the genesis block: it records
    ``send_i``, ``update_i`` and ``receive_i``; processes ``j`` and ``k``
    then receive and update.  Passing process names in ``drop_for``
    suppresses their ``receive``/``update`` events, producing exactly the
    broken histories used in the proofs of Lemmas 4.4/4.5.
    """
    dropped = set(drop_for)
    rec = HistoryRecorder()
    block = _block("b", GENESIS_ID, creator="i")
    _record_append(rec, "i", block)
    rec.send("i", GENESIS_ID, "b")
    rec.update("i", GENESIS_ID, "b")
    rec.receive("i", GENESIS_ID, "b")
    for other in ("j", "k"):
        if other in dropped:
            continue
        rec.receive(other, GENESIS_ID, "b")
        rec.update(other, GENESIS_ID, "b")
    return rec.history()


# ---------------------------------------------------------------------------
# Parameterized generators
# ---------------------------------------------------------------------------


def generate_chain_history(
    n_processes: int = 3,
    chain_length: int = 10,
    reads_per_process: int = 5,
    seed: int = 0,
) -> History:
    """A fork-free history: one growing chain, interleaved prefix reads.

    Every read returns a prefix of the single chain whose length is at
    least the length returned by the same process's previous read, so the
    history satisfies BT Strong Consistency by construction.
    """
    if n_processes < 1 or chain_length < 1 or reads_per_process < 0:
        raise ValueError("invalid generator parameters")
    rng = np.random.default_rng(seed)
    processes = [f"p{i}" for i in range(n_processes)]
    rec = HistoryRecorder()

    blocks: List[Block] = []
    parent = GENESIS_ID
    # One vectorized fill for the whole chain's creators: element- and
    # state-identical to drawing rng.integers(0, n) once per height (the
    # stream-identity tests pin this), so existing seeds reproduce the
    # same histories.
    creator_draws = rng.integers(0, n_processes, size=chain_length)
    for height in range(1, chain_length + 1):
        creator = processes[int(creator_draws[height - 1])]
        block = Block(f"c{height}", parent, creator=creator)
        blocks.append(block)
        parent = block.block_id

    # Interleave appends and reads; track the per-process floor so Local
    # Monotonic Read holds by construction.
    appended = 0
    last_read_length: Dict[str, int] = {p: 0 for p in processes}
    total_reads = reads_per_process * n_processes
    read_budget: Dict[str, int] = {p: reads_per_process for p in processes}
    while appended < chain_length or any(read_budget.values()):
        do_append = appended < chain_length and (
            not any(read_budget.values()) or rng.random() < 0.5
        )
        if do_append:
            block = blocks[appended]
            _record_append(rec, block.creator or processes[0], block)
            appended += 1
        else:
            eligible = [p for p in processes if read_budget[p] > 0]
            process = eligible[int(rng.integers(0, len(eligible)))]
            lo = last_read_length[process]
            length = int(rng.integers(lo, appended + 1)) if appended >= lo else lo
            chain = Blockchain((GENESIS, *blocks[:length]))
            _record_read(rec, process, chain)
            last_read_length[process] = length
            read_budget[process] -= 1
    del total_reads
    return rec.history()


def generate_forked_history(
    branch_length: int = 4,
    resolve: bool = True,
    reads_per_process: int = 4,
    seed: int = 0,
) -> History:
    """A two-branch history with (optionally resolved) divergence.

    Two processes each grow their own branch off the genesis block and
    read their own chain after every level (so the divergent views are
    always observable in the history).  With ``resolve=True`` one branch
    eventually overtakes the other and both processes' final reads return
    the winning chain (EC holds, SC does not); with ``resolve=False`` the
    branches stay separate to the end (neither criterion holds).
    """
    if branch_length < 1 or reads_per_process < 1:
        raise ValueError("invalid generator parameters")
    rng = np.random.default_rng(seed)
    rec = HistoryRecorder()

    branch_a: List[Block] = []
    branch_b: List[Block] = []
    parent_a = parent_b = GENESIS_ID
    for height in range(1, branch_length + 1):
        block_a = Block(f"a{height}", parent_a, creator="i")
        block_b = Block(f"b{height}", parent_b, creator="j")
        branch_a.append(block_a)
        branch_b.append(block_b)
        parent_a, parent_b = block_a.block_id, block_b.block_id
        _record_append(rec, "i", block_a)
        _record_append(rec, "j", block_b)
        _record_read(rec, "i", Blockchain((GENESIS, *branch_a)))
        _record_read(rec, "j", Blockchain((GENESIS, *branch_b)))
        if rng.random() < 0.3:
            # Occasional extra read (same view) to vary history shapes.
            _record_read(rec, "j", Blockchain((GENESIS, *branch_b)))

    if resolve:
        # Branch A wins: extend it one block beyond, and both processes'
        # final reads adopt it.
        extra = Block(f"a{branch_length + 1}", parent_a, creator="i")
        branch_a.append(extra)
        _record_append(rec, "i", extra)
        winner = Blockchain((GENESIS, *branch_a))
        for process in ("i", "j"):
            _record_read(rec, process, winner)
    else:
        _record_read(rec, "i", Blockchain((GENESIS, *branch_a)))
        _record_read(rec, "j", Blockchain((GENESIS, *branch_b)))
    return rec.history()
