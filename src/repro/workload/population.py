"""Population-scale client workloads, generated column-wise.

The per-op generators in :mod:`repro.workload.transactions` are fine for
the handful of transactions a block payload needs, but a realistic load
— thousands of clients issuing operations over the whole run — cannot be
produced one Python object at a time without the *generator* dominating
the simulation.  :class:`ClientPopulation` instead draws the entire
population's operation streams as numpy columns:

* each client is assigned to a home replica with one
  ``rng.integers`` fill over the whole population;
* per-replica operation counts come from a single vectorized Poisson
  draw (``lam = clients_at_replica * rate * duration``), the standard
  superposition of per-client Poisson processes;
* arrival times are one ``rng.uniform`` fill per replica, sorted — for a
  Poisson process, arrivals conditioned on their count are i.i.d.
  uniform over the interval;
* operation payloads are integer coin ids (optionally re-spending an
  earlier coin with probability ``conflict_rate``, drawn column-wise).

The streams are bulk-inserted into the event calendar through
``Simulator.schedule_block`` — one vectorized insert per replica — so a
10k-client population costs a few array operations, not hundreds of
thousands of heap pushes.  Everything derives from ``seed``; two
populations with equal parameters produce identical streams under both
simulator cores.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Sequence, Tuple

import numpy as np

__all__ = ["ClientPopulation"]


class ClientPopulation:
    """Vectorized operation streams for ``clients`` clients.

    Parameters
    ----------
    clients:
        Population size (each client issues operations at ``rate``).
    rate:
        Expected operations per client per virtual time unit.
    duration:
        Virtual interval ``[0, duration)`` the arrivals cover.
    processes:
        Replica ids, in order; each client is homed on one of them.
    seed:
        Seeds every draw (assignment, counts, arrival times, conflicts).
    conflict_rate:
        Probability that an operation re-spends an earlier coin id (a
        double spend) instead of a fresh one.
    """

    def __init__(
        self,
        clients: int,
        rate: float,
        duration: float,
        processes: Sequence[str],
        seed: int = 0,
        conflict_rate: float = 0.0,
    ) -> None:
        if clients < 1:
            raise ValueError("clients must be positive")
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not processes:
            raise ValueError("processes must be non-empty")
        if not 0 <= conflict_rate <= 1:
            raise ValueError("conflict_rate must be in [0, 1]")
        self.clients = clients
        self.rate = rate
        self.duration = duration
        self.processes = tuple(processes)
        self.seed = seed
        self.conflict_rate = conflict_rate

        started = time.perf_counter()
        rng = np.random.default_rng(seed)
        n = len(self.processes)
        assignment = rng.integers(0, n, size=clients)
        counts = np.bincount(assignment, minlength=n)
        ops_per_process = rng.poisson(lam=counts * rate * duration)

        #: Per-replica streams: pid → (sorted arrival times, coin ids).
        self.streams: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        next_coin = 0
        for index, pid in enumerate(self.processes):
            k = int(ops_per_process[index])
            times = np.sort(rng.uniform(0.0, duration, size=k))
            ops = np.arange(next_coin, next_coin + k, dtype=np.int64)
            if conflict_rate > 0.0 and k:
                respend = rng.random(k) < conflict_rate
                reuse = rng.integers(0, np.maximum(ops, 1))
                respend &= ops > 0  # the very first coin has nothing to re-spend
                ops = np.where(respend, reuse, ops)
            next_coin += k
            self.streams[pid] = (times, ops)
        self.total_ops = int(ops_per_process.sum())
        self.generation_seconds = time.perf_counter() - started
        self.scheduled_ops = 0

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        # The op streams are a pure function of the constructor arguments
        # (one seeded generator, fixed draw order), so checkpoints carry
        # only the recipe — a few dozen bytes instead of 16 bytes per
        # operation — and regenerate bit-identical arrays on restore.
        return {
            "clients": self.clients,
            "rate": self.rate,
            "duration": self.duration,
            "processes": self.processes,
            "seed": self.seed,
            "conflict_rate": self.conflict_rate,
            "scheduled_ops": self.scheduled_ops,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        scheduled_ops = state.pop("scheduled_ops")
        self.__init__(**state)
        self.scheduled_ops = scheduled_ops

    # -- scheduling -----------------------------------------------------------

    def schedule_on(self, network) -> int:
        """Bulk-insert every stream into ``network``'s event calendar.

        One ``schedule_block`` call per replica, in ``processes`` order —
        the insertion order (and therefore the seq numbering) is
        identical under the array and heap cores.  Returns the number of
        operations scheduled.
        """
        simulator = network.simulator
        scheduled = 0
        for pid in self.processes:
            times, ops = self.streams[pid]
            if not len(times):
                continue
            replica = network.process(pid)
            scheduled += simulator.schedule_block(
                times, replica.on_client_op, ops.tolist()
            )
        self.scheduled_ops = scheduled
        return scheduled

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Summary numbers for result artifacts and benchmarks."""
        return {
            "clients": self.clients,
            "total_ops": self.total_ops,
            "generation_seconds": self.generation_seconds,
        }
