"""Transaction streams and client workloads.

Block payloads throughout the library are tuples of opaque transaction
identifiers.  The permissioned-system models (Hyperledger, Red Belly) cut
blocks from a transaction stream ("transactions are appended in a block
until a stop condition is met"); the examples and the double-spend
validity tests need conflicting transactions.  This module provides both,
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Transaction", "TransactionGenerator", "ClientWorkload"]


@dataclass(frozen=True)
class Transaction:
    """A minimal UTXO-flavoured transaction.

    ``spends`` names the identifiers this transaction consumes; two
    transactions spending the same identifier conflict, which is what the
    :class:`~repro.core.validity.NoDoubleSpend` predicate detects when
    payloads carry the spent identifiers.
    """

    tx_id: str
    sender: str
    spends: Tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.tx_id


class TransactionGenerator:
    """Deterministic transaction id factory with optional conflicts."""

    def __init__(self, seed: int = 0, conflict_rate: float = 0.0) -> None:
        if not 0 <= conflict_rate <= 1:
            raise ValueError("conflict_rate must be in [0, 1]")
        self._rng = np.random.default_rng(seed)
        # Hoisted bound methods (the channels.py idiom): every
        # ``next_transaction`` call in a population-scale run would
        # otherwise pay two attribute lookups on the Generator.  The
        # bit stream is untouched — same methods, same call order.
        self._random = self._rng.random
        self._choice = self._rng.choice
        self._counter = 0
        self._spent_pool: List[str] = []
        self.conflict_rate = conflict_rate

    def next_transaction(self, sender: str) -> Transaction:
        """Produce the next transaction from ``sender``.

        With probability ``conflict_rate`` the transaction re-spends an
        identifier already spent by an earlier transaction (a double
        spend); otherwise it spends a fresh identifier.
        """
        self._counter += 1
        tx_id = f"tx{self._counter}"
        if self._spent_pool and self._random() < self.conflict_rate:
            spends = (str(self._choice(self._spent_pool)),)
        else:
            coin = f"coin{self._counter}"
            self._spent_pool.append(coin)
            spends = (coin,)
        return Transaction(tx_id=tx_id, sender=sender, spends=spends)

    def batch(self, sender: str, size: int) -> Tuple[Transaction, ...]:
        """A batch of ``size`` transactions (a block payload)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return tuple(self.next_transaction(sender) for _ in range(size))

    def payload(self, sender: str, size: int) -> Tuple[str, ...]:
        """Just the spent identifiers — the form block payloads use."""
        return tuple(spend for tx in self.batch(sender, size) for spend in tx.spends)


@dataclass
class ClientWorkload:
    """Poisson-ish client load feeding a permissioned ordering service.

    ``arrivals_between(t0, t1)`` returns the number of transactions that
    arrived in the virtual-time interval — deterministic given the seed, so
    protocol runs remain reproducible.
    """

    rate_per_time_unit: float = 2.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _carry: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_time_unit < 0:
            raise ValueError("rate must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        self._integers = self._rng.integers  # hoisted hot-loop binding

    def arrivals_between(self, t0: float, t1: float) -> int:
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        expected = self.rate_per_time_unit * (t1 - t0) + self._carry
        count = int(expected)
        self._carry = expected - count
        if count > 0:
            # Jitter ±1 to avoid a perfectly periodic stream while keeping determinism.
            count = max(0, count + int(self._integers(-1, 2)))
        return count
