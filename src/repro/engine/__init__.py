"""Experiment engine: protocol registry, declarative specs, parallel sweeps.

The engine is the single entry point every layer above the protocol
models goes through:

* :mod:`repro.engine.registry` — ``@register_protocol`` and the process-
  wide :data:`~repro.engine.registry.REGISTRY` mapping system names to
  their runners and regime metadata;
* :mod:`repro.engine.spec` — :class:`ExperimentSpec` and friends, the
  declarative, JSON-serializable description of one run;
* :mod:`repro.engine.result` — the serializable :class:`RunResult`
  artifact (classification verdict + fork/convergence/fairness statistics
  + timings);
* :mod:`repro.engine.sweep` — grid expansion and the
  :class:`SweepRunner` resilience loop (retries, timeouts, failure
  degradation, journaled resume) over a pluggable executor backend;
* :mod:`repro.engine.executors` — the ``@register_executor`` vocabulary
  of execution backends (``serial`` / ``pool`` / ``shard`` / ``flaky``)
  plus the :class:`CellFailure` artifact and chaos-injection machinery;
* :mod:`repro.engine.checkpoint` — deterministic checkpoint/restore for
  long runs: :class:`SimulationCheckpoint` snapshots, the crash-safe
  :class:`CheckpointWriter`, and checkpoint-aware spec execution;
* :mod:`repro.engine.cache` — :class:`ResultCache`, the content-addressed
  memoization store keyed on ``ExperimentSpec.to_json()`` (wired into
  :class:`SweepRunner` and the CLI's ``--cache`` flag);
* :mod:`repro.engine.bench` — the perf benchmark harness behind
  ``python -m repro bench`` (emits ``BENCH_<date>.json``).

Typical use::

    from repro.engine import ExperimentSpec, SweepRunner, expand_grid

    base = ExperimentSpec(protocol="bitcoin", replicas=5, duration=100.0)
    specs = expand_grid(base, {"seed": range(8), "channel.delta": [1.0, 3.0]})
    results = SweepRunner(jobs=4).run(specs)
    verdicts = [r.classification["label"] for r in results]
"""

from repro.engine.registry import (
    REGISTRY,
    ProtocolEntry,
    ProtocolRegistry,
    available_protocols,
    get_protocol,
    load_builtin_protocols,
    register_fault_runner,
    register_protocol,
)
from repro.engine.spec import (
    ChannelSpec,
    ExperimentSpec,
    FaultSpec,
    TopologySpec,
    WorkloadSpec,
    regime_spec,
    table1_spec,
)
from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache, spec_digest
from repro.engine.checkpoint import (
    CHECKPOINT_SCHEMA,
    DEFAULT_CHECKPOINT_DIR,
    CheckpointCorruptionError,
    CheckpointWriter,
    SimulationCheckpoint,
    checkpoint_context,
    checkpoint_path_for,
    load_checkpoint,
    read_checkpoint_header,
    resume_spec_from_checkpoint,
    run_spec_with_checkpoints,
)
from repro.engine.executors import (
    CellFailure,
    CellTask,
    Executor,
    FlakyExecutor,
    PoolExecutor,
    SerialExecutor,
    ShardExecutor,
    SweepAbortedError,
    available_executors,
    get_executor,
    make_executor,
    register_executor,
    retry_delay,
)
from repro.engine.result import RunResult, analyse_run
from repro.engine.sweep import (
    SweepJournal,
    SweepRunner,
    derive_seed,
    expand_grid,
    results_payload,
)

__all__ = [
    "REGISTRY",
    "ProtocolEntry",
    "ProtocolRegistry",
    "available_protocols",
    "get_protocol",
    "load_builtin_protocols",
    "register_fault_runner",
    "register_protocol",
    "ChannelSpec",
    "ExperimentSpec",
    "FaultSpec",
    "TopologySpec",
    "WorkloadSpec",
    "regime_spec",
    "table1_spec",
    "RunResult",
    "analyse_run",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "spec_digest",
    "CHECKPOINT_SCHEMA",
    "DEFAULT_CHECKPOINT_DIR",
    "CheckpointCorruptionError",
    "CheckpointWriter",
    "SimulationCheckpoint",
    "checkpoint_context",
    "checkpoint_path_for",
    "load_checkpoint",
    "read_checkpoint_header",
    "resume_spec_from_checkpoint",
    "run_spec_with_checkpoints",
    "SweepRunner",
    "SweepJournal",
    "derive_seed",
    "expand_grid",
    "results_payload",
    "CellFailure",
    "CellTask",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "ShardExecutor",
    "FlakyExecutor",
    "SweepAbortedError",
    "register_executor",
    "available_executors",
    "get_executor",
    "make_executor",
    "retry_delay",
]
