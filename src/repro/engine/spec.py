"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a plain, JSON-serializable description of
one protocol run: which registered protocol, how many replicas, for how
long, under which channel / fault / workload model, validated by which
oracle bound and scored by which score function.  ``spec.execute()``
resolves the protocol through the registry, performs the run, and returns
a :class:`repro.engine.result.RunResult` carrying the classification
verdict and the fork / convergence / fairness statistics.

Because a spec is pure data it can cross process boundaries (the
:class:`~repro.engine.sweep.SweepRunner` ships specs to a worker pool as
JSON), be stored next to results for provenance, and be diffed between
experiments.  Two executions of the same spec produce identical
simulations: every random draw is derived from ``spec.seed``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.errors import UnknownVocabularyError
from repro.core.score import LengthScore, ScoreFunction, WeightScore
from repro.core.selection import (
    FixedTipSelection,
    GHOSTSelection,
    HeaviestChain,
    LongestChain,
    SelectionFunction,
)
from repro.engine.registry import ProtocolEntry, get_protocol
from repro.network.channels import (
    AsynchronousChannel,
    ChannelModel,
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
)
from repro.network.topology import Topology, build_topology
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle, TokenOracle
from repro.workload.merit import MeritDistribution, uniform_merit, zipf_merit

__all__ = [
    "ChannelSpec",
    "TopologySpec",
    "WorkloadSpec",
    "WORKLOAD_FIELDS",
    "FaultSpec",
    "ExperimentSpec",
    "regime_spec",
    "table1_spec",
]


_CHANNEL_KINDS = {
    "synchronous": SynchronousChannel,
    "asynchronous": AsynchronousChannel,
    "partial": PartiallySynchronousChannel,
}

_SELECTIONS = {
    "longest": LongestChain,
    "heaviest": HeaviestChain,
    "ghost": GHOSTSelection,
    "fixed-tip": FixedTipSelection,
}

_SCORES = {
    "length": LengthScore,
    "weight": WeightScore,
}


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative channel model.

    ``kind`` selects the synchrony class; ``params`` are its constructor
    arguments (``delta``, ``min_delay``, ``gst``, ...).  A positive
    ``drop_probability`` wraps the channel in a :class:`LossyChannel`.
    ``seed`` defaults to the owning spec's seed so a single integer
    reproduces the whole run.
    """

    kind: str = "synchronous"
    params: Mapping[str, Any] = field(default_factory=dict)
    drop_probability: float = 0.0
    seed: Optional[int] = None

    def build(self, default_seed: int) -> ChannelModel:
        try:
            cls = _CHANNEL_KINDS[self.kind]
        except KeyError:
            raise UnknownVocabularyError(
                "channel kind", self.kind, _CHANNEL_KINDS
            ) from None
        seed = self.seed if self.seed is not None else default_seed
        channel: ChannelModel = cls(**dict(self.params), seed=seed)
        if self.drop_probability > 0:
            channel = LossyChannel(channel, self.drop_probability, seed=seed)
        return channel

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "drop_probability": self.drop_probability,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChannelSpec":
        return cls(
            kind=data.get("kind", "synchronous"),
            params=dict(data.get("params", {})),
            drop_probability=float(data.get("drop_probability", 0.0)),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class TopologySpec:
    """Declarative dissemination topology.

    ``kind`` names a registered :class:`~repro.network.topology.Topology`
    (``full``, ``gossip``, ``committee``, ``sharded``, ``ring``,
    ``random-regular``); ``params`` are its constructor arguments
    (``fanout``, ``members``, ``shards``, ``hops``, ...).  ``seed``
    defaults to the owning spec's seed and is forwarded only to
    topologies that draw randomness (gossip, random-regular), so a single
    spec-level integer still reproduces the whole run.

    A spec without a topology serializes without the key at all — cache
    digests of pre-topology specs are unchanged.
    """

    kind: str = "full"
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def build(self, default_seed: int) -> Topology:
        seed = self.seed if self.seed is not None else default_seed
        return build_topology(self.kind, dict(self.params), seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "TopologySpec":
        if isinstance(data, str):
            # A bare kind name ("gossip") is the sweep-axis / CLI shorthand.
            return cls(kind=data)
        return cls(
            kind=data.get("kind", "full"),
            params=dict(data.get("params", {})),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Read workload, client population, dissemination and merit.

    ``None`` fields mean "use the protocol runner's default", which keeps
    a bare spec byte-compatible with a direct ``run_*`` call.

    ``clients`` attaches a vectorized
    :class:`~repro.workload.population.ClientPopulation` of that size to
    the run (``client_rate`` operations per client per time unit) — a
    first-class sweep axis (``workload.clients``), so population scaling
    studies expand through ``expand_grid`` like any other parameter.
    """

    read_interval: Optional[float] = None
    use_lrc: Optional[bool] = None
    merit: Optional[str] = None  # "uniform" | "zipf" | None → protocol default
    merit_exponent: float = 1.0
    clients: Optional[int] = None
    client_rate: Optional[float] = None

    def build_merit(self, n: int) -> Optional[MeritDistribution]:
        if self.merit is None:
            return None
        if self.merit == "uniform":
            return uniform_merit(n)
        if self.merit == "zipf":
            return zipf_merit(n, exponent=self.merit_exponent)
        raise UnknownVocabularyError(
            "merit distribution", self.merit, ("uniform", "zipf")
        )

    def to_dict(self) -> Dict[str, Any]:
        # The population keys are emitted only when set: serialized specs
        # (and therefore cache digests) from before the population axis
        # existed are unchanged.
        data: Dict[str, Any] = {
            "read_interval": self.read_interval,
            "use_lrc": self.use_lrc,
            "merit": self.merit,
            "merit_exponent": self.merit_exponent,
        }
        if self.clients is not None:
            data["clients"] = self.clients
        if self.client_rate is not None:
            data["client_rate"] = self.client_rate
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        clients = data.get("clients")
        client_rate = data.get("client_rate")
        return cls(
            read_interval=data.get("read_interval"),
            use_lrc=data.get("use_lrc"),
            merit=data.get("merit"),
            merit_exponent=float(data.get("merit_exponent", 1.0)),
            clients=int(clients) if clients is not None else None,
            client_rate=float(client_rate) if client_rate is not None else None,
        )


#: Valid ``workload.*`` sweep-axis names.  The serialized form omits the
#: population keys when unset, so axis validation must check the field
#: names, not dict membership.
WORKLOAD_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in WorkloadSpec.__dataclass_fields__.values()
)


#: Fault kinds dispatched to dedicated ``@register_fault_runner`` runners
#: (the retained legacy path); everything else resolves through the
#: ``@register_fault`` model registry and rides the generic ``fault=``
#: runner keyword.
_LEGACY_FAULT_KINDS: Tuple[str, ...] = ("crash", "byzantine")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative adversary.

    ``kind`` either names one of the two legacy runner faults
    (``crash`` with ``crash_at``, ``byzantine`` with ``byzantine`` —
    dispatched to their dedicated ``@register_fault_runner`` runners,
    byte-compatible with every pre-existing spec) or a registered
    :class:`~repro.network.faults.FaultModel` (``crash``/``silent``/
    ``churn``/``partition``/``eclipse``); ``params`` are its constructor
    arguments and ``seed`` defaults to the owning spec's seed, exactly
    like :class:`TopologySpec`.  Setting ``params`` on a legacy kind
    routes it through the model registry too (``crash`` is registered in
    both vocabularies, event-for-event identical).

    ``params`` and ``seed`` are serialized only when set, so digests of
    pre-existing fault specs — and their cache entries — are unchanged.
    """

    kind: str
    crash_at: Mapping[str, float] = field(default_factory=dict)
    byzantine: Tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    @property
    def uses_runner(self) -> bool:
        """``True`` iff this spec dispatches to a legacy fault runner."""
        return self.kind in _LEGACY_FAULT_KINDS and not self.params

    @property
    def runner_kind(self) -> Optional[str]:
        """The ``register_fault_runner`` key, or ``None`` for model faults."""
        return self.kind if self.uses_runner else None

    def build(self, default_seed: int) -> "FaultModel":
        """Instantiate the registered fault model (non-runner kinds)."""
        from repro.network.faults import build_fault

        seed = self.seed if self.seed is not None else default_seed
        return build_fault(self.kind, dict(self.params), seed=seed)

    def runner_kwargs(self, default_seed: int) -> Dict[str, Any]:
        """The keyword arguments this fault contributes to the runner."""
        if self.uses_runner:
            return self.to_kwargs()
        return {"fault": self.build(default_seed)}

    def to_kwargs(self) -> Dict[str, Any]:
        """Legacy runner keywords (``crash_at`` / ``byzantine``).

        An unknown kind raises the uniform
        :class:`~repro.core.errors.UnknownVocabularyError` listing the
        registered fault vocabulary, like every other registry lookup; a
        registered *model* kind is a usage error here (those build
        through :meth:`runner_kwargs`).
        """
        if self.kind == "crash":
            return {"crash_at": dict(self.crash_at)}
        if self.kind == "byzantine":
            return {"byzantine": tuple(self.byzantine)}
        from repro.network.faults import FAULT_REGISTRY, get_fault

        get_fault(self.kind)  # raises UnknownVocabularyError for unknown kinds
        raise ValueError(
            f"fault kind {self.kind!r} is a registered fault model "
            f"({', '.join(FAULT_REGISTRY)}); build it with runner_kwargs()"
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "crash_at": dict(self.crash_at),
            "byzantine": list(self.byzantine),
        }
        # Only serialized when set: digests (and therefore cache entries)
        # of pre-existing fault specs are unchanged.
        if self.params:
            data["params"] = dict(self.params)
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "FaultSpec":
        if isinstance(data, str):
            # A bare kind name is the sweep-axis / CLI shorthand.
            return cls(kind=data)
        return cls(
            kind=data["kind"],
            crash_at=dict(data.get("crash_at", {})),
            byzantine=tuple(data.get("byzantine", ())),
            params=dict(data.get("params", {})),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described protocol experiment.

    ``params`` holds protocol-specific knobs (``token_rate``,
    ``round_interval``, ``selection``, ...); unknown keys are rejected at
    execution time against the runner's signature, so a typo fails loudly
    instead of silently running the default regime.
    """

    protocol: str
    replicas: int = 5
    duration: float = 100.0
    seed: int = 0
    channel: Optional[ChannelSpec] = None
    #: Dissemination topology; ``None`` means the full-mesh default and —
    #: like ``monitor`` — is omitted from the serialized form entirely, so
    #: digests (and therefore cache keys) of pre-topology specs are
    #: unchanged.
    topology: Optional[TopologySpec] = None
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fault: Optional[FaultSpec] = None
    oracle_k: Optional[float] = None  # None → protocol default; math.inf → prodigal
    score: str = "length"
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    #: Opt-in streaming consistency monitoring: a
    #: :class:`~repro.core.consistency_index.ConsistencyMonitor` is
    #: subscribed to the run's recorder and its verdicts land on the
    #: result artifact (``RunResult.consistency``).
    monitor: bool = False
    #: Periodic checkpointing: snapshot the live run every N events to
    #: ``checkpoint_path`` (crash-safe; see :mod:`repro.engine.checkpoint`).
    #: Both are omitted from the serialized form when unset, so digests
    #: (and cache keys) of pre-checkpoint specs are unchanged.
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        oracle_k: Any = self.oracle_k
        if oracle_k is not None and math.isinf(oracle_k):
            oracle_k = "inf"
        data = {
            "protocol": self.protocol,
            "replicas": self.replicas,
            "duration": self.duration,
            "seed": self.seed,
            "channel": self.channel.to_dict() if self.channel else None,
            "workload": self.workload.to_dict(),
            "fault": self.fault.to_dict() if self.fault else None,
            "oracle_k": oracle_k,
            "score": self.score,
            "params": dict(self.params),
            "label": self.label,
        }
        # Only serialized when set, so digests of pre-existing specs
        # (and therefore their cache entries) are unaffected.
        if self.topology is not None:
            data["topology"] = self.topology.to_dict()
        if self.monitor:
            data["monitor"] = True
        if self.checkpoint_every is not None:
            data["checkpoint_every"] = self.checkpoint_every
        if self.checkpoint_path is not None:
            data["checkpoint_path"] = self.checkpoint_path
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        oracle_k = data.get("oracle_k")
        if isinstance(oracle_k, str):
            oracle_k = math.inf if oracle_k in ("inf", "Infinity", "∞") else float(oracle_k)
        channel = data.get("channel")
        topology = data.get("topology")
        fault = data.get("fault")
        return cls(
            protocol=data["protocol"],
            replicas=int(data.get("replicas", 5)),
            duration=float(data.get("duration", 100.0)),
            seed=int(data.get("seed", 0)),
            channel=ChannelSpec.from_dict(channel) if channel else None,
            topology=TopologySpec.from_dict(topology) if topology else None,
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            fault=FaultSpec.from_dict(fault) if fault else None,
            oracle_k=oracle_k,
            score=data.get("score", "length"),
            params=dict(data.get("params", {})),
            label=data.get("label"),
            monitor=bool(data.get("monitor", False)),
            checkpoint_every=(
                int(data["checkpoint_every"])
                if data.get("checkpoint_every") is not None
                else None
            ),
            checkpoint_path=data.get("checkpoint_path"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(payload))

    def with_updates(self, **changes: Any) -> "ExperimentSpec":
        """A copy with top-level fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    # -- builders -----------------------------------------------------------

    def build_score(self) -> ScoreFunction:
        try:
            return _SCORES[self.score]()
        except KeyError:
            raise UnknownVocabularyError("score function", self.score, _SCORES) from None

    def _build_selection(self, name: str) -> SelectionFunction:
        try:
            return _SELECTIONS[name]()
        except KeyError:
            raise UnknownVocabularyError(
                "selection function", name, _SELECTIONS
            ) from None

    def _build_oracle(self, entry: ProtocolEntry) -> TokenOracle:
        assert self.oracle_k is not None
        token_rate = self.params.get("token_rate")
        if token_rate is None:
            import inspect

            default = inspect.signature(entry.runner).parameters.get("token_rate")
            token_rate = default.default if default is not None else 1.0
        tapes = TapeFamily(seed=self.seed, probability_scale=float(token_rate))
        if math.isinf(self.oracle_k):
            return ProdigalOracle(tapes=tapes)
        if not float(self.oracle_k).is_integer() or self.oracle_k < 1:
            raise ValueError(
                f"oracle_k must be a positive integer or inf, got {self.oracle_k!r}"
            )
        return FrugalOracle(k=int(self.oracle_k), tapes=tapes)

    def build_kwargs(self) -> Dict[str, Any]:
        """Translate the spec into keyword arguments for the runner.

        Only fields the runner actually accepts are passed, and only when
        the spec sets them away from "protocol default" — so a minimal
        spec reproduces a bare ``run_*`` call exactly.
        """
        entry = get_protocol(self.protocol)
        fault_kind = self.fault.runner_kind if self.fault is not None else None

        def put(key: str, value: Any) -> None:
            if not entry.accepts(key, fault_kind):
                raise ValueError(
                    f"protocol {self.protocol!r} does not accept parameter {key!r}"
                )
            kwargs[key] = value

        kwargs: Dict[str, Any] = {}
        put("n", self.replicas)
        put("duration", self.duration)
        put("seed", self.seed)
        if self.channel is not None:
            put("channel", self.channel.build(self.seed))
        if self.topology is not None:
            put("topology", self.topology.build(self.seed))
        if self.workload.read_interval is not None:
            put("read_interval", self.workload.read_interval)
        if self.workload.use_lrc is not None:
            put("use_lrc", self.workload.use_lrc)
        merit = self.workload.build_merit(self.replicas)
        if merit is not None:
            put("merit", merit)
        if self.workload.clients is not None:
            put("clients", self.workload.clients)
        if self.workload.client_rate is not None:
            put("client_rate", self.workload.client_rate)
        if self.oracle_k is not None:
            put("oracle", self._build_oracle(entry))
        if self.monitor:
            from repro.core.consistency_index import ConsistencyMonitor

            put("monitor", ConsistencyMonitor(score=self.build_score()))
        for key, value in self.params.items():
            if key == "selection":
                value = self._build_selection(value)
            put(key, value)
        if self.fault is not None:
            for key, value in self.fault.runner_kwargs(self.seed).items():
                put(key, value)
        return kwargs

    # -- execution ----------------------------------------------------------

    def execute(self) -> "RunResult":
        """Run the experiment and analyse it; see :mod:`repro.engine.result`.

        When the spec carries checkpoint knobs, an ambient checkpoint
        configuration (:func:`repro.engine.checkpoint.checkpoint_context`)
        is installed around the runner so ``run_protocol`` snapshots the
        live run every ``checkpoint_every`` events without every runner
        signature having to forward the kwargs.
        """
        from repro.engine.result import RunResult, analyse_run

        entry = get_protocol(self.protocol)
        fault_kind = self.fault.runner_kind if self.fault is not None else None
        runner = entry.runner_for(fault_kind)
        kwargs = self.build_kwargs()
        started = time.perf_counter()
        if self.checkpoint_every is not None:
            from repro.engine.checkpoint import CheckpointWriter, checkpoint_context

            if self.checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be positive")
            writer = CheckpointWriter(
                self.checkpoint_path or "checkpoint.ckpt",
                spec=json.loads(self.to_json()),
            )
            with checkpoint_context(self.checkpoint_every, writer):
                run = runner(**kwargs)
        else:
            run = runner(**kwargs)
        run_seconds = time.perf_counter() - started
        return analyse_run(self, entry, run, run_seconds)


def regime_spec(
    name: str,
    regime: Mapping[str, Any],
    *,
    n: int,
    duration: float,
    seed: int,
    label: Optional[str] = None,
) -> ExperimentSpec:
    """Expand a registry regime dict (``table1`` / ``fork_prone``) into a spec.

    Regime dicts may carry ``params`` (protocol knobs) and ``channel``
    (:class:`ChannelSpec` kwargs); any other key is rejected loudly so a
    typo in a registration never silently runs the default regime.
    """
    overrides = dict(regime)
    channel_kwargs = overrides.pop("channel", None)
    channel = ChannelSpec.from_dict(channel_kwargs) if channel_kwargs else None
    params = dict(overrides.pop("params", {}))
    if overrides:
        raise ValueError(f"unsupported regime override keys: {sorted(overrides)}")
    return ExperimentSpec(
        protocol=name,
        replicas=n,
        duration=duration,
        seed=seed,
        channel=channel,
        params=params,
        label=label,
    )


def table1_spec(
    name: str, *, n: int = 5, duration: float = 100.0, seed: int = 7
) -> ExperimentSpec:
    """The spec reproducing one row of Table 1.

    Applies the registered ``table1`` regime overrides (the proof-of-work
    systems run fork-prone there, exactly as the seed's
    ``reproduce_table1`` hard-wired).
    """
    entry = get_protocol(name)
    return regime_spec(
        name, entry.table1, n=n, duration=duration, seed=seed, label=f"table1:{name}"
    )


# Imported late to avoid a hard module cycle in type checkers only.
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.result import RunResult
    from repro.network.faults import FaultModel
