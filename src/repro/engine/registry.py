"""Protocol registry: the single naming authority for runnable systems.

Before this module existed every entry point hard-wired its own mapping
from system name to ``run_*`` function (the ``SYSTEMS`` dict the CLI used
to carry, the ``default_runners`` dict inside ``reproduce_table1``, and
ad-hoc imports in 20+ benchmark modules).  The registry replaces all of
them: a protocol module decorates its runner with
:func:`register_protocol` and every layer above — CLI, classification,
sweeps, benchmarks — resolves the name through one table.

The registry deliberately knows nothing about the protocol modules
themselves (no imports from :mod:`repro.protocols` here), so protocol
modules can import it freely without cycles.  Callers that want the
built-in systems present call :func:`load_builtin_protocols` (idempotent)
before resolving names.

Each :class:`ProtocolEntry` also carries the *regime* metadata the old
entry points duplicated:

* ``table1`` — parameter overrides for the Table 1 reproduction (the
  proof-of-work systems run in a fork-prone regime there);
* ``fork_prone`` — overrides for the CLI's ``--fork-prone`` flag;
* ``fairness_merit`` — which merit distribution the fairness report of a
  classified run should be evaluated against;
* ``fault_runners`` — alternative runners keyed by fault kind (``crash``,
  ``byzantine``), registered with :func:`register_fault_runner`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.core.errors import UnknownVocabularyError

__all__ = [
    "ProtocolEntry",
    "ProtocolRegistry",
    "REGISTRY",
    "register_protocol",
    "register_fault_runner",
    "load_builtin_protocols",
    "available_protocols",
    "get_protocol",
]

Runner = Callable[..., Any]


def _accepted_kwargs(runner: Runner) -> frozenset:
    """Keyword parameters a runner accepts (used to filter spec kwargs)."""
    params = inspect.signature(runner).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return frozenset({"*"})
    return frozenset(
        name
        for name, p in params.items()
        if p.kind in (inspect.Parameter.KEYWORD_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    )


@dataclass
class ProtocolEntry:
    """One registered system model."""

    name: str
    runner: Runner
    table1: Mapping[str, Any] = field(default_factory=dict)
    fork_prone: Mapping[str, Any] = field(default_factory=dict)
    fairness_merit: str = "uniform"
    description: str = ""
    fault_runners: Dict[str, Runner] = field(default_factory=dict)
    _accepts: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self._accepts:
            self._accepts = _accepted_kwargs(self.runner)

    def runner_for(self, fault_kind: Optional[str]) -> Runner:
        """The runner handling ``fault_kind`` (``None`` → the base runner)."""
        if fault_kind is None:
            return self.runner
        try:
            return self.fault_runners[fault_kind]
        except KeyError:
            raise KeyError(
                f"protocol {self.name!r} has no runner for fault kind {fault_kind!r} "
                f"(available: {sorted(self.fault_runners) or 'none'})"
            ) from None

    def accepts(self, kwarg: str, fault_kind: Optional[str] = None) -> bool:
        """``True`` iff the (fault-)runner takes ``kwarg``."""
        accepted = (
            self._accepts
            if fault_kind is None
            else _accepted_kwargs(self.runner_for(fault_kind))
        )
        return "*" in accepted or kwarg in accepted


class ProtocolRegistry:
    """Name → :class:`ProtocolEntry`, preserving registration order."""

    def __init__(self) -> None:
        self._entries: Dict[str, ProtocolEntry] = {}

    def add(self, entry: ProtocolEntry, replace: bool = False) -> ProtocolEntry:
        if entry.name in self._entries and not replace:
            raise ValueError(f"protocol {entry.name!r} already registered")
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> ProtocolEntry:
        try:
            return self._entries[name]
        except KeyError:
            # The uniform vocabulary error (still a KeyError for callers
            # that catch the historical type).
            raise UnknownVocabularyError("protocol", name, self._entries) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[ProtocolEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide default registry every decorator writes into.
REGISTRY = ProtocolRegistry()


def register_protocol(
    name: str,
    *,
    table1: Optional[Mapping[str, Any]] = None,
    fork_prone: Optional[Mapping[str, Any]] = None,
    fairness_merit: str = "uniform",
    description: str = "",
    registry: Optional[ProtocolRegistry] = None,
    replace: bool = False,
) -> Callable[[Runner], Runner]:
    """Decorator: register ``run_*`` under ``name`` in the (default) registry.

    The decorated function is returned unchanged, so direct calls keep
    working exactly as before — registration is purely additive.  A name
    collision raises unless ``replace=True`` is passed explicitly, so two
    modules cannot silently shadow each other's systems.
    """

    def decorate(runner: Runner) -> Runner:
        target = registry if registry is not None else REGISTRY
        target.add(
            ProtocolEntry(
                name=name,
                runner=runner,
                table1=dict(table1 or {}),
                fork_prone=dict(fork_prone or {}),
                fairness_merit=fairness_merit,
                description=description or (inspect.getdoc(runner) or "").split("\n")[0],
            ),
            replace=replace,
        )
        return runner

    return decorate


def register_fault_runner(
    protocol: str,
    kind: str,
    *,
    registry: Optional[ProtocolRegistry] = None,
) -> Callable[[Runner], Runner]:
    """Decorator: attach a fault-injecting runner to a registered protocol."""

    def decorate(runner: Runner) -> Runner:
        target = registry if registry is not None else REGISTRY
        target.get(protocol).fault_runners[kind] = runner
        return runner

    return decorate


_BUILTINS_LOADED = False


def load_builtin_protocols() -> ProtocolRegistry:
    """Import every built-in protocol module so its registration runs.

    Idempotent; returns the default registry for convenience.  The import
    list mirrors the paper's Section 5 systems plus the fault-injection
    runners.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.protocols.nakamoto  # noqa: F401
        import repro.protocols.ghost  # noqa: F401
        import repro.protocols.byzcoin  # noqa: F401
        import repro.protocols.algorand  # noqa: F401
        import repro.protocols.peercensus  # noqa: F401
        import repro.protocols.redbelly  # noqa: F401
        import repro.protocols.hyperledger  # noqa: F401
        import repro.protocols.faults  # noqa: F401
        _BUILTINS_LOADED = True
    return REGISTRY


def available_protocols() -> Tuple[str, ...]:
    """Names of every registered protocol (built-ins loaded on demand)."""
    return load_builtin_protocols().names()


def get_protocol(name: str) -> ProtocolEntry:
    """Resolve ``name`` in the default registry (built-ins loaded on demand)."""
    return load_builtin_protocols().get(name)
