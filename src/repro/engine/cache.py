"""Spec-keyed result cache: memoization for the experiment engine.

Every :class:`~repro.engine.spec.ExperimentSpec` fully determines its
simulation (all randomness derives from ``spec.seed``), so an executed
:class:`~repro.engine.result.RunResult` can be reused whenever the same
spec comes around again — across sweeps, benches and CLI invocations.

:class:`ResultCache` is a content-addressed store of JSON files: the key
is the SHA-256 digest of ``spec.to_json()`` (the canonical, sort-keyed
serialization), the value is ``result.to_json()`` verbatim.  Hitting the
cache therefore returns a *byte-identical* artifact — including the
original run's wall-clock ``timings`` — and performs zero simulator
events.  Invalidation is purely structural: change any spec field and the
digest (hence the file) changes; delete the cache directory and
everything re-runs.  Corrupt or unreadable entries are treated as misses.

The cache deliberately stores only the serializable payload: live ``run``
objects never round-trip, exactly as with the multiprocessing sweep path.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.result import RunResult
from repro.engine.spec import ExperimentSpec

__all__ = ["ResultCache", "spec_digest", "DEFAULT_CACHE_DIR"]

#: Directory used by the CLI when ``--cache`` is passed without a path.
DEFAULT_CACHE_DIR = ".repro-cache"


def spec_digest(spec: ExperimentSpec) -> str:
    """Content address of a spec: SHA-256 over its canonical JSON form."""
    return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed, file-per-result cache keyed on spec JSON."""

    def __init__(self, directory: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # -- path handling -------------------------------------------------------

    def path_for(self, spec: ExperimentSpec) -> Path:
        """The file this spec's result lives at (whether or not it exists)."""
        return self.directory / f"{spec_digest(spec)}.json"

    # -- lookup / store ------------------------------------------------------

    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Return the cached result for ``spec``, or ``None`` on a miss.

        A hit is only reported when the stored payload parses *and* embeds
        the very spec that was asked for — a digest collision or a
        hand-edited file therefore degrades to a miss instead of silently
        returning a result for a different experiment.
        """
        path = self.path_for(spec)
        try:
            payload = path.read_text(encoding="utf-8")
            result = RunResult.from_dict(json.loads(payload))
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if result.spec.to_json() != spec.to_json():
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, result: RunResult) -> Path:
        """Store ``result`` under its spec's digest (atomic rename)."""
        path = self.path_for(result.spec)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=str(self.directory)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(result.to_json())
                handle.write("\n")
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- batch helper --------------------------------------------------------

    def partition(
        self, specs: Sequence[ExperimentSpec]
    ) -> Tuple[List[Optional[RunResult]], List[int]]:
        """Split a batch into cached results and the indices still to run.

        Returns ``(slots, missing)`` where ``slots[i]`` is the cached
        result for ``specs[i]`` (or ``None``) and ``missing`` lists the
        indices whose specs must actually execute.
        """
        slots: List[Optional[RunResult]] = []
        missing: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.get(spec)
            slots.append(cached)
            if cached is None:
                missing.append(index)
        return slots, missing

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(dir={str(self.directory)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )
