"""Perf benchmark harness: ``python -m repro bench``.

The repo's north star demands the simulator run "as fast as the hardware
allows", which is only meaningful with a recorded perf trajectory.  This
harness times a fixed set of representative scenarios and emits a
``BENCH_<date>.json`` artifact so every future PR can be compared against
the ones before it:

* ``selection_*_fork_heavy`` — the selection hot path: a deterministic
  fork-heavy append/read trace replayed twice, once through the
  index-backed rules and once through the brute-force ``_reference_*``
  oracles (the pre-index implementations, kept verbatim in
  :mod:`repro.core.selection`).  The reported ``speedup`` is therefore
  measured against the pre-PR baseline *in the same run*, on the same
  machine, on the same trace.
* ``run_*_fork_heavy`` — whole fork-prone protocol runs (longest-chain
  Bitcoin and GHOST Ethereum) through the engine, timed twice on the
  same seed: once through the live plane (array core, batched dispatch
  with the duplicate-flood skip, columnar tree index, recorder fast
  path) and once through the retained pure/scalar oracle plane (heap
  core, scalar fan-out and dispatch, dict tree index, reference
  recording), with the recorded histories asserted byte-identical and
  ``callback_share`` (time inside user callbacks / drain time) measured
  on a separate instrumented leg.
* ``consistency_*`` — the consistency-checking hot path: the SC and EC
  criteria evaluated on deterministic read-heavy histories through the
  index-backed checkers and through the brute-force ``_Reference*``
  oracles (the pre-index implementations, kept verbatim in
  :mod:`repro.core.consistency`), with the reports asserted identical;
  plus the streaming :class:`ConsistencyMonitor` replaying the same
  events, with its verdicts asserted against the post-hoc checkers.
* ``simulation_*`` — the simulation-plane hot path: gossip/relay storms
  driven through the live pipeline (array-native event calendar +
  batched message plane), through the retained heap core under the same
  batched plane (``core_speedup``), and through the full pre-optimization
  reference path (heap core + scalar fan-out), timed in the same run
  with the outcomes asserted identical — counters and final gossip state
  for the flood storm, the recorded histories event-for-event for the
  LRC relay storm.
* ``simulation_gossip_fanout`` / ``simulation_sharded_committee`` — the
  dissemination-topology scenarios: the same declarative runs under
  full-mesh flooding and under restricted topologies (gossip fan-out,
  sharded gateways, committee-only dissemination), recording how event
  and message volume — and the fork rate — scale with the fan-out.
* ``workload_population_scaling`` — population-scale client workloads
  (100/1k/10k clients) generated column-wise and bulk-inserted through
  ``schedule_block``, recording events/s and the generator's share of
  each run's wall clock.
* ``table1_sweep`` — a small Table-1 sweep through :class:`SweepRunner`.
* ``cache_sweep`` — the same sweep cold vs. warm through a
  :class:`~repro.engine.cache.ResultCache` (the warm pass must be all
  hits: zero simulator events).

Scenario sizes are deterministic functions of ``seed`` and the ``quick``
flag (used by the CI bench-smoke job); timings are the only
non-deterministic values in the artifact.

``run_bench(profile=True)`` (CLI: ``python -m repro bench --profile``)
additionally runs every scenario section under :mod:`cProfile` and
attaches a top-25 cumulative-time table per section to the report, so
future perf PRs can locate hot paths without hand-wiring a profiler.
"""

from __future__ import annotations

import cProfile
import io
from contextlib import contextmanager
import json
import os
import platform
import pstats
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.block import GENESIS_ID, Block
from repro.core.blocktree import BlockTree
from repro.core.consistency import (
    BTEventualConsistency,
    BTStrongConsistency,
    _reference_eventual_consistency,
    _reference_strong_consistency,
)
from repro.core.consistency_index import ConsistencyMonitor
from repro.core.selection import (
    GHOSTSelection,
    HeaviestChain,
    LongestChain,
    SelectionFunction,
    _ReferenceGHOSTSelection,
    _ReferenceHeaviestChain,
    _ReferenceLongestChain,
)
from repro.core.errors import UnknownVocabularyError
from repro.engine.cache import ResultCache
from repro.engine.registry import available_protocols
from repro.engine.spec import (
    ChannelSpec,
    ExperimentSpec,
    FaultSpec,
    TopologySpec,
    WorkloadSpec,
    table1_spec,
)
from repro.engine.executors import (
    CellFailure,
    FlakyExecutor,
    PoolExecutor,
    make_executor,
)
from repro.engine.sweep import SweepJournal, SweepRunner

__all__ = [
    "run_bench",
    "write_report",
    "available_scenarios",
    "SECTION_SCENARIOS",
    "BENCH_SCHEMA",
]

BENCH_SCHEMA = "repro.bench/1"

#: Rules exercised by the selection hot-path scenario: name → (indexed, reference).
_SELECTION_RULES: Dict[str, Tuple[Callable[[], SelectionFunction], Callable[[], SelectionFunction]]] = {
    "longest": (LongestChain, _ReferenceLongestChain),
    "heaviest": (HeaviestChain, _ReferenceHeaviestChain),
    "ghost": (GHOSTSelection, _ReferenceGHOSTSelection),
}


# ---------------------------------------------------------------------------
# selection hot path
# ---------------------------------------------------------------------------


def _fork_heavy_trace(
    n_blocks: int, seed: int, fork_probability: float = 0.35, recent_window: int = 25
) -> List[Block]:
    """A deterministic append trace producing a deep tree with many forks.

    Most blocks extend the current deepest tip (chain growth); with
    ``fork_probability`` a block instead forks off one of the recently
    added blocks, yielding the many-leaves/deep-tree shape that makes the
    brute-force selections quadratic.  Weights are drawn from a small set
    so weight ties (the tie-break path) occur constantly.
    """
    rng = random.Random(seed)
    ids: List[str] = [GENESIS_ID]
    heights: Dict[str, int] = {GENESIS_ID: 0}
    tip = GENESIS_ID
    trace: List[Block] = []
    for index in range(n_blocks):
        if rng.random() < fork_probability:
            parent = rng.choice(ids[-recent_window:])
        else:
            parent = tip
        block_id = f"blk{index:05d}_{rng.randrange(16 ** 4):04x}"
        block = Block(
            block_id, parent, weight=rng.choice((1.0, 1.0, 1.0, 2.0)), creator="bench"
        )
        trace.append(block)
        ids.append(block_id)
        heights[block_id] = heights[parent] + 1
        if heights[block_id] >= heights[tip]:
            tip = block_id
    return trace


def _replay_trace(
    trace: List[Block], rule: SelectionFunction, reads_per_append: int
) -> Tuple[float, BlockTree, str]:
    """Replay append+read cycles through ``rule``; return (seconds, tree, tip).

    ``reads_per_append`` models the protocol replicas' behaviour in
    :mod:`repro.protocols.base`: every tree mutation is followed by several
    ``read()``/``current_tip()``/``make_candidate()`` evaluations of the
    selection function before the next block arrives.
    """
    tree = BlockTree()
    started = time.perf_counter()
    tip = GENESIS_ID
    for block in trace:
        tree.append(block)
        for _ in range(reads_per_append):
            tip = rule(tree).tip.block_id
    return time.perf_counter() - started, tree, tip


def _bench_selection(seed: int, quick: bool) -> Dict[str, Any]:
    n_blocks = 150 if quick else 400
    # A replica evaluates f(bt) several times per event (periodic read,
    # candidate tip, mining parent — see repro.protocols.base), so the
    # trace issues a few reads per mutation.
    reads_per_append = 3 if quick else 4
    trace = _fork_heavy_trace(n_blocks, seed)
    scenarios: Dict[str, Any] = {}
    for name, (indexed_factory, reference_factory) in _SELECTION_RULES.items():
        indexed_seconds, tree, indexed_tip = _replay_trace(
            trace, indexed_factory(), reads_per_append
        )
        reference_seconds, _, reference_tip = _replay_trace(
            trace, reference_factory(), reads_per_append
        )
        if indexed_tip != reference_tip:  # pragma: no cover - equivalence bug
            raise AssertionError(
                f"selection rule {name!r}: indexed tip {indexed_tip!r} != "
                f"reference tip {reference_tip!r}"
            )
        scenarios[f"selection_{name}_fork_heavy"] = {
            "indexed_seconds": indexed_seconds,
            "reference_seconds": reference_seconds,
            "speedup": reference_seconds / indexed_seconds if indexed_seconds else None,
            "tree_blocks": len(tree),
            "tree_height": tree.height,
            "tree_leaves": len(tree.leaves()),
            "selection_calls": n_blocks * reads_per_append,
            "final_tip": indexed_tip,
        }
    return scenarios


# ---------------------------------------------------------------------------
# consistency checking hot path
# ---------------------------------------------------------------------------


def _read_heavy_forked_history(levels: int, processes: int, seed: int):
    """A deterministic fork-heavy, read-heavy history whose fork resolves.

    Two branches grow in lockstep for ``levels`` levels; each process
    follows one branch (so per-process scores stay monotone) and reads it
    at every level.  At the end the first branch overtakes and every
    process's final read adopts it: Eventual Consistency holds while
    Strong Prefix visibly fails — the proof-of-work shape, at the read
    density the EC checkers are quadratic in.
    """
    from repro.core.block import Block, Blockchain, GENESIS, GENESIS_ID
    from repro.core.history import HistoryRecorder

    rng = random.Random(seed)
    pids = [f"p{i}" for i in range(processes)]
    followers = {pid: index % 2 for index, pid in enumerate(pids)}
    rec = HistoryRecorder()
    branches: List[List[Block]] = [[], []]
    parents = [GENESIS_ID, GENESIS_ID]
    for level in range(1, levels + 1):
        for branch in (0, 1):
            block = Block(f"br{branch}_{level:04d}", parents[branch], creator=pids[branch])
            branches[branch].append(block)
            parents[branch] = block.block_id
            rec.complete(pids[branch], "append", block, True)
        for pid in rng.sample(pids, k=len(pids)):
            chain = Blockchain((GENESIS, *branches[followers[pid]]))
            rec.complete(pid, "read", None, chain)
    # Branch 0 overtakes; all limit views converge on it.
    extra = Block(f"br0_{levels + 1:04d}", parents[0], creator=pids[0])
    branches[0].append(extra)
    rec.complete(pids[0], "append", extra, True)
    winner = Blockchain((GENESIS, *branches[0]))
    for pid in pids:
        rec.complete(pid, "read", None, winner)
    return rec.history()


def _bench_consistency(seed: int, quick: bool) -> Dict[str, Any]:
    """Index-backed criteria vs. the brute-force oracles, plus the monitor.

    Two deterministic read-heavy histories: a fork-free growing chain
    (Strong Consistency holds — the shape every consensus-system run
    produces) and a fork-heavy history whose branches resolve (Eventual
    Consistency holds — the proof-of-work shape).  The reference reports
    are computed in the same run and asserted identical, so ``speedup``
    is measured against the pre-index baseline on the same machine.
    """
    from repro.workload.scenarios import generate_chain_history

    chain_history = generate_chain_history(
        n_processes=4 if quick else 5,
        chain_length=250 if quick else 450,
        reads_per_process=60 if quick else 120,
        seed=seed,
    )
    forked_history = _read_heavy_forked_history(
        levels=90 if quick else 160,
        processes=4 if quick else 6,
        seed=seed,
    )

    scenarios: Dict[str, Any] = {}
    cases = (
        (
            "consistency_strong_chain_heavy",
            chain_history,
            lambda h: BTStrongConsistency().check(h),
            _reference_strong_consistency,
        ),
        (
            "consistency_eventual_fork_heavy",
            forked_history,
            lambda h: BTEventualConsistency().check(h),
            _reference_eventual_consistency,
        ),
    )
    for name, history, indexed_check, reference_check in cases:
        started = time.perf_counter()
        indexed_report = indexed_check(history)
        indexed_seconds = time.perf_counter() - started
        started = time.perf_counter()
        reference_report = reference_check(history)
        reference_seconds = time.perf_counter() - started
        if indexed_report != reference_report:  # pragma: no cover - equivalence bug
            raise AssertionError(
                f"{name}: indexed report differs from the reference oracle"
            )
        reads = history.read_responses()
        scenarios[name] = {
            "indexed_seconds": indexed_seconds,
            "reference_seconds": reference_seconds,
            "speedup": reference_seconds / indexed_seconds if indexed_seconds else None,
            "reads": len(reads),
            "events": len(history),
            "max_chain_length": max((r.chain.length for r in reads), default=0),
            "holds": indexed_report.holds,
        }

    # Streaming monitor over the fork-heavy event stream.
    monitor = ConsistencyMonitor()
    started = time.perf_counter()
    monitor.replay(forked_history)
    monitor_verdicts = monitor.summary()
    monitor_seconds = time.perf_counter() - started
    post_hoc_strong = BTStrongConsistency().check(forked_history).holds
    post_hoc_eventual = BTEventualConsistency().check(forked_history).holds
    if (monitor_verdicts["strong"], monitor_verdicts["eventual"]) != (
        post_hoc_strong,
        post_hoc_eventual,
    ):  # pragma: no cover - agreement bug
        raise AssertionError("monitor verdicts diverge from the post-hoc checkers")
    scenarios["consistency_monitor_fork_heavy"] = {
        "seconds": monitor_seconds,
        "events": monitor_verdicts["events"],
        "reads": monitor_verdicts["reads"],
        "blocks_indexed": monitor_verdicts["blocks_indexed"],
        "events_per_second": (
            monitor_verdicts["events"] / monitor_seconds if monitor_seconds else None
        ),
        "strong": monitor_verdicts["strong"],
        "eventual": monitor_verdicts["eventual"],
        "agrees_with_post_hoc": True,
    }
    return scenarios


# ---------------------------------------------------------------------------
# simulation-plane hot path
# ---------------------------------------------------------------------------


def _make_gossip_process():
    from repro.network.process import Process

    class GossipProcess(Process):
        """Pure message-plane load: re-flood each rumor once on first receipt.

        The classic epidemic storm — every rumor triggers ``n`` broadcasts
        of ``n - 1`` messages each, so the run is dominated by the fan-out
        path under test rather than by protocol logic.
        """

        def __init__(self, pid: str, rumors) -> None:
            super().__init__(pid)
            self.rumors = rumors
            self.seen = set()

        def on_start(self) -> None:
            for at, rumor in self.rumors:
                self.schedule(at, lambda rumor=rumor: self._originate(rumor))

        def _originate(self, rumor: str) -> None:
            self.seen.add(rumor)
            self.broadcast("rumor", rumor, include_self=False)

        def on_message(self, message) -> None:
            rumor = message.payload
            if rumor not in self.seen:
                self.seen.add(rumor)
                self.broadcast("rumor", rumor, include_self=False)

    return GossipProcess


def _flood_network(
    n: int, rumors_per_process: int, seed: int, batched: bool, core: str = "array"
):
    from repro.network.channels import SynchronousChannel
    from repro.network.simulator import Network, Simulator

    gossip_cls = _make_gossip_process()
    network = Network(
        Simulator(core=core),
        SynchronousChannel(delta=1.0, min_delay=0.1, seed=seed),
        batched=batched,
    )
    for index in range(n):
        pid = f"p{index}"
        rumors = [
            (0.5 + 3.0 * j + 0.1 * index, f"{pid}_r{j}")
            for j in range(rumors_per_process)
        ]
        network.register(gossip_cls(pid, rumors))
    return network


def _run_flood(network) -> Tuple[float, Dict[str, Any]]:
    network.start()
    started = time.perf_counter()
    network.run(max_events=20_000_000)
    seconds = time.perf_counter() - started
    outcome = {
        "events": network.simulator.events_processed,
        "now": network.simulator.now,
        "messages_sent": network.messages_sent,
        "messages_delivered": network.messages_delivered,
        "messages_dropped": network.messages_dropped,
        "seen": {p.pid: tuple(sorted(p.seen)) for p in map(network.process, network.process_ids)},
    }
    return seconds, outcome


def _lrc_network(n: int, blocks_per_publisher: int, publishers: int, seed: int, batched: bool):
    from repro.core.block import GENESIS_ID, Block
    from repro.network.broadcast import BlockAnnouncement, LightReliableCommunication
    from repro.network.channels import LossyChannel, SynchronousChannel
    from repro.network.process import Process
    from repro.network.simulator import Network, Simulator

    class LrcPublisher(Process):
        def __init__(self, pid: str, blocks) -> None:
            super().__init__(pid)
            self.blocks = blocks
            self.transport = None

        def attach(self, network) -> None:
            super().attach(network)
            self.transport = LightReliableCommunication(self)

        def on_start(self) -> None:
            for at, block_id in self.blocks:
                self.schedule(at, lambda block_id=block_id: self._publish(block_id))

        def _publish(self, block_id: str) -> None:
            block = Block(block_id, GENESIS_ID, creator=self.pid)
            self.transport.disseminate(BlockAnnouncement(GENESIS_ID, block))

        def on_message(self, message) -> None:
            self.transport.handle(message)

    channel = LossyChannel(
        SynchronousChannel(delta=1.0, min_delay=0.1, seed=seed),
        drop_probability=0.05,
        seed=seed + 1,
    )
    core = "array" if batched else "heap"  # reference leg = full retained path
    network = Network(Simulator(core=core), channel, batched=batched)
    for index in range(n):
        pid = f"p{index}"
        blocks = (
            [
                (1.0 + 4.0 * j + 0.2 * index, f"{pid}_blk{j}")
                for j in range(blocks_per_publisher)
            ]
            if index < publishers
            else []
        )
        network.register(LrcPublisher(pid, blocks))
    return network


def _run_lrc(network) -> Tuple[float, Dict[str, Any]]:
    network.start()
    started = time.perf_counter()
    network.run(max_events=20_000_000)
    seconds = time.perf_counter() - started
    outcome = {
        "events": network.simulator.events_processed,
        "messages_sent": network.messages_sent,
        "messages_delivered": network.messages_delivered,
        "messages_dropped": network.messages_dropped,
        "history": network.history().events,
    }
    return seconds, outcome


def _best_of(
    repeats: int, build: Callable[[], Any], run: Callable[[Any], Tuple[float, Any]]
) -> Tuple[float, Any]:
    """Fresh-build ``run`` ``repeats`` times; best wall-clock, one outcome.

    The storms take milliseconds at quick sizes, where single-shot
    timings are scheduler noise; the minimum over fresh identically-
    seeded runs is the stable estimator.  Repeats must agree exactly
    (determinism is the whole point of the seeded substrate).
    """
    best_seconds: Optional[float] = None
    outcome: Any = None
    for index in range(repeats):
        seconds, this_outcome = run(build())
        if index == 0:
            outcome = this_outcome
        elif this_outcome != outcome:  # pragma: no cover - determinism bug
            raise AssertionError("identically-seeded simulation runs diverged")
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return float(best_seconds), outcome


def _bench_simulation(seed: int, quick: bool) -> Dict[str, Any]:
    """The full retained pipeline vs. the reference path, same run.

    The flood storm is timed three ways on identically-seeded networks:

    * ``batched_seconds`` — the live pipeline: array-native event
      calendar + batched message plane;
    * ``heap_seconds`` — the retained heap core under the same batched
      plane (``core_speedup`` isolates the calendar's contribution);
    * ``reference_seconds`` — heap core + scalar fan-out, the full
      pre-optimization path kept verbatim as the equivalence oracle
      (``speedup`` is the end-to-end win the floor bench enforces).

    All three must produce identical outcomes — every delay, drop and
    tie-break matches, which is what keeps recorded histories
    bit-identical across both overhauls.
    """
    from repro.network.event_core import COMPILED_MODULES

    scenarios: Dict[str, Any] = {}
    repeats = 2

    # Flood storm: pure fan-out/delivery load, no recorder in the loop.
    # Quick stays big enough (n=30, ~80k events) for the array calendar's
    # per-bucket costs to amortize; below that the storm is all fixed
    # overhead and the speedups are not meaningful.
    n = 30 if quick else 40
    rumors = 3 if quick else 5
    flood_repeats = repeats if quick else 3
    batched_seconds, batched_outcome = _best_of(
        flood_repeats, lambda: _flood_network(n, rumors, seed, True, core="array"), _run_flood
    )
    heap_seconds, heap_outcome = _best_of(
        flood_repeats, lambda: _flood_network(n, rumors, seed, True, core="heap"), _run_flood
    )
    reference_seconds, reference_outcome = _best_of(
        flood_repeats, lambda: _flood_network(n, rumors, seed, False, core="heap"), _run_flood
    )
    if batched_outcome != reference_outcome or batched_outcome != heap_outcome:
        raise AssertionError(  # pragma: no cover - equivalence bug
            "simulation_flood_heavy: array/heap/reference outcomes differ"
        )
    scenarios["simulation_flood_heavy"] = {
        "batched_seconds": batched_seconds,
        "heap_seconds": heap_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / batched_seconds if batched_seconds else None,
        "core_speedup": heap_seconds / batched_seconds if batched_seconds else None,
        "drain_compiled": COMPILED_MODULES["_drain"],
        "compiled_modules": dict(COMPILED_MODULES),
        "events": batched_outcome["events"],
        "events_per_second": (
            batched_outcome["events"] / batched_seconds if batched_seconds else None
        ),
        "processes": n,
        "messages_sent": batched_outcome["messages_sent"],
        "outcomes_identical": True,
    }

    # LRC relay storm over a lossy channel: send/receive events recorded,
    # histories asserted identical event-for-event (drops included).  The
    # reference leg is the full retained path (heap core + scalar
    # fan-out), so the storm needs ~100k events for the array calendar's
    # fixed costs to amortize — the same size serves quick and full.
    n = 44
    blocks = 4
    publishers = max(2, n // 3)
    batched_seconds, batched_outcome = _best_of(
        repeats, lambda: _lrc_network(n, blocks, publishers, seed, True), _run_lrc
    )
    reference_seconds, reference_outcome = _best_of(
        repeats, lambda: _lrc_network(n, blocks, publishers, seed, False), _run_lrc
    )
    if batched_outcome != reference_outcome:  # pragma: no cover - equivalence bug
        raise AssertionError(
            "simulation_lrc_gossip: batched run differs from the scalar reference"
        )
    scenarios["simulation_lrc_gossip"] = {
        "batched_seconds": batched_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / batched_seconds if batched_seconds else None,
        "events": batched_outcome["events"],
        "events_per_second": (
            batched_outcome["events"] / batched_seconds if batched_seconds else None
        ),
        "processes": n,
        "messages_sent": batched_outcome["messages_sent"],
        "messages_dropped": batched_outcome["messages_dropped"],
        "history_events": len(batched_outcome["history"]),
        "histories_identical": True,
    }
    return scenarios


# ---------------------------------------------------------------------------
# dissemination topologies
# ---------------------------------------------------------------------------


def _timed_cell(spec: ExperimentSpec) -> Tuple[float, Any]:
    """Execute one declarative cell under a wall-clock timer."""
    started = time.perf_counter()
    record = spec.execute()
    return time.perf_counter() - started, record


def _topology_leg(seconds: float, record: Any) -> Dict[str, Any]:
    """The per-topology measurements the scenarios compare."""
    return {
        "seconds": seconds,
        "events": record.network["events_processed"],
        "messages_sent": record.network["messages_sent"],
        "mean_blocks": record.forks["mean_blocks"],
        "mean_forks": record.forks["mean_forks"],
        "agreement_ratio": record.convergence["agreement_ratio"],
    }


def _bench_topology(seed: int, quick: bool) -> Dict[str, Any]:
    """Restricted dissemination vs. full flood, through the declarative path.

    Both scenarios run the *same* :class:`ExperimentSpec` cells with only
    the :class:`~repro.engine.spec.TopologySpec` changed, so the recorded
    deltas are pure topology effects:

    * ``simulation_gossip_fanout`` — a fork-prone proof-of-work run under
      full-mesh flooding and under ``GossipFanout(k)`` (with the LRC
      relay carrying the epidemic): message volume drops from ``O(n²)``
      per block towards ``O(n·k)`` while the fork rate rises with the
      extra propagation hops.
    * ``simulation_sharded_committee`` — the same run under a
      ``Sharded`` gateway overlay, plus the Red Belly committee model
      under committee-only dissemination (``include_observers=False``)
      against its default committee topology.
    """
    scenarios: Dict[str, Any] = {}

    # Gossip fan-out vs. full flood on a fork-prone proof-of-work run.
    n = 10 if quick else 14
    duration = 40.0 if quick else 90.0
    fanout = 3
    pow_base = ExperimentSpec(
        protocol="bitcoin",
        replicas=n,
        duration=duration,
        seed=seed,
        channel=ChannelSpec(kind="synchronous", params={"delta": 3.0, "min_delay": 0.5}),
        params={"token_rate": 0.4},
        label="bench:topology-full",
    )
    full_seconds, full_record = _timed_cell(pow_base)
    gossip_seconds, gossip_record = _timed_cell(
        pow_base.with_updates(
            topology=TopologySpec("gossip", params={"fanout": fanout}),
            label=f"bench:topology-gossip-k{fanout}",
        )
    )
    full_leg = _topology_leg(full_seconds, full_record)
    gossip_leg = _topology_leg(gossip_seconds, gossip_record)
    if gossip_leg["messages_sent"] >= full_leg["messages_sent"]:  # pragma: no cover
        raise AssertionError(
            "simulation_gossip_fanout: gossip fan-out did not reduce message volume"
        )
    scenarios["simulation_gossip_fanout"] = {
        "seconds": full_seconds + gossip_seconds,
        "processes": n,
        "fanout": fanout,
        "full": full_leg,
        "gossip": gossip_leg,
        "message_volume_ratio": gossip_leg["messages_sent"] / full_leg["messages_sent"],
        "event_volume_ratio": gossip_leg["events"] / full_leg["events"],
        "fork_rate_delta": gossip_leg["mean_forks"] - full_leg["mean_forks"],
    }

    # Sharded gateway overlay on the same proof-of-work run, and the Red
    # Belly committee closing its dissemination to members only.
    sharded_seconds, sharded_record = _timed_cell(
        pow_base.with_updates(
            topology=TopologySpec("sharded", params={"shards": 3, "cross_links": 1}),
            label="bench:topology-sharded",
        )
    )
    sharded_leg = _topology_leg(sharded_seconds, sharded_record)

    bft_n = 9 if quick else 12
    bft_duration = 60.0 if quick else 120.0
    writers = [f"p{i}" for i in range(max(2, bft_n // 2))]
    bft_base = ExperimentSpec(
        protocol="redbelly",
        replicas=bft_n,
        duration=bft_duration,
        seed=seed,
        label="bench:topology-committee-open",
    )
    open_seconds, open_record = _timed_cell(bft_base)
    closed_seconds, closed_record = _timed_cell(
        bft_base.with_updates(
            topology=TopologySpec(
                "committee", params={"members": writers, "include_observers": False}
            ),
            label="bench:topology-committee-only",
        )
    )
    open_leg = _topology_leg(open_seconds, open_record)
    closed_leg = _topology_leg(closed_seconds, closed_record)
    if sharded_leg["messages_sent"] >= full_leg["messages_sent"]:  # pragma: no cover
        raise AssertionError(
            "simulation_sharded_committee: sharding did not reduce message volume"
        )
    if closed_leg["messages_sent"] >= open_leg["messages_sent"]:  # pragma: no cover
        raise AssertionError(
            "simulation_sharded_committee: committee-only dissemination did not "
            "reduce message volume"
        )
    scenarios["simulation_sharded_committee"] = {
        # full_seconds is already attributed to simulation_gossip_fanout;
        # summing per-scenario seconds across a report must not count the
        # shared full-mesh leg twice.
        "seconds": sharded_seconds + open_seconds + closed_seconds,
        "processes": n,
        "committee_processes": bft_n,
        "committee_members": len(writers),
        "full": full_leg,
        "sharded": sharded_leg,
        "committee_open": open_leg,
        "committee_only": closed_leg,
        "sharded_message_ratio": sharded_leg["messages_sent"] / full_leg["messages_sent"],
        "sharded_event_ratio": sharded_leg["events"] / full_leg["events"],
        "committee_message_ratio": (
            closed_leg["messages_sent"] / open_leg["messages_sent"]
        ),
        "sharded_fork_rate_delta": sharded_leg["mean_forks"] - full_leg["mean_forks"],
    }
    return scenarios


# ---------------------------------------------------------------------------
# protocol runs and sweeps
# ---------------------------------------------------------------------------


def _fork_heavy_spec(protocol: str, seed: int, quick: bool) -> ExperimentSpec:
    """Fork-prone dissemination-heavy protocol run.

    Sized so the callback plane is what is being measured: a large
    population with LRC relays makes duplicate block floods the dominant
    traffic (every block reaches every node roughly once per relaying
    neighbour), the high token rate keeps the runs fork-heavy, and the
    tight delay window clusters deliveries into the same calendar
    buckets, which is where batch dispatch gets its spans.
    """
    params: Dict[str, Any] = {"token_rate": 0.8}
    if protocol == "bitcoin":
        params["selection"] = "longest"
    return ExperimentSpec(
        protocol=protocol,
        replicas=40 if quick else 48,
        duration=60.0 if quick else 100.0,
        seed=seed,
        channel=ChannelSpec(kind="synchronous", params={"delta": 1.5, "min_delay": 0.5}),
        params=params,
        label=f"bench:{protocol}-fork-heavy",
    )


@contextmanager
def _reference_callback_plane():
    """Route tree indexing and history recording through the retained
    pure-Python reference implementations (the pre-optimization plane the
    callback floor measures against); combined with ``core="heap"`` and
    ``batched=False`` run params this is the full retained scalar path.
    """
    import repro.core.blocktree as blocktree_module
    from repro.core.history import reference_recording

    previous = blocktree_module.DEFAULT_INDEX
    blocktree_module.DEFAULT_INDEX = "reference"
    try:
        with reference_recording():
            yield
    finally:
        blocktree_module.DEFAULT_INDEX = previous


def _protocol_leg(repeats: int, execute: Callable[[], Any]) -> Tuple[float, Any]:
    """Best run-phase wall-clock over ``repeats`` identically-seeded runs.

    Times ``run_seconds`` (the simulation itself) rather than the whole
    cell: the post-run analysis is identical work on identical histories
    in every leg and would only dilute the plane-vs-plane comparison.
    Repeats must agree on the recorded history, event for event.
    """
    best_seconds: Optional[float] = None
    kept: Any = None
    for index in range(repeats):
        record = execute()
        seconds = record.timings["run_seconds"]
        if index == 0:
            kept = record
        elif record.run.history.events != kept.run.history.events:
            raise AssertionError(  # pragma: no cover - determinism bug
                "identically-seeded protocol runs diverged"
            )
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return float(best_seconds), kept


def _bench_protocol_runs(seed: int, quick: bool) -> Dict[str, Any]:
    """Live callback plane vs. the retained pure/scalar oracle, same seed.

    Three legs per protocol: the live plane (array core + batch dispatch
    + columnar index + recorder fast path), the oracle plane (heap core,
    scalar fan-out/dispatch, dict index, reference recording) with the
    recorded histories asserted byte-identical, and one instrumented
    live run measuring ``callback_share`` (fraction of the drain spent
    inside user callbacks — the instrumentation inflates the timing, so
    this leg is never the one compared).
    """
    from repro.network.event_core import COMPILED_MODULES
    from repro.network.simulator import timed_callbacks

    scenarios: Dict[str, Any] = {}
    # Whole-protocol runs are hundreds of milliseconds, where single-shot
    # timings are scheduler noise; quick (CI) sizes take extra repeats so
    # the best-of estimate is stable enough for the floor bench.
    repeats = 5 if quick else 3
    for name, protocol in (("run_longest_fork_heavy", "bitcoin"), ("run_ghost_fork_heavy", "ethereum")):
        spec = _fork_heavy_spec(protocol, seed, quick)
        oracle_spec = spec.with_updates(
            params={**spec.params, "core": "heap", "batched": False}
        )
        live_seconds, live_record = _protocol_leg(repeats, spec.execute)

        def _oracle_execute(oracle_spec: ExperimentSpec = oracle_spec) -> Any:
            with _reference_callback_plane():
                return oracle_spec.execute()

        oracle_seconds, oracle_record = _protocol_leg(repeats, _oracle_execute)
        if live_record.run.history.events != oracle_record.run.history.events:
            raise AssertionError(  # pragma: no cover - equivalence bug
                f"{name}: live plane history differs from the reference plane"
            )
        with timed_callbacks():
            profiled = spec.execute()
        drain_seconds = profiled.network["drain_seconds"]
        callback_seconds = profiled.network["callback_seconds"]
        scenarios[name] = {
            "seconds": live_seconds,
            "reference_seconds": oracle_seconds,
            "speedup": oracle_seconds / live_seconds if live_seconds else None,
            "callback_share": (
                callback_seconds / drain_seconds if drain_seconds else None
            ),
            "events_processed": live_record.network["events_processed"],
            "mean_blocks": live_record.forks["mean_blocks"],
            "mean_forks": live_record.forks["mean_forks"],
            "events_per_second": (
                live_record.network["events_processed"] / live_seconds
                if live_seconds
                else None
            ),
            "processes": spec.replicas,
            "histories_identical": True,
            "compiled_modules": dict(COMPILED_MODULES),
        }
    return scenarios


def _table1_specs(seed: int, quick: bool) -> List[ExperimentSpec]:
    protocols = sorted(available_protocols())
    if quick:
        protocols = [p for p in protocols if p in ("bitcoin", "ethereum", "hyperledger")]
    n = 3 if quick else 5
    duration = 30.0 if quick else 60.0
    return [table1_spec(name, n=n, duration=duration, seed=seed) for name in protocols]


def _bench_table1_sweep(seed: int, quick: bool, jobs: int) -> Dict[str, Any]:
    specs = _table1_specs(seed, quick)
    runner = SweepRunner(jobs=jobs)
    started = time.perf_counter()
    records = runner.run(specs)
    seconds = time.perf_counter() - started
    return {
        "table1_sweep": {
            "seconds": seconds,
            "cells": len(records),
            "jobs": jobs,
            "labels": [record.label for record in records],
        }
    }


def _bench_cache_sweep(seed: int, quick: bool) -> Dict[str, Any]:
    specs = _table1_specs(seed, quick)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        started = time.perf_counter()
        cold = cold_runner.run(specs)
        cold_seconds = time.perf_counter() - started

        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        started = time.perf_counter()
        warm = warm_runner.run(specs)
        warm_seconds = time.perf_counter() - started
    if [r.to_json() for r in cold] != [r.to_json() for r in warm]:  # pragma: no cover
        raise AssertionError("cache round-trip is not byte-identical")
    return {
        "cache_sweep": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cells": len(specs),
            "cold_hits": cold_runner.last_cache_hits,
            "warm_hits": warm_runner.last_cache_hits,
            "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        }
    }


# ---------------------------------------------------------------------------
# resilient execution plane
# ---------------------------------------------------------------------------


def _sweep_grid_specs(seed: int, cells: int, duration: float) -> List[ExperimentSpec]:
    """A small deterministic seed-axis grid for the execution-plane benches."""
    return [
        ExperimentSpec(
            protocol="hyperledger",
            replicas=3,
            duration=duration,
            seed=seed + index,
            label=f"bench:sweep-cell-{index}",
        )
        for index in range(cells)
    ]


def _stable_cells(records: Sequence[Any]) -> List[str]:
    """Per-cell deterministic JSON (timings stripped) for identity checks."""
    return [record.stable_json() for record in records]


def _bench_sweep_resilience(seed: int, quick: bool) -> Dict[str, Any]:
    """Chaos sweep through the flaky executor: retries, degradation, resume.

    A seed-axis grid runs over the process-pool backend wrapped in the
    ``flaky`` chaos executor with a scripted plan: three cells take one
    injected fault each (``exception`` / ``hang`` / ``kill``) and recover
    on retry, one cell fails *every* attempt and must degrade to a
    structured :class:`CellFailure`.  The scenario then resumes the sweep
    from its journal and requires zero re-executions.  The floor bench
    asserts the recorded invariants: no unfinished cells, recovered cells
    bit-identical to a never-failed serial run, exactly one failure, and
    a zero-cost resume.
    """
    cells = 6 if quick else 8
    duration = 20.0 if quick else 40.0
    timeout = 3.0 if quick else 5.0
    retries = 2
    specs = _sweep_grid_specs(seed, cells, duration)
    plan = {
        0: {1: "exception"},
        1: {1: "hang"},
        2: {1: "kill"},
        # Cell 3 fails every allowed attempt (1..retries+1) and must land
        # in the payload as a structured CellFailure artifact.
        3: {attempt: "exception" for attempt in range(1, retries + 2)},
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        journal = Path(tmp) / "sweep.journal.jsonl"
        flaky = FlakyExecutor(PoolExecutor(jobs=2), plan=plan, seed=seed)
        runner = SweepRunner(
            jobs=2,
            cache=cache,
            executor=flaky,
            retries=retries,
            timeout=timeout,
            backoff=0.0,
            max_failures=None,
            journal=journal,
        )
        started = time.perf_counter()
        records = runner.run(specs)
        seconds = time.perf_counter() - started

        resumed_runner = SweepRunner(
            cache=cache, journal=journal, resume=True, max_failures=None
        )
        started = time.perf_counter()
        resumed = resumed_runner.run(specs)
        resume_seconds = time.perf_counter() - started

    failures = [r for r in records if isinstance(r, CellFailure)]
    successes = [r for r in records if not isinstance(r, CellFailure)]
    clean = SweepRunner(jobs=1).run(specs)
    clean_ok = [r for i, r in enumerate(clean) if i != 3]
    injected_kinds = sorted({kind for _, _, kind in flaky.injections})
    return {
        "sweep_resilience": {
            "seconds": seconds,
            "cells": cells,
            "retries": retries,
            "timeout": timeout,
            "attempts": runner.last_attempts,
            "injections": len(flaky.injections),
            "injected_kinds": injected_kinds,
            "unfinished": cells - len(records),
            "failures": len(failures),
            "failure_errors": sorted(f.error.get("status") or "" for f in failures),
            "retried_identical": _stable_cells(successes) == _stable_cells(clean_ok),
            "resume_seconds": resume_seconds,
            "resume_executed": resumed_runner.last_executed,
            "resume_restored": resumed_runner.last_resumed,
            "resume_identical": _stable_cells(
                [r for r in resumed if not isinstance(r, CellFailure)]
            )
            == _stable_cells(successes),
        }
    }


def _bench_sweep_shard_scaling(seed: int, quick: bool) -> Dict[str, Any]:
    """Execution-plane scaling: pool workers at 1/2/4/8 and a k=4 shard merge.

    The worker legs time the same grid over the per-cell process backend
    at 1, 2, 4 and 8 workers, recording speedup and scaling efficiency
    (``serial / (workers × t)``) against the in-process serial leg.  The
    shard leg runs the grid as four ``--shard-index i/4`` invocations
    sharing one result cache, requires the union of the shard outputs to
    be bit-identical (up to timings) to the serial run, and merges them
    through a final cache-only invocation that must execute nothing.
    """
    cells = 8 if quick else 12
    duration = 20.0 if quick else 40.0
    specs = _sweep_grid_specs(seed, cells, duration)

    started = time.perf_counter()
    serial_records = SweepRunner(jobs=1).run(specs)
    serial_seconds = time.perf_counter() - started
    serial_stable = _stable_cells(serial_records)

    workers: Dict[str, Any] = {}
    for jobs in (1, 2, 4, 8):
        runner = SweepRunner(jobs=jobs, executor=PoolExecutor(jobs=jobs))
        started = time.perf_counter()
        records = runner.run(specs)
        seconds = time.perf_counter() - started
        workers[str(jobs)] = {
            "workers": jobs,
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds if seconds else None,
            "efficiency": (
                serial_seconds / (jobs * seconds) if seconds else None
            ),
            "identical": _stable_cells(records) == serial_stable,
        }

    shard_count = 4
    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as tmp:
        cache_dir = Path(tmp) / "cache"
        union: Dict[int, Any] = {}
        shard_seconds: List[float] = []
        for index in range(shard_count):
            executor = make_executor(
                "shard", shard_index=index, shard_count=shard_count
            )
            runner = SweepRunner(cache=ResultCache(cache_dir), executor=executor)
            started = time.perf_counter()
            records = runner.run(specs)
            shard_seconds.append(time.perf_counter() - started)
            for grid_index, record in zip(runner.last_indices, records):
                union[grid_index] = record
        merge_runner = SweepRunner(cache=ResultCache(cache_dir))
        started = time.perf_counter()
        merge_runner.run(specs)
        merge_seconds = time.perf_counter() - started
    union_stable = _stable_cells([union[i] for i in sorted(union)])
    return {
        "sweep_shard_scaling": {
            "seconds": serial_seconds + sum(w["seconds"] for w in workers.values()),
            "cells": cells,
            "serial_seconds": serial_seconds,
            "workers": workers,
            "shard_count": shard_count,
            "shard_seconds": shard_seconds,
            "shard_union_identical": union_stable == serial_stable,
            "merge_seconds": merge_seconds,
            "merge_cache_hits": merge_runner.last_cache_hits,
            "merge_executed": merge_runner.last_executed,
        }
    }


def _bench_sweeps(seed: int, quick: bool) -> Dict[str, Any]:
    scenarios: Dict[str, Any] = {}
    scenarios.update(_bench_sweep_resilience(seed, quick))
    scenarios.update(_bench_sweep_shard_scaling(seed, quick))
    return scenarios


# ---------------------------------------------------------------------------
# harness entry points
# ---------------------------------------------------------------------------


def _profile_section(section: Callable[[], Dict[str, Any]]) -> Tuple[Dict[str, Any], str]:
    """Run a scenario section under cProfile; return (result, top-25 table)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = section()
    finally:
        profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(25)
    return result, stream.getvalue()


#: Section name → the scenario names it produces.  Filtering is at
#: section granularity: requesting any scenario runs its whole section
#: (sections share setup, and in-section baselines are timed together).
# ---------------------------------------------------------------------------
# population workloads
# ---------------------------------------------------------------------------


def _bench_workload(seed: int, quick: bool) -> Dict[str, Any]:
    """Population scaling: generator share of runtime at n = 100/1k/10k.

    Each cell is a declarative ``ExperimentSpec`` run of the Bitcoin
    model with a :class:`~repro.workload.population.ClientPopulation`
    attached — the whole population's operation streams drawn
    column-wise and bulk-inserted through ``schedule_block``.  The
    recorded ``generation_share`` is the vectorized generator's fraction
    of the run's wall clock; the floor bench requires it to stay a small
    minority (< 15%) even at 10k clients.
    """
    sizes = (100, 1000) if quick else (100, 1000, 10_000)
    duration = 30.0 if quick else 60.0
    per_size: Dict[str, Any] = {}
    total_seconds = 0.0
    for clients in sizes:
        spec = ExperimentSpec(
            protocol="bitcoin",
            replicas=8,
            duration=duration,
            seed=seed,
            workload=WorkloadSpec(clients=clients, client_rate=0.5),
            params={"token_rate": 0.4},
            label=f"population:{clients}",
        )
        _, record = _timed_cell(spec)
        run_seconds = record.timings["run_seconds"]
        generation = record.timings["workload_generation_seconds"]
        events = record.network["events_processed"]
        per_size[str(clients)] = {
            "clients": clients,
            "total_ops": record.network["client_ops"],
            "seconds": run_seconds,
            "generation_seconds": generation,
            "generation_share": generation / run_seconds if run_seconds else None,
            "events": events,
            "events_per_second": events / run_seconds if run_seconds else None,
        }
        total_seconds += run_seconds
    return {
        "workload_population_scaling": {
            "seconds": total_seconds,
            "sizes": per_size,
            "max_clients": max(sizes),
            "max_generation_share": max(
                cell["generation_share"] for cell in per_size.values()
            ),
        }
    }


def _bench_resilience(seed: int, quick: bool) -> Dict[str, Any]:
    """Adversarial runs through the fault registry: split-brain and churn.

    * ``adversarial_partition_heal`` — a fork-prone proof-of-work run
      split into two groups mid-run and healed later; the
      :class:`~repro.core.degradation.DegradationMonitor` must observe
      genuine divergence during the partition and a finite time-to-heal
      with divergence depth back at 0 afterwards (the resilience floor).
    * ``churn_storm`` — two replicas leave and later rejoin
      (deregistered from the network, in-flight deliveries quarantined,
      state re-synced on rejoin); the run must end with the correct
      replicas eventually consistent.
    """
    scenarios: Dict[str, Any] = {}

    n = 6
    duration = 80.0 if quick else 150.0
    base = ExperimentSpec(
        protocol="bitcoin",
        replicas=n,
        duration=duration,
        seed=seed,
        channel=ChannelSpec(kind="synchronous", params={"delta": 1.0, "min_delay": 0.25}),
        params={"token_rate": 0.4},
        monitor=True,
    )

    groups = [[f"p{i}" for i in range(n // 2)], [f"p{i}" for i in range(n // 2, n)]]
    heal_at = 40.0 if quick else 80.0
    partition_seconds, partition_record = _timed_cell(
        base.with_updates(
            label="bench:adversarial-partition-heal",
            fault=FaultSpec(
                kind="partition",
                params={"groups": groups, "at": 15.0, "heal_at": heal_at},
            ),
        )
    )
    degradation = partition_record.degradation
    if degradation["time_to_heal"] is None:  # pragma: no cover
        raise AssertionError("adversarial_partition_heal: partition never healed")
    if degradation["final_divergence_depth"] != 0:  # pragma: no cover
        raise AssertionError(
            "adversarial_partition_heal: divergence persisted after the heal"
        )
    scenarios["adversarial_partition_heal"] = {
        "seconds": partition_seconds,
        "processes": n,
        "heal_at": heal_at,
        "time_to_heal": degradation["time_to_heal"],
        "max_divergence_depth": degradation["max_divergence_depth"],
        "final_divergence_depth": degradation["final_divergence_depth"],
        "degradation": degradation,
        "events": partition_record.network["events_processed"],
        "messages_dropped": partition_record.network["messages_dropped"],
    }

    leave = {"p4": 20.0, "p5": 30.0}
    join = {"p4": 0.6 * duration, "p5": 0.5 * duration}
    churn_seconds, churn_record = _timed_cell(
        base.with_updates(
            label="bench:churn-storm",
            fault=FaultSpec(kind="churn", params={"leave": leave, "join": join}),
        )
    )
    eventual = churn_record.consistency["eventual"]
    if not eventual:  # pragma: no cover
        raise AssertionError("churn_storm: correct replicas did not converge")
    scenarios["churn_storm"] = {
        "seconds": churn_seconds,
        "processes": n,
        "leavers": len(leave),
        "eventual_consistency": eventual,
        "degradation": churn_record.degradation,
        "messages_quarantined": churn_record.network.get("messages_quarantined", 0),
        "events": churn_record.network["events_processed"],
    }
    return scenarios


class _SimulatedCrash(RuntimeError):
    """Raised by the recovery scenario's sink to model a mid-run kill."""


class _KillAfterEvent:
    """Checkpoint sink that crashes the run once it passes ``threshold``.

    Every boundary first persists a snapshot through ``writer`` (exactly
    what a production sink does), then — once the run is past the
    threshold — raises :class:`_SimulatedCrash`, so the scenario dies the
    way a ``kill -9`` would: after a durable checkpoint, mid-run.
    """

    def __init__(self, writer: Any, threshold: int) -> None:
        self.writer = writer
        self.threshold = threshold

    def __call__(self, live: Any) -> None:
        self.writer(live)
        if live.event_count >= self.threshold:
            raise _SimulatedCrash(f"simulated crash at event {live.event_count}")


def _export_checkpoint_artifact(path: Path, name: str) -> None:
    """Copy a checkpoint payload into ``$REPRO_CHECKPOINT_ARTIFACT_DIR``.

    CI sets the variable and uploads the directory when the checkpoint
    floor fails, so a broken snapshot can be inspected offline.  Unset
    (every local run), this is a no-op.
    """
    target_dir = os.environ.get("REPRO_CHECKPOINT_ARTIFACT_DIR")
    if not target_dir or not path.exists():
        return
    Path(target_dir).mkdir(parents=True, exist_ok=True)
    shutil.copy2(path, Path(target_dir) / name)


def _bench_checkpoint(seed: int, quick: bool) -> Dict[str, Any]:
    """Checkpointing cost and crash recovery on population-scale runs.

    * ``checkpoint_overhead`` — the same population-workload cell run
      clean and with an ambient ``checkpoint_every=5000`` sink writing
      crash-safe snapshots to disk; the recorded per-size ``overhead``
      is the relative slowdown and the floor bench caps its maximum at
      10%.  Both legs must classify identically (``stable_dict()``).

      Durable writes are wall-clock amortized, mirroring the long-soak
      usage: the writer's ``min_write_interval`` is set to 0.8x the
      measured clean run time (recorded per size), so the bench states
      the amortized steady-state cost — one crash-safe snapshot per
      interval — rather than the cost of persisting every boundary,
      which no long run would configure.  The floored ``overhead`` is
      measured directly as the writer's cumulative in-sink seconds over
      the rest of its own run — exact within a single run — because an
      A/B wall-clock comparison of separate clean and checkpointed runs
      drifts by the same order as the floor itself on a shared machine
      (the A/B figure is still recorded as ``ab_overhead``).
    * ``checkpoint_recovery`` — the same cell killed (simulated) at
      ~50% of its event budget right after a durable snapshot, then
      resumed from the on-disk checkpoint; the stitched-together result
      must be ``stable_dict()``-identical to the uninterrupted run.
    """
    from repro.engine.checkpoint import (
        CheckpointWriter,
        checkpoint_context,
        load_checkpoint,
        resume_spec_from_checkpoint,
    )

    every = 5000
    reps = 3
    # (clients, per-client rate, virtual duration): long, low-rate runs
    # are the representative checkpointing shape — the pending-workload
    # backlog (what a snapshot must serialize) stays bounded while the
    # run is long enough for interval amortization to be visible.
    overhead_configs = ((1000, 0.2, 2400.0),)
    if not quick:
        overhead_configs += ((10_000, 0.03, 1800.0),)
    recovery_duration = 30.0 if quick else 60.0

    def population_spec(
        clients: int,
        rate: float,
        duration: float,
        replicas: int = 4,
        **params: Any,
    ) -> ExperimentSpec:
        return ExperimentSpec(
            protocol="bitcoin",
            replicas=replicas,
            duration=duration,
            seed=seed,
            workload=WorkloadSpec(clients=clients, client_rate=rate),
            params=params,
            label=f"checkpoint:{clients}",
        )

    per_size: Dict[str, Any] = {}
    overhead_seconds = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        for clients, rate, duration in overhead_configs:
            spec = population_spec(clients, rate, duration)
            spec.execute()  # warm imports, allocator and population caches
            pilot_seconds, clean_record = _timed_cell(spec)
            interval = round(0.8 * pilot_seconds, 3)
            clean_legs = [pilot_seconds]
            checkpointed_legs = []
            sink_overheads = []
            writes = []
            identical = True
            path = Path(tmp) / f"overhead-{clients}.ckpt"
            for _ in range(reps):
                writer = CheckpointWriter(
                    str(path),
                    spec=json.loads(spec.to_json()),
                    min_write_interval=interval,
                )
                started = time.perf_counter()
                with checkpoint_context(every, writer):
                    checkpointed_record = spec.execute()
                leg = time.perf_counter() - started
                checkpointed_legs.append(leg)
                sink_overheads.append(
                    writer.write_seconds / (leg - writer.write_seconds)
                )
                writes.append(writer.writes)
                identical = identical and (
                    checkpointed_record.stable_dict() == clean_record.stable_dict()
                )
                seconds, _ = _timed_cell(spec)
                clean_legs.append(seconds)
            _export_checkpoint_artifact(path, f"checkpoint-overhead-{clients}.ckpt")
            clean_median = statistics.median(clean_legs)
            checkpointed_median = statistics.median(checkpointed_legs)
            per_size[str(clients)] = {
                "clients": clients,
                "clean_seconds": clean_median,
                "checkpointed_seconds": checkpointed_median,
                "overhead": statistics.median(sink_overheads),
                "ab_overhead": (
                    checkpointed_median / clean_median - 1.0
                    if clean_median
                    else None
                ),
                "min_write_interval": interval,
                "checkpoints_written": writes,
                "events": clean_record.network["events_processed"],
                "identical": identical,
            }
            overhead_seconds += sum(clean_legs) + sum(checkpointed_legs)

        # --- recovery: kill at ~50% of the event budget, resume from disk.
        spec = population_spec(
            1000, 0.5, recovery_duration, replicas=8, token_rate=0.4
        )
        clean_seconds, clean_record = _timed_cell(spec)
        total_events = clean_record.network["events_processed"]
        threshold = total_events // 2
        path = Path(tmp) / "recovery.ckpt"
        writer = CheckpointWriter(str(path), spec=json.loads(spec.to_json()))
        recovery_every = max(1, min(2000, threshold // 4))
        started = time.perf_counter()
        try:
            with checkpoint_context(
                recovery_every, _KillAfterEvent(writer, threshold)
            ):
                spec.execute()
        except _SimulatedCrash:
            pass
        else:  # pragma: no cover
            raise AssertionError("checkpoint_recovery: the simulated kill never fired")
        killed_seconds = time.perf_counter() - started
        _export_checkpoint_artifact(path, "checkpoint-recovery.ckpt")
        snapshot = load_checkpoint(str(path))
        started = time.perf_counter()
        resumed_record = resume_spec_from_checkpoint(spec, snapshot)
        resume_seconds = time.perf_counter() - started
    identical = resumed_record.stable_dict() == clean_record.stable_dict()
    if not identical:  # pragma: no cover
        raise AssertionError(
            "checkpoint_recovery: resumed run diverged from the clean run"
        )
    return {
        "checkpoint_overhead": {
            "seconds": overhead_seconds,
            "checkpoint_every": every,
            "sizes": per_size,
            "max_overhead": max(
                cell["overhead"] for cell in per_size.values()
            ),
            "all_identical": all(cell["identical"] for cell in per_size.values()),
        },
        "checkpoint_recovery": {
            "seconds": clean_seconds + killed_seconds + resume_seconds,
            "checkpoint_every": recovery_every,
            "total_events": total_events,
            "killed_after_event": snapshot.event_count,
            "kill_fraction": (
                snapshot.event_count / total_events if total_events else None
            ),
            "clean_seconds": clean_seconds,
            "killed_seconds": killed_seconds,
            "resume_seconds": resume_seconds,
            "identical_after_resume": identical,
        },
    }


SECTION_SCENARIOS: Dict[str, Tuple[str, ...]] = {
    "selection": tuple(f"selection_{name}_fork_heavy" for name in _SELECTION_RULES),
    "consistency": (
        "consistency_strong_chain_heavy",
        "consistency_eventual_fork_heavy",
        "consistency_monitor_fork_heavy",
    ),
    "simulation": ("simulation_flood_heavy", "simulation_lrc_gossip"),
    "topology": ("simulation_gossip_fanout", "simulation_sharded_committee"),
    "workload": ("workload_population_scaling",),
    "resilience": ("adversarial_partition_heal", "churn_storm"),
    "protocol_runs": ("run_longest_fork_heavy", "run_ghost_fork_heavy"),
    "table1_sweep": ("table1_sweep",),
    "cache_sweep": ("cache_sweep",),
    "sweeps": ("sweep_resilience", "sweep_shard_scaling"),
    "checkpoint": ("checkpoint_overhead", "checkpoint_recovery"),
}


def available_scenarios() -> Tuple[str, ...]:
    """Every name ``run_bench(scenarios=...)`` accepts (sections + scenarios)."""
    names: List[str] = []
    for section, produced in SECTION_SCENARIOS.items():
        names.append(section)
        names.extend(produced)
    return tuple(names)


def _select_sections(requested: Optional[Sequence[str]]) -> Optional[set]:
    """Resolve a scenario/section-name filter to the set of sections to run.

    ``None`` (no filter) runs everything.  Unknown names raise the
    uniform vocabulary error listing everything that can be requested.
    """
    if requested is None:
        return None
    known = set(available_scenarios())
    for name in requested:
        if name not in known:
            raise UnknownVocabularyError("bench scenario", name, known)
    wanted = set(requested)
    return {
        section
        for section, produced in SECTION_SCENARIOS.items()
        if section in wanted or wanted.intersection(produced)
    }


def run_bench(
    *,
    seed: int = 7,
    quick: bool = False,
    jobs: int = 1,
    profile: bool = False,
    scenarios: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run every scenario and return the report document (JSON-ready).

    With ``profile=True`` each scenario section additionally runs under
    :mod:`cProfile` and the report gains a ``profiles`` mapping of section
    name → top-25 cumulative-time table (one table per scenario group,
    labelled with the scenario names it produced).

    ``scenarios`` filters the run to the named scenarios or sections (CLI:
    ``python -m repro bench --scenario NAME [NAME ...]``); a filtered
    report records the filter under ``"scenario_filter"`` so partial
    artifacts are never mistaken for full trajectory points.
    """
    selected = _select_sections(scenarios)
    sections: List[Tuple[str, Callable[[], Dict[str, Any]]]] = [
        ("selection", lambda: _bench_selection(seed, quick)),
        ("consistency", lambda: _bench_consistency(seed, quick)),
        ("simulation", lambda: _bench_simulation(seed, quick)),
        ("topology", lambda: _bench_topology(seed, quick)),
        ("workload", lambda: _bench_workload(seed, quick)),
        ("resilience", lambda: _bench_resilience(seed, quick)),
        ("protocol_runs", lambda: _bench_protocol_runs(seed, quick)),
        ("table1_sweep", lambda: _bench_table1_sweep(seed, quick, jobs)),
        ("cache_sweep", lambda: _bench_cache_sweep(seed, quick)),
        ("sweeps", lambda: _bench_sweeps(seed, quick)),
        ("checkpoint", lambda: _bench_checkpoint(seed, quick)),
    ]
    results: Dict[str, Any] = {}
    profiles: Dict[str, Any] = {}
    for name, section in sections:
        if selected is not None and name not in selected:
            continue
        if profile:
            result, table = _profile_section(section)
            profiles[name] = {"scenarios": sorted(result), "top25_cumulative": table}
        else:
            result = section()
        results.update(result)
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "date": time.strftime("%Y-%m-%d"),
        "seed": seed,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scenarios": results,
    }
    if scenarios is not None:
        report["scenario_filter"] = sorted(set(scenarios))
    if profile:
        report["profiles"] = profiles
    return report


def write_report(report: Dict[str, Any], out_dir: Union[str, Path] = ".") -> Path:
    """Write ``BENCH_<date>.json`` under ``out_dir`` and return the path.

    Scenario-filtered reports land in ``BENCH_<date>.partial.json`` so a
    partial run can never clobber the same-day full trajectory point.
    """
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".partial.json" if "scenario_filter" in report else ".json"
    path = directory / f"BENCH_{report['date']}{suffix}"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path
