"""Pluggable, resilient sweep execution backends.

Until this module existed the :class:`~repro.engine.sweep.SweepRunner`
fanned a sweep out over one ``multiprocessing.Pool.map`` call: a single
worker exception or hang aborted the entire sweep and every
computed-but-unreturned cell was lost.  The execution plane the
"millions of users" north star needs is the opposite shape — per-cell
submission, per-cell failure domains, and deterministic sharding across
driver invocations (the Bobpp deterministic-partitioning model: results
reproducible regardless of worker count, fault tolerance layered on
top).

Executors are *registered vocabulary* (``@register_executor``, mirroring
``@register_topology`` / ``@register_fault``; unknown names raise the
uniform :class:`~repro.core.errors.UnknownVocabularyError`):

* ``serial`` — in-process execution, one cell at a time.  Results keep
  their live ``run`` objects, exactly like the historical ``jobs=1``
  path.  A serial backend cannot preempt a genuinely hung cell, so
  injected ``hang``/``kill`` faults are reported *synthetically* (as
  timeout / worker-death outcomes, without sleeping or dying) — which is
  precisely what makes every retry path unit-testable in milliseconds.
* ``pool`` — one OS process per cell, at most ``jobs`` in flight.
  Failures are per-cell: a worker exception becomes an error outcome for
  that cell alone, a worker that dies (killed, OOM, ``os._exit``)
  becomes a worker-death outcome, and a worker that exceeds the per-cell
  ``timeout`` is terminated and reported as a timeout outcome.  When the
  platform cannot spawn processes at all (no ``/dev/shm``, no ``fork``)
  the batch degrades to the serial backend with a ``RuntimeWarning`` —
  loudly, unlike the historical silent fallback.
* ``shard`` — deterministic partition of the ``expand_grid`` order
  across ``--shard-index i/k`` driver invocations (cell ``c`` belongs to
  shard ``c % k``), each shard executing through an inner backend.
  Because every cell is seeded entirely by its spec, the union of the
  ``k`` shard outputs is byte-identical (up to wall-clock ``timings``)
  to one serial run of the same grid; shards share a content-addressed
  :class:`~repro.engine.cache.ResultCache` directory, so a final cached
  invocation merges the sweep with zero simulator events.
* ``flaky`` — the chaos wrapper: decorates any backend with injected
  faults (``exception`` / ``hang`` / ``kill``) on chosen cell attempts,
  either from an explicit plan or from seeded per-``(digest, attempt)``
  rates.  Injection happens *inside* the worker for process-based
  backends, so a hang genuinely exercises the timeout-kill path and a
  kill genuinely exercises the worker-death path.

The retry / backoff / journal / failure-degradation loop that drives
these backends lives in :class:`~repro.engine.sweep.SweepRunner`; this
module supplies the building blocks (:class:`CellTask`,
:class:`AttemptOutcome`, :class:`CellFailure`, :func:`retry_delay`).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import random
import time
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.core.errors import UnknownVocabularyError
from repro.engine.result import RunResult
from repro.engine.spec import ExperimentSpec

__all__ = [
    "CellTask",
    "AttemptOutcome",
    "CellFailure",
    "SweepAbortedError",
    "InjectedFault",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "ShardExecutor",
    "FlakyExecutor",
    "register_executor",
    "available_executors",
    "get_executor",
    "make_executor",
    "retry_delay",
    "EXECUTOR_REGISTRY",
    "INJECTION_KINDS",
]

#: Chaos injection kinds the flaky executor (and the backends) understand.
INJECTION_KINDS: Tuple[str, ...] = ("exception", "hang", "kill")

#: How long a hang-injected worker sleeps before failing loudly.  Long
#: enough that any sane per-cell timeout fires first; finite so a
#: misconfigured run (hang injection without a timeout on a process
#: backend) eventually surfaces as an error instead of wedging forever.
HANG_SECONDS = 3600.0

#: Exit code a kill-injected worker dies with (``os._exit``), chosen to
#: be recognizable in worker-death messages.
KILL_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """The exception raised by chaos ``exception`` injections."""


class SweepAbortedError(RuntimeError):
    """Raised when final cell failures exceed the sweep's abort threshold.

    Every success computed before the abort has already been stored in
    the attached result cache and journal, so re-running the sweep only
    re-executes the unfinished cells.
    """

    def __init__(self, failures: Sequence["CellFailure"], max_failures: int) -> None:
        self.failures = list(failures)
        self.max_failures = max_failures
        first = self.failures[0] if self.failures else None
        detail = (
            f"; first: {first.label!r} failed after {first.attempts} attempt(s) "
            f"({first.error.get('type')}: {first.error.get('message')})"
            if first is not None
            else ""
        )
        super().__init__(
            f"sweep aborted: {len(self.failures)} cell failure(s) exceeded "
            f"--max-failures {max_failures}{detail}"
        )


# ---------------------------------------------------------------------------
# work units and outcomes
# ---------------------------------------------------------------------------


@dataclass
class CellTask:
    """One attempt at one sweep cell, addressed by its grid position."""

    index: int
    spec: ExperimentSpec
    attempt: int = 1
    digest: str = ""
    payload: str = ""
    #: Chaos directive honoured by the backend (set by :class:`FlakyExecutor`).
    inject: Optional[str] = None

    @classmethod
    def for_spec(
        cls, index: int, spec: ExperimentSpec, *, attempt: int = 1, digest: str = ""
    ) -> "CellTask":
        from repro.engine.cache import spec_digest

        return cls(
            index=index,
            spec=spec,
            attempt=attempt,
            digest=digest or spec_digest(spec),
            payload=spec.to_json(),
        )

    @property
    def label(self) -> str:
        return self.spec.label or self.spec.protocol


@dataclass
class AttemptOutcome:
    """What one attempt at one cell produced.

    ``status`` is ``"ok"`` (``result`` is set), ``"error"`` (the cell
    raised), ``"timeout"`` (the cell exceeded the per-cell deadline and
    its worker was killed) or ``"died"`` (the worker vanished without
    reporting — killed from outside, OOM, ``os._exit``).  ``exception``
    carries the live exception object when the attempt ran in-process,
    so an aborting sweep can re-raise the original error verbatim.
    """

    task: CellTask
    status: str
    result: Optional[RunResult] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False, compare=False)
    #: Event count of the checkpoint this attempt resumed from (``None``
    #: when the attempt started clean); journaled as ``resumed_from_event``.
    resumed_from_event: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def error_dict(self) -> Dict[str, Any]:
        """The structured error a :class:`CellFailure` artifact records."""
        return {
            "status": self.status,
            "type": self.error_type,
            "message": self.error_message,
        }


@dataclass
class CellFailure:
    """Structured artifact of a cell that failed every allowed attempt.

    Failed cells degrade to these instead of aborting the sweep (subject
    to ``max_failures``): the sweep payload (schema ``repro.sweep/2``)
    carries them beside the successful cells, marked by the
    ``"cell_failure": true`` key, so a single bad cell never discards
    its siblings' results.
    """

    spec: ExperimentSpec
    attempts: int
    error: Dict[str, Any]

    status: str = "failed"

    @property
    def label(self) -> str:
        return self.spec.label or self.spec.protocol

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_failure": True,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "attempts": self.attempts,
            "error": dict(self.error),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellFailure":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            attempts=int(data.get("attempts", 0)),
            error=dict(data.get("error", {})),
        )


def retry_delay(backoff: float, attempt: int, digest: str, seed: int = 0) -> float:
    """Exponential backoff with deterministically seeded jitter.

    ``attempt`` is the attempt about to run (2 for the first retry); the
    base delay doubles per retry and the jitter multiplier in
    ``[1.0, 1.5)`` is a pure function of ``(seed, digest, attempt)``, so
    identical sweeps sleep identically while distinct cells decorrelate.
    """
    if backoff <= 0:
        return 0.0
    jitter = random.Random(f"{seed}:{digest}:{attempt}").random()
    return backoff * (2.0 ** max(0, attempt - 2)) * (1.0 + 0.5 * jitter)


# ---------------------------------------------------------------------------
# registry (mirrors @register_topology / @register_fault)
# ---------------------------------------------------------------------------

#: Name -> executor class, in registration order.
EXECUTOR_REGISTRY: Dict[str, Type["Executor"]] = {}


def register_executor(name: str):
    """Class decorator: register an :class:`Executor` under ``name``.

    The decorated class is returned unchanged; a name collision raises so
    two modules cannot silently shadow each other's backends (the same
    contract as every other registered vocabulary).
    """

    def decorate(cls: Type["Executor"]) -> Type["Executor"]:
        if name in EXECUTOR_REGISTRY:
            raise ValueError(f"executor {name!r} already registered")
        EXECUTOR_REGISTRY[name] = cls
        return cls

    return decorate


def available_executors() -> Tuple[str, ...]:
    """Names of every registered executor backend."""
    return tuple(EXECUTOR_REGISTRY)


def get_executor(name: str) -> Type["Executor"]:
    """Resolve ``name`` to its executor class.

    Raises the uniform :class:`~repro.core.errors.UnknownVocabularyError`
    listing the registered names, like every other spec vocabulary.
    """
    try:
        return EXECUTOR_REGISTRY[name]
    except KeyError:
        raise UnknownVocabularyError("executor", name, EXECUTOR_REGISTRY) from None


class Executor(ABC):
    """One way of running a batch of cell attempts.

    The resilience loop in :class:`~repro.engine.sweep.SweepRunner`
    drives an executor in *waves*: it submits every pending attempt of a
    round through :meth:`run_batch`, classifies the outcomes, and
    re-submits the retryable subset (with backoff) as the next wave.
    """

    def shard_of(self, n: int) -> Sequence[int]:
        """The grid indices this executor is responsible for (default: all)."""
        return range(n)

    @abstractmethod
    def run_batch(
        self,
        tasks: Sequence[CellTask],
        timeout: Optional[float] = None,
        stop_after_failures: Optional[int] = None,
    ) -> List[AttemptOutcome]:
        """Attempt every task once; outcomes in task order.

        ``timeout`` is the per-cell wall-clock budget (enforced by
        process-based backends).  ``stop_after_failures``, when set, lets
        a sequential backend stop executing once more than that many
        non-ok outcomes have accumulated (the runner passes it only on
        final attempts, where an error is a final failure) — a truncated
        outcome list is allowed and means the sweep is aborting anyway.
        """


# ---------------------------------------------------------------------------
# serial backend
# ---------------------------------------------------------------------------


@register_executor("serial")
class SerialExecutor(Executor):
    """In-process, one-cell-at-a-time execution.

    Successful outcomes keep their live ``run`` objects.  Injected
    ``hang`` / ``kill`` faults are reported synthetically (a serial
    backend cannot preempt or survive them for real) so chaos tests of
    the retry machinery stay fast and deterministic.
    """

    def run_batch(
        self,
        tasks: Sequence[CellTask],
        timeout: Optional[float] = None,
        stop_after_failures: Optional[int] = None,
    ) -> List[AttemptOutcome]:
        outcomes: List[AttemptOutcome] = []
        failures = 0
        for task in tasks:
            if stop_after_failures is not None and failures > stop_after_failures:
                break
            outcome = self._attempt(task, timeout)
            if not outcome.ok:
                failures += 1
            outcomes.append(outcome)
        return outcomes

    def _attempt(self, task: CellTask, timeout: Optional[float]) -> AttemptOutcome:
        if task.inject == "hang":
            return AttemptOutcome(
                task,
                "timeout",
                error_type="CellTimeout",
                error_message=(
                    f"cell exceeded the per-cell timeout of {timeout}s "
                    "(injected hang, reported synthetically by the serial backend)"
                ),
            )
        if task.inject == "kill":
            return AttemptOutcome(
                task,
                "died",
                error_type="WorkerDied",
                error_message=(
                    f"worker exited with code {KILL_EXIT_CODE} "
                    "(injected kill, reported synthetically by the serial backend)"
                ),
            )
        try:
            if task.inject == "exception":
                raise InjectedFault(
                    f"injected exception (cell {task.index}, attempt {task.attempt})"
                )
            result = task.spec.execute()
        except Exception as error:
            return AttemptOutcome(
                task,
                "error",
                error_type=type(error).__name__,
                error_message=str(error),
                exception=error,
            )
        return AttemptOutcome(task, "ok", result=result)


# ---------------------------------------------------------------------------
# process-pool backend (one process per cell)
# ---------------------------------------------------------------------------


def _cell_worker(
    conn,
    payload: str,
    inject: Optional[str],
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
) -> None:
    """Worker entry point: JSON spec in, ``(status, ...)`` tuple out.

    Chaos directives are honoured *here*, inside the worker, so the
    parent's timeout / worker-death handling is exercised for real: a
    ``hang`` sleeps until the parent terminates the process, a ``kill``
    exits without reporting, an ``exception`` raises through the normal
    error path.

    With checkpointing configured, the cell runs through
    :func:`~repro.engine.checkpoint.run_spec_with_checkpoints` and a
    success reports ``("ok", result_json, resumed_from_event)``.  A
    ``hang`` injection then writes exactly one checkpoint before
    stalling, so the parent's timeout-kill → retry-from-checkpoint path
    is deterministic.
    """
    try:
        if inject == "kill":
            conn.close()
            os._exit(KILL_EXIT_CODE)
        if inject == "hang":
            if checkpoint_every is not None and checkpoint_path is not None:
                from repro.engine.checkpoint import CheckpointWriter, checkpoint_context

                writer = CheckpointWriter(checkpoint_path, spec=json.loads(payload))

                def _write_once_then_hang(live) -> None:
                    writer(live)
                    time.sleep(HANG_SECONDS)
                    raise InjectedFault(
                        "injected hang outlived HANG_SECONDS without a timeout"
                    )

                with checkpoint_context(checkpoint_every, _write_once_then_hang):
                    ExperimentSpec.from_json(payload).execute()
                raise InjectedFault(
                    "injected hang finished before the first checkpoint boundary"
                )
            time.sleep(HANG_SECONDS)
            raise InjectedFault("injected hang outlived HANG_SECONDS without a timeout")
        if inject == "exception":
            raise InjectedFault("injected exception (chaos)")
        if checkpoint_every is not None and checkpoint_path is not None:
            from repro.engine.checkpoint import run_spec_with_checkpoints

            spec = ExperimentSpec.from_json(payload)
            result, resumed = run_spec_with_checkpoints(
                spec,
                every=checkpoint_every,
                path=checkpoint_path,
                resume_from=resume_from,
            )
            conn.send(("ok", result.to_json(), resumed))
        else:
            result = ExperimentSpec.from_json(payload).execute()
            conn.send(("ok", result.to_json()))
    except BaseException as error:  # noqa: BLE001 - must report, not crash silently
        try:
            conn.send(("error", type(error).__name__, str(error)))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except (OSError, ValueError):
            pass


@register_executor("pool")
class PoolExecutor(Executor):
    """One OS process per cell, at most ``jobs`` in flight.

    Submitting cells individually (instead of ``pool.map`` over the whole
    batch) makes every failure domain a single cell: an exception, a
    killed worker or a blown deadline costs one attempt of one cell, and
    every other in-flight cell completes normally.  When the platform
    cannot spawn processes at all, the remaining batch degrades to the
    serial backend with a ``RuntimeWarning`` naming the reason.
    """

    def __init__(
        self,
        jobs: int = 2,
        start_method: Optional[str] = None,
        poll_interval: float = 0.005,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be positive")
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        self.jobs = jobs
        self.start_method = start_method
        self.poll_interval = poll_interval
        #: When both are set, each worker checkpoints its cell every N
        #: events to ``<checkpoint_dir>/<digest>.ckpt`` and retry attempts
        #: resume from the latest snapshot instead of restarting.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir

    def _checkpoint_args(
        self, task: CellTask
    ) -> Tuple[Optional[int], Optional[str], Optional[str]]:
        """``(checkpoint_every, checkpoint_path, resume_from)`` for one attempt."""
        if self.checkpoint_every is None or self.checkpoint_dir is None:
            return None, None, None
        from repro.engine.checkpoint import checkpoint_path_for

        path = checkpoint_path_for(self.checkpoint_dir, task.digest)
        resume_from = path if task.attempt > 1 and os.path.exists(path) else None
        return self.checkpoint_every, path, resume_from

    def run_batch(
        self,
        tasks: Sequence[CellTask],
        timeout: Optional[float] = None,
        stop_after_failures: Optional[int] = None,
    ) -> List[AttemptOutcome]:
        outcomes: Dict[int, AttemptOutcome] = {}
        queue: List[Tuple[int, CellTask]] = list(enumerate(tasks))
        inflight: List[List[Any]] = []  # [pos, task, proc, conn, deadline]
        ctx = multiprocessing.get_context(self.start_method)
        degraded = False
        while queue or inflight:
            while queue and len(inflight) < self.jobs and not degraded:
                pos, task = queue[0]
                parent_conn = child_conn = None
                try:
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    every, path, resume_from = self._checkpoint_args(task)
                    proc = ctx.Process(
                        target=_cell_worker,
                        args=(child_conn, task.payload, task.inject, every, path, resume_from),
                        daemon=True,
                    )
                    proc.start()
                except (OSError, ImportError) as error:
                    # A pipe created before the failure would otherwise leak
                    # both its fds for the rest of the process lifetime.
                    for end in (parent_conn, child_conn):
                        if end is not None:
                            try:
                                end.close()
                            except OSError:
                                pass
                    # Restricted environments (no /dev/shm, no fork) cannot
                    # spawn workers at all; degrade the rest of the batch to
                    # the serial backend — loudly, so users learn the sweep
                    # lost its parallelism (and its timeout enforcement).
                    warnings.warn(
                        f"worker process construction failed ({error}); "
                        "executing the remaining cells serially in-process",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    degraded = True
                    break
                queue.pop(0)
                child_conn.close()
                deadline = time.monotonic() + timeout if timeout is not None else None
                inflight.append([pos, task, proc, parent_conn, deadline])
            if degraded and not inflight:
                serial = SerialExecutor()
                rest = [task for _, task in queue]
                for (pos, _), outcome in zip(queue, serial.run_batch(rest, timeout)):
                    outcomes[pos] = outcome
                queue = []
                continue
            progressed = False
            still: List[List[Any]] = []
            for entry in inflight:
                pos, task, proc, conn, deadline = entry
                outcome = self._poll_one(task, proc, conn, deadline)
                if outcome is None:
                    still.append(entry)
                else:
                    outcomes[pos] = outcome
                    progressed = True
            inflight = still
            if inflight and not progressed:
                time.sleep(self.poll_interval)
        return [outcomes[pos] for pos in sorted(outcomes)]

    def _poll_one(self, task, proc, conn, deadline) -> Optional[AttemptOutcome]:
        """One non-blocking look at an in-flight worker; ``None`` = still running."""
        message = None
        if conn.poll():
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None
        elif proc.is_alive():
            if deadline is not None and time.monotonic() > deadline:
                pid = proc.pid
                proc.terminate()
                # Join the terminated process and close both the pipe end
                # and the Process object (its sentinel fd) — a long flaky
                # sweep kills many workers and must not leak an fd per kill.
                proc.join()
                conn.close()
                proc.close()
                return AttemptOutcome(
                    task,
                    "timeout",
                    error_type="CellTimeout",
                    error_message=(
                        f"cell exceeded the per-cell timeout; "
                        f"worker pid {pid} terminated"
                    ),
                )
            return None
        proc.join()
        conn.close()
        exitcode = proc.exitcode
        proc.close()
        if message is None:
            return AttemptOutcome(
                task,
                "died",
                error_type="WorkerDied",
                error_message=f"worker exited with code {exitcode} without reporting",
            )
        if message[0] == "ok":
            resumed = message[2] if len(message) > 2 else None
            return AttemptOutcome(
                task,
                "ok",
                result=RunResult.from_dict(json.loads(message[1])),
                resumed_from_event=resumed,
            )
        return AttemptOutcome(
            task, "error", error_type=message[1], error_message=message[2]
        )


# ---------------------------------------------------------------------------
# shard backend
# ---------------------------------------------------------------------------


@register_executor("shard")
class ShardExecutor(Executor):
    """Deterministic partition of the grid across driver invocations.

    Cell ``c`` of the ``expand_grid`` order belongs to shard
    ``c % shard_count`` — a pure function of the grid, independent of
    timing, worker count and machine, so ``k`` invocations with
    ``--shard-index 0/k .. (k-1)/k`` cover every cell exactly once.
    Execution within the shard goes through ``inner`` (serial or pool);
    results merge through the shared content-addressed result cache.
    """

    def __init__(
        self, shard_index: int, shard_count: int, inner: Optional[Executor] = None
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.inner = inner if inner is not None else SerialExecutor()

    def shard_of(self, n: int) -> Sequence[int]:
        return range(self.shard_index, n, self.shard_count)

    def run_batch(
        self,
        tasks: Sequence[CellTask],
        timeout: Optional[float] = None,
        stop_after_failures: Optional[int] = None,
    ) -> List[AttemptOutcome]:
        return self.inner.run_batch(tasks, timeout, stop_after_failures)


# ---------------------------------------------------------------------------
# chaos wrapper
# ---------------------------------------------------------------------------


@register_executor("flaky")
class FlakyExecutor(Executor):
    """Seeded fault injection around any backend.

    ``plan`` maps grid index → ``{attempt: kind}`` for exact scripted
    faults (the unit-test mode); ``rates`` maps kind → probability for
    seeded random injection decided per ``(seed, digest, attempt)`` — a
    pure function, so the same sweep under the same seed injects the
    same faults regardless of scheduling.  Kinds: ``exception`` (the
    cell raises), ``hang`` (the cell stalls until the per-cell timeout
    kills it), ``kill`` (the worker dies without reporting).

    Injection directives ride the :class:`CellTask` into the backend, so
    process-based backends exercise their *real* timeout and
    worker-death machinery; the serial backend reports hang/kill
    synthetically (see :class:`SerialExecutor`).
    """

    def __init__(
        self,
        inner: Optional[Executor] = None,
        plan: Optional[Mapping[int, Mapping[int, str]]] = None,
        rates: Optional[Mapping[str, float]] = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner if inner is not None else SerialExecutor()
        self.plan = {
            int(index): {int(attempt): kind for attempt, kind in attempts.items()}
            for index, attempts in (plan or {}).items()
        }
        self.rates = dict(rates or {})
        for kind in (*self.rates, *(k for a in self.plan.values() for k in a.values())):
            if kind not in INJECTION_KINDS:
                raise UnknownVocabularyError("injection kind", kind, INJECTION_KINDS)
        self.seed = seed
        #: Every injection performed: ``(index, attempt, kind)`` triples.
        self.injections: List[Tuple[int, int, str]] = []

    def shard_of(self, n: int) -> Sequence[int]:
        return self.inner.shard_of(n)

    def _injection_for(self, task: CellTask) -> Optional[str]:
        planned = self.plan.get(task.index, {}).get(task.attempt)
        if planned is not None:
            return planned
        if not self.rates:
            return None
        draw = random.Random(f"{self.seed}:{task.digest}:{task.attempt}").random()
        cumulative = 0.0
        for kind in INJECTION_KINDS:
            cumulative += self.rates.get(kind, 0.0)
            if draw < cumulative:
                return kind
        return None

    def run_batch(
        self,
        tasks: Sequence[CellTask],
        timeout: Optional[float] = None,
        stop_after_failures: Optional[int] = None,
    ) -> List[AttemptOutcome]:
        decorated: List[CellTask] = []
        for task in tasks:
            inject = self._injection_for(task)
            if inject is not None:
                self.injections.append((task.index, task.attempt, inject))
                task = dataclasses.replace(task, inject=inject)
            decorated.append(task)
        return self.inner.run_batch(decorated, timeout, stop_after_failures)


# ---------------------------------------------------------------------------
# construction helper (the CLI-facing factory)
# ---------------------------------------------------------------------------


def make_executor(
    name: str,
    *,
    jobs: int = 1,
    start_method: Optional[str] = None,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
    plan: Optional[Mapping[int, Mapping[int, str]]] = None,
    rates: Optional[Mapping[str, float]] = None,
    seed: int = 0,
    inner: Optional[Executor] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
) -> Executor:
    """Build a registered executor from flat (CLI-shaped) parameters.

    Wrapping backends (``shard``, ``flaky``) execute through ``inner``
    when given, else through the jobs-derived default (serial for
    ``jobs=1``, pool otherwise) — so ``--backend shard --jobs 4`` shards
    the grid *and* fans each shard out over four workers.  The checkpoint
    knobs apply to process-pool execution (directly or as the inner
    backend of a wrapper): each worker snapshots its cell every N events
    and retries resume from the latest snapshot.
    """
    cls = get_executor(name)  # raises the uniform error for unknown names
    base = inner
    if base is None:
        base = (
            SerialExecutor()
            if jobs <= 1 and checkpoint_every is None
            else PoolExecutor(
                jobs=max(jobs, 1),
                start_method=start_method,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
            )
        )
    if cls is SerialExecutor:
        return SerialExecutor()
    if cls is PoolExecutor:
        return PoolExecutor(
            jobs=max(jobs, 1),
            start_method=start_method,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
    if cls is ShardExecutor:
        if shard_index is None or shard_count is None:
            raise ValueError(
                "the shard executor requires shard_index and shard_count "
                "(--shard-index I/K)"
            )
        return ShardExecutor(shard_index, shard_count, inner=base)
    if cls is FlakyExecutor:
        return FlakyExecutor(base, plan=plan, rates=rates, seed=seed)
    return cls()  # third-party registration: nullary construction
