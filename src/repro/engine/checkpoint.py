"""Deterministic checkpoint/restore for long simulation runs.

A :class:`SimulationCheckpoint` snapshots a staged
:class:`~repro.protocols.base.LiveRun` — pending events from both event
cores (heap entries verbatim; array-core staged tuples, deferred blocks,
overflow heap and interned dispatch table), every rng bit-generator
state, :class:`~repro.network.simulator.Network` membership/caches/
counters, per-process protocol state (block tree, mempool, LRC relay
state), fault-model schedules and the recorder tail — into a versioned
payload.  Restoring rebuilds a live run whose continued history is
byte-identical to the uninterrupted run (the equivalence oracle in
``tests/network/test_checkpoint_equivalence.py`` pins this across both
cores, every channel model, several topologies and every registered
fault kind).

On-disk format (``repro.checkpoint/1``)::

    {"schema": "repro.checkpoint/1", "clock": ..., "event_count": ...,
     "phase": ..., "pickle_bytes": N, "sha256": "...", "spec": {...}?}\\n
    <N bytes of pickle protocol-highest payload>

The single JSON header line makes torn files detectable without
unpickling: a snapshot whose byte length or digest disagrees with its
header is rejected and the previous snapshot (``*.prev.ckpt``) is used
instead.  :class:`CheckpointWriter` writes crash-safely — tmp file +
``fsync`` + atomic rename, rotating the prior snapshot first — so a
kill at any instant leaves at least one loadable checkpoint behind.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import io
import json
import os
import pickle
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.result import RunResult
    from repro.engine.spec import ExperimentSpec
    from repro.protocols.base import LiveRun

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_CHECKPOINT_DIR",
    "CheckpointCorruptionError",
    "SimulationCheckpoint",
    "CheckpointWriter",
    "checkpoint_path_for",
    "load_checkpoint",
    "read_checkpoint_header",
    "AmbientCheckpointConfig",
    "ambient_checkpoint_config",
    "checkpoint_context",
    "run_spec_with_checkpoints",
    "resume_spec_from_checkpoint",
]

CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Where the CLI drops checkpoint files unless ``--checkpoint-dir`` says
#: otherwise (a sibling of the result cache's ``.repro-cache``).
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


class CheckpointCorruptionError(RuntimeError):
    """A checkpoint file is torn or otherwise fails integrity checks."""


@dataclass
class SimulationCheckpoint:
    """One versioned snapshot of a running simulation.

    ``payload`` is the pickled :class:`~repro.protocols.base.LiveRun`;
    the remaining fields are the header metadata that travels with it.
    """

    payload: bytes
    clock: float
    event_count: int
    phase: str
    spec: Optional[Dict[str, Any]] = None

    @classmethod
    def capture(
        cls, live: "LiveRun", spec: Optional[Dict[str, Any]] = None
    ) -> "SimulationCheckpoint":
        """Snapshot a staged run (the run itself is not perturbed)."""
        payload = pickle.dumps(live, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(
            payload=payload,
            clock=live.simulator.now,
            event_count=live.event_count,
            phase=live.phase,
            spec=spec,
        )

    def header(self) -> Dict[str, Any]:
        head: Dict[str, Any] = {
            "schema": CHECKPOINT_SCHEMA,
            "clock": self.clock,
            "event_count": self.event_count,
            "phase": self.phase,
            "pickle_bytes": len(self.payload),
            "sha256": hashlib.sha256(self.payload).hexdigest(),
        }
        if self.spec is not None:
            head["spec"] = self.spec
        return head

    def to_bytes(self) -> bytes:
        buffer = io.BytesIO()
        buffer.write(json.dumps(self.header(), sort_keys=True).encode("utf-8"))
        buffer.write(b"\n")
        buffer.write(self.payload)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimulationCheckpoint":
        """Parse and integrity-check a serialized checkpoint.

        Raises :class:`CheckpointCorruptionError` for torn or tampered
        files: missing header newline, undecodable header, truncated or
        over-long payload, or digest mismatch.
        """
        newline = data.find(b"\n")
        if newline < 0:
            raise CheckpointCorruptionError("checkpoint has no header line")
        try:
            head = json.loads(data[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointCorruptionError(
                f"unreadable checkpoint header: {error}"
            ) from error
        if head.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointCorruptionError(
                f"unsupported checkpoint schema {head.get('schema')!r}"
            )
        payload = data[newline + 1 :]
        expected = head.get("pickle_bytes")
        if len(payload) != expected:
            raise CheckpointCorruptionError(
                f"torn checkpoint: {len(payload)} payload bytes, header "
                f"promised {expected}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != head.get("sha256"):
            raise CheckpointCorruptionError("checkpoint payload digest mismatch")
        return cls(
            payload=payload,
            clock=head.get("clock", 0.0),
            event_count=head.get("event_count", 0),
            phase=head.get("phase", "main"),
            spec=head.get("spec"),
        )

    def restore(self) -> "LiveRun":
        """Rebuild the live run this snapshot captured."""
        return pickle.loads(self.payload)


def _previous_path(path: str) -> str:
    """``foo.ckpt`` → ``foo.prev.ckpt`` (else just append ``.prev``)."""
    if path.endswith(".ckpt"):
        return path[: -len(".ckpt")] + ".prev.ckpt"
    return path + ".prev"


class CheckpointWriter:
    """Crash-safe checkpoint sink: tmp file + fsync + atomic rename.

    Each :meth:`write` rotates the existing snapshot to the ``.prev``
    path before renaming the new one into place, so a crash mid-write
    (or a torn tail from a hard kill) always leaves a loadable snapshot
    behind — :func:`load_checkpoint` falls back to ``.prev`` whenever
    the primary fails integrity checks.

    ``min_write_interval`` amortizes durability on long runs: the event
    cadence (``checkpoint_every``) fixes *where* snapshots may be taken
    (deterministic event-count boundaries — any of them restores
    bit-identically), while the interval bounds *how often* one is
    actually persisted.  The vectorized cores process events far faster
    than any durable write completes, so persisting every boundary would
    dominate the run; at the default ``0.0`` every boundary persists
    (small runs, tests, the CLI), and long soaks pass an interval so the
    steady-state cost is one write per interval regardless of event
    rate.  A throttled writer also waits one full interval before its
    first durable write — early boundaries carry nearly the whole
    pending workload (the most expensive possible snapshot) while
    protecting almost no completed work, so persisting them would charge
    peak cost for minimal benefit.  Skipped boundaries are counted in
    :attr:`skipped`.

    Instances are callable so they plug directly into
    ``run_protocol(checkpoint_sink=...)``.
    """

    def __init__(
        self,
        path: str,
        spec: Optional[Dict[str, Any]] = None,
        min_write_interval: float = 0.0,
    ) -> None:
        if min_write_interval < 0:
            raise ValueError("min_write_interval must be non-negative")
        self.path = path
        self.spec = spec
        self.min_write_interval = min_write_interval
        self.writes = 0
        self.skipped = 0
        #: Cumulative wall-clock seconds spent inside :meth:`write` —
        #: the exact cost checkpointing added to the enclosing run.
        self.write_seconds = 0.0
        self.last_event_count: Optional[int] = None
        # With a throttle, start the clock now so the first durable
        # write lands after one full interval; without one, the first
        # boundary persists immediately.
        self._last_write_monotonic: Optional[float] = (
            time.monotonic() if min_write_interval > 0 else None
        )

    def write(self, live: "LiveRun") -> Optional[SimulationCheckpoint]:
        """Persist a snapshot of ``live`` (or skip it, when throttled)."""
        now = time.monotonic()
        if (
            self._last_write_monotonic is not None
            and now - self._last_write_monotonic < self.min_write_interval
        ):
            self.skipped += 1
            self.write_seconds += time.monotonic() - now
            return None
        snapshot = SimulationCheckpoint.capture(live, spec=self.spec)
        head = json.dumps(snapshot.header(), sort_keys=True).encode("utf-8")
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            # Header and payload are written separately: concatenating
            # them first would copy the multi-megabyte payload once more.
            handle.write(head)
            handle.write(b"\n")
            handle.write(snapshot.payload)
            handle.flush()
            os.fsync(handle.fileno())
        if os.path.exists(self.path):
            os.replace(self.path, _previous_path(self.path))
        os.replace(tmp_path, self.path)
        self.writes += 1
        self.last_event_count = snapshot.event_count
        self._last_write_monotonic = time.monotonic()
        self.write_seconds += self._last_write_monotonic - now
        return snapshot

    def __call__(self, live: "LiveRun") -> None:
        self.write(live)


def checkpoint_path_for(directory: str, digest: str) -> str:
    """The per-cell checkpoint path used by the pool executor."""
    return os.path.join(directory, f"{digest}.ckpt")


def read_checkpoint_header(path: str) -> Dict[str, Any]:
    """Read just the JSON header line of a checkpoint file."""
    with open(path, "rb") as handle:
        line = handle.readline()
    if not line.endswith(b"\n"):
        raise CheckpointCorruptionError("checkpoint has no header line")
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointCorruptionError(
            f"unreadable checkpoint header: {error}"
        ) from error


def load_checkpoint(path: str) -> SimulationCheckpoint:
    """Load a checkpoint, falling back to the previous snapshot.

    A torn or corrupt primary file triggers a :class:`RuntimeWarning`
    and the rotated ``.prev`` snapshot is used instead; only when both
    are unusable does the corruption error propagate.
    """
    primary_error: Optional[Exception] = None
    try:
        with open(path, "rb") as handle:
            return SimulationCheckpoint.from_bytes(handle.read())
    except FileNotFoundError as error:
        primary_error = error
    except CheckpointCorruptionError as error:
        primary_error = error
        warnings.warn(
            f"checkpoint {path} failed integrity checks ({error}); "
            "falling back to previous snapshot",
            RuntimeWarning,
            stacklevel=2,
        )
    prev = _previous_path(path)
    try:
        with open(prev, "rb") as handle:
            return SimulationCheckpoint.from_bytes(handle.read())
    except FileNotFoundError:
        raise primary_error
    except CheckpointCorruptionError as error:
        raise CheckpointCorruptionError(
            f"both {path} ({primary_error}) and {prev} ({error}) are unusable"
        ) from error


# -- ambient configuration -----------------------------------------------------
#
# ``run_protocol`` has nine registered protocol runners in front of it;
# threading explicit checkpoint kwargs through every runner signature
# would be invasive.  Instead ``ExperimentSpec.execute`` installs an
# ambient configuration (a contextvar, so it nests and is task-safe)
# that ``run_protocol`` consults when its explicit kwargs are ``None``.


@dataclass
class AmbientCheckpointConfig:
    """The checkpoint cadence + sink active for the current context."""

    every: int
    sink: Callable[["LiveRun"], None]


_ACTIVE_CONFIG: contextvars.ContextVar[Optional[AmbientCheckpointConfig]] = (
    contextvars.ContextVar("repro_checkpoint_config", default=None)
)


def ambient_checkpoint_config() -> Optional[AmbientCheckpointConfig]:
    """The ambient config installed by :func:`checkpoint_context`, if any."""
    return _ACTIVE_CONFIG.get()


@contextlib.contextmanager
def checkpoint_context(
    every: int, sink: Callable[["LiveRun"], None]
) -> Iterator[AmbientCheckpointConfig]:
    """Install an ambient checkpoint configuration for the enclosed block."""
    config = AmbientCheckpointConfig(every=every, sink=sink)
    token = _ACTIVE_CONFIG.set(config)
    try:
        yield config
    finally:
        _ACTIVE_CONFIG.reset(token)


# -- spec-level driving --------------------------------------------------------


def resume_spec_from_checkpoint(
    spec: "ExperimentSpec",
    checkpoint: SimulationCheckpoint,
    *,
    every: Optional[int] = None,
    writer: Optional[CheckpointWriter] = None,
) -> "RunResult":
    """Finish a restored run and analyse it exactly as a clean run.

    The continued run keeps checkpointing through ``writer`` when one is
    given.  ``run_seconds`` only covers the continued portion (timings
    are excluded from ``stable_dict()`` identity, so resumed results
    compare equal to clean ones).
    """
    from repro.engine.registry import get_protocol
    from repro.engine.result import analyse_run

    entry = get_protocol(spec.protocol)
    live = checkpoint.restore()
    started = time.perf_counter()
    run = live.finish(checkpoint_every=every, checkpoint_sink=writer)
    run_seconds = time.perf_counter() - started
    return analyse_run(spec, entry, run, run_seconds)


def run_spec_with_checkpoints(
    spec: "ExperimentSpec",
    *,
    every: int,
    path: str,
    resume_from: Optional[str] = None,
) -> Tuple["RunResult", Optional[int]]:
    """Execute a spec with periodic checkpoints; optionally resume first.

    Returns ``(result, resumed_from_event)`` where the second element is
    the event count of the snapshot the run continued from (``None``
    when the run started clean — including when ``resume_from`` named a
    missing file, which degrades to a clean run with a warning).
    """
    writer = CheckpointWriter(path, spec=json.loads(spec.to_json()))
    if resume_from is not None:
        try:
            snapshot = load_checkpoint(resume_from)
        except FileNotFoundError:
            snapshot = None
        except CheckpointCorruptionError as error:
            warnings.warn(
                f"cannot resume from {resume_from} ({error}); re-running "
                "from the start",
                RuntimeWarning,
                stacklevel=2,
            )
            snapshot = None
        if snapshot is not None:
            result = resume_spec_from_checkpoint(
                spec, snapshot, every=every, writer=writer
            )
            return result, snapshot.event_count
    with checkpoint_context(every, writer):
        result = spec.execute()
    return result, None
