"""Parameter-grid expansion and process-parallel experiment fan-out.

``expand_grid`` turns one base :class:`ExperimentSpec` plus a mapping of
axes into the full Cartesian product of specs, in a deterministic order
(axes vary slowest-first in the order given, exactly like nested ``for``
loops).  Axis names address spec fields with dotted paths::

    seed, replicas, duration, oracle_k          — top-level fields
    channel.delta, channel.min_delay, ...       — channel constructor params
    channel.kind, channel.drop_probability      — channel spec fields
    topology (kind shorthand), topology.kind    — dissemination topology
    topology.fanout, topology.shards, ...       — topology constructor params
    fault (kind shorthand), fault.kind          — adversary / fault model
    fault.heal_at, fault.victim, fault.seed     — fault constructor params
    params.token_rate, params.selection, ...    — protocol-specific knobs
    workload.use_lrc, workload.read_interval    — workload fields
    workload.clients, workload.client_rate      — client population axis

:class:`SweepRunner` executes a list of specs through a pluggable
:class:`~repro.engine.executors.Executor` backend (``serial`` / ``pool``
/ ``shard`` / ``flaky``; see :mod:`repro.engine.executors`), wrapped in a
resilience loop: per-cell timeouts, retries with seeded exponential
backoff, failed cells degraded to structured
:class:`~repro.engine.executors.CellFailure` artifacts (bounded by
``max_failures``), and an append-only :class:`SweepJournal` manifest
enabling ``resume=True`` to skip completed cells after a driver crash.
Every cell is an independent simulation seeded entirely by its spec, so
all backends produce identical per-cell artifacts (only the wall-clock
``timings`` differ); results always come back in spec order regardless
of worker scheduling.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.engine.cache import ResultCache, spec_digest
from repro.engine.executors import (
    CellFailure,
    CellTask,
    Executor,
    PoolExecutor,
    SerialExecutor,
    SweepAbortedError,
    make_executor,
    retry_delay,
)
from repro.engine.result import RunResult
from repro.engine.spec import (
    WORKLOAD_FIELDS,
    ChannelSpec,
    ExperimentSpec,
    FaultSpec,
    TopologySpec,
)

__all__ = [
    "expand_grid",
    "derive_seed",
    "SweepRunner",
    "SweepJournal",
    "results_payload",
    "SWEEP_SCHEMA",
    "JOURNAL_SCHEMA",
]

#: Schema tag of the sweep payload.  ``/2`` added failure degradation:
#: ``cells`` may contain ``CellFailure`` artifacts (``"cell_failure":
#: true``) beside successful cells, plus top-level ``failures`` and
#: optional ``shard`` metadata.
SWEEP_SCHEMA = "repro.sweep/2"

#: Schema tag stamped on every journal line.  ``/2`` added the optional
#: ``resumed_from_event`` key on ``ok`` lines (the event count of the
#: checkpoint the successful attempt resumed from); ``/1`` lines carry
#: the same required keys and :meth:`SweepJournal.load` parses both.
JOURNAL_SCHEMA = "repro.sweep-journal/2"


def derive_seed(base_seed: int, cell_index: int) -> int:
    """Deterministic, well-spread per-cell seed (stable across runs)."""
    return (base_seed * 1_000_003 + cell_index * 7_919 + 17) % (2**31 - 1)


def _apply_override(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set one dotted-path override on a spec's dict form."""
    parts = path.split(".")
    top = parts[0]
    if len(parts) == 1:
        if top == "topology":
            # Absent unless set (digest stability), so it cannot rely on
            # the key-exists check; a bare string value is a kind name.
            data["topology"] = TopologySpec.from_dict(value).to_dict()
            return
        if top == "fault":
            # The serialized fault is ``None`` unless set; a bare string
            # value is a kind name (``"partition"``), a dict the full spec.
            data["fault"] = FaultSpec.from_dict(value).to_dict()
            return
        if top not in data:
            raise KeyError(f"unknown spec field {path!r}")
        data[top] = value
        return
    if len(parts) != 2:
        raise KeyError(f"axis path {path!r} nests too deep")
    key = parts[1]
    if top == "channel":
        if data.get("channel") is None:
            data["channel"] = ChannelSpec().to_dict()
        if key in ("kind", "drop_probability", "seed"):
            data["channel"][key] = value
        else:
            data["channel"]["params"][key] = value
    elif top == "topology":
        if data.get("topology") is None:
            data["topology"] = TopologySpec().to_dict()
        if key in ("kind", "seed"):
            data["topology"][key] = value
        else:
            data["topology"]["params"][key] = value
    elif top == "params":
        data["params"][key] = value
    elif top == "workload":
        # Validate against the field names: the serialized workload omits
        # the population keys (clients, client_rate) when unset, so dict
        # membership would wrongly reject them as axes.
        if key not in WORKLOAD_FIELDS:
            raise KeyError(f"unknown workload field {key!r}")
        data["workload"][key] = value
    elif top == "fault":
        if data.get("fault") is None:
            raise KeyError("cannot set a fault axis on a spec without a fault")
        if key in ("kind", "seed", "crash_at", "byzantine"):
            data["fault"][key] = value
        else:
            # Everything else is a constructor parameter of the registered
            # fault model (``fault.heal_at``, ``fault.victim``, ...).
            data["fault"].setdefault("params", {})[key] = value
    else:
        raise KeyError(f"unknown axis root {top!r} in {path!r}")


def _cell_label(base: ExperimentSpec, assignment: Sequence[tuple]) -> str:
    parts = [base.label or base.protocol]
    parts.extend(f"{path}={value}" for path, value in assignment)
    return " ".join(str(p) for p in parts)


def expand_grid(
    base: ExperimentSpec,
    axes: Mapping[str, Sequence[Any]],
    *,
    derive_seeds: bool = False,
) -> List[ExperimentSpec]:
    """Cartesian product of ``axes`` over ``base``, in deterministic order.

    With ``derive_seeds=True`` (and no explicit ``seed`` axis) every cell
    gets its own seed derived from ``base.seed`` and the cell index, so a
    sweep samples independent executions instead of replaying one seed
    under every configuration.
    """
    if not axes:
        return [base]
    names = list(axes)
    specs: List[ExperimentSpec] = []
    for index, values in enumerate(itertools.product(*(axes[name] for name in names))):
        assignment = list(zip(names, values))
        data = base.to_dict()
        for path, value in assignment:
            _apply_override(data, path, value)
        if derive_seeds and "seed" not in axes:
            data["seed"] = derive_seed(base.seed, index)
        data["label"] = _cell_label(base, assignment)
        specs.append(ExperimentSpec.from_dict(data))
    return specs


class SweepJournal:
    """Append-only manifest of per-cell sweep progress.

    One JSON line per terminal cell event — digest, grid index, label,
    status (``ok`` / ``failed``), attempts used and (on failure) the
    structured error.  Lines are appended with a flush after every cell,
    so a crash of the *driver* loses at most the line being written;
    :meth:`load` tolerates a torn tail line.  ``SweepRunner(resume=True,
    journal=...)`` replays the journal to skip completed cells — serving
    successes from the result cache and reconstructing failures — and
    re-executes only unfinished ones.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Digest → most recent journal entry (corrupt lines skipped)."""
        entries: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return entries
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail line from a mid-write crash
            if isinstance(entry, dict) and entry.get("digest"):
                entries[entry["digest"]] = entry
        return entries

    def record(
        self,
        *,
        digest: str,
        index: int,
        label: str,
        status: str,
        attempts: int,
        error: Optional[Mapping[str, Any]] = None,
        resumed_from_event: Optional[int] = None,
    ) -> None:
        entry: Dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "digest": digest,
            "index": index,
            "label": label,
            "status": status,
            "attempts": attempts,
        }
        if error is not None:
            entry["error"] = dict(error)
        if resumed_from_event is not None:
            entry["resumed_from_event"] = int(resumed_from_event)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())


class SweepRunner:
    """Execute a batch of specs through a resilient, pluggable backend.

    ``jobs=1`` runs in-process (results keep their live ``run`` objects);
    ``jobs>1`` fans each cell out to its own worker process.  Each cell
    is seeded by its spec alone, so every backend is bit-identical up to
    timings.  ``executor`` overrides the jobs-derived default with a
    registered backend name (``"serial"`` / ``"pool"`` / ``"shard"`` /
    ``"flaky"``) or a live :class:`~repro.engine.executors.Executor`.

    The resilience layer around the backend:

    * ``timeout`` — per-cell wall-clock budget; a cell over budget has
      its worker killed and counts as a failed attempt (process backends
      enforce it for real, the serial backend only for injected hangs).
    * ``retries`` — failed attempts are re-submitted up to ``retries``
      times, with exponential backoff and seeded jitter
      (:func:`~repro.engine.executors.retry_delay`) between waves.
    * ``max_failures`` — cells that fail every attempt degrade to
      :class:`~repro.engine.executors.CellFailure` artifacts in the
      results; once their count *exceeds* this threshold the sweep
      aborts (the default ``0`` preserves the historical fail-fast
      behaviour; ``None`` never aborts).  Successes computed before an
      abort are already cached and journaled.
    * ``journal`` / ``resume`` — every terminal cell outcome is appended
      to a :class:`SweepJournal`; ``resume=True`` replays it so a
      re-launched driver executes only unfinished cells.

    With a :class:`~repro.engine.cache.ResultCache` attached, cells whose
    spec digest is already stored are served from disk — byte-identical
    payload, zero simulator events — and each success is stored back the
    moment it completes, so a mid-sweep failure never discards finished
    work.  Results always come back in spec order.
    """

    def __init__(
        self,
        jobs: int = 1,
        start_method: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        *,
        executor: Optional[Union[str, Executor]] = None,
        retries: int = 0,
        timeout: Optional[float] = None,
        backoff: float = 0.05,
        max_failures: Optional[int] = 0,
        journal: Optional[Union[str, Path, SweepJournal]] = None,
        resume: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.start_method = start_method
        self.cache = cache
        if isinstance(executor, str):
            executor = make_executor(executor, jobs=jobs, start_method=start_method)
        self.executor = executor
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.max_failures = max_failures
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal(journal)
        self.journal = journal
        if resume and self.journal is None:
            raise ValueError("resume=True requires a journal")
        if resume and self.cache is None:
            raise ValueError(
                "resume=True requires a cache (completed cells are restored from it)"
            )
        self.resume = resume
        #: Cache hits of the most recent :meth:`run` call (0 without a cache).
        self.last_cache_hits = 0
        #: Cells of the most recent run that actually executed (any attempt).
        self.last_executed = 0
        #: Cells restored from the journal by ``resume=True``.
        self.last_resumed = 0
        #: Cells that ended as :class:`CellFailure` artifacts.
        self.last_failures = 0
        #: Total attempts submitted to the backend (retries included).
        self.last_attempts = 0
        #: Grid indices the backend's shard selected in the most recent run.
        self.last_indices: List[int] = []

    def _default_executor(self, cells: int) -> Executor:
        if self.jobs == 1 or cells <= 1:
            return SerialExecutor()
        return PoolExecutor(jobs=self.jobs, start_method=self.start_method)

    def run(
        self, specs: Sequence[ExperimentSpec]
    ) -> List[Union[RunResult, CellFailure]]:
        specs = list(specs)
        executor = self.executor or self._default_executor(len(specs))
        indices = list(executor.shard_of(len(specs)))
        self.last_indices = indices
        self.last_cache_hits = 0
        self.last_executed = 0
        self.last_resumed = 0
        self.last_failures = 0
        self.last_attempts = 0

        slots: Dict[int, Union[RunResult, CellFailure]] = {}
        journal_state = (
            self.journal.load() if (self.resume and self.journal is not None) else {}
        )
        pending: List[CellTask] = []
        for index in indices:
            spec = specs[index]
            digest = spec_digest(spec)
            entry = journal_state.get(digest)
            if entry is not None and entry.get("status") == "ok":
                cached = self.cache.get(spec) if self.cache is not None else None
                if cached is not None:
                    slots[index] = cached
                    self.last_resumed += 1
                    continue
                warnings.warn(
                    f"journal marks cell {spec.label or spec.protocol!r} complete "
                    "but the result cache has no entry for it; re-executing",
                    RuntimeWarning,
                    stacklevel=2,
                )
            elif entry is not None and entry.get("status") == "failed":
                slots[index] = CellFailure(
                    spec=spec,
                    attempts=int(entry.get("attempts", 0)),
                    error=dict(entry.get("error") or {}),
                )
                self.last_resumed += 1
                self.last_failures += 1
                continue
            if self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    slots[index] = cached
                    self.last_cache_hits += 1
                    continue
            pending.append(CellTask.for_spec(index, spec, digest=digest))

        if pending:
            self._execute_resilient(executor, pending, slots)
        return [slots[index] for index in indices]

    def _execute_resilient(
        self,
        executor: Executor,
        tasks: List[CellTask],
        slots: Dict[int, Union[RunResult, CellFailure]],
    ) -> None:
        """Wave-based retry loop; mutates ``slots`` as cells finish."""
        failures: List[CellFailure] = []
        abort_exception: Optional[BaseException] = None
        wave = tasks
        while wave:
            attempt = wave[0].attempt
            final_attempt = attempt > self.retries
            stop_after = None
            if final_attempt and self.max_failures is not None:
                # On final attempts every error is a final failure, so a
                # sequential backend may stop once the abort is certain.
                stop_after = max(0, self.max_failures - len(failures))
            outcomes = executor.run_batch(
                wave, timeout=self.timeout, stop_after_failures=stop_after
            )
            self.last_attempts += len(outcomes)
            # Successes first: cache and journal every finished cell before
            # surfacing any failure from the same wave, so a partial-failure
            # abort never discards computed results.
            for outcome in outcomes:
                if not outcome.ok:
                    continue
                task = outcome.task
                result = outcome.result
                if self.cache is not None:
                    try:
                        self.cache.put(result)
                    except OSError as error:
                        # Never lose an already-computed sweep to a
                        # cache-write failure (read-only dir, disk full):
                        # mirror the read side, where bad entries degrade
                        # to misses.
                        warnings.warn(
                            f"result cache write failed ({error}); "
                            "continuing without caching this cell",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                if self.journal is not None:
                    self.journal.record(
                        digest=task.digest,
                        index=task.index,
                        label=task.label,
                        status="ok",
                        attempts=task.attempt,
                        resumed_from_event=outcome.resumed_from_event,
                    )
                slots[task.index] = result
                self.last_executed += 1
            retry: List[CellTask] = []
            for outcome in outcomes:
                if outcome.ok:
                    continue
                task = outcome.task
                if task.attempt <= self.retries:
                    retry.append(
                        dataclasses.replace(task, attempt=task.attempt + 1, inject=None)
                    )
                    continue
                failure = CellFailure(
                    spec=task.spec, attempts=task.attempt, error=outcome.error_dict()
                )
                if self.journal is not None:
                    self.journal.record(
                        digest=task.digest,
                        index=task.index,
                        label=task.label,
                        status="failed",
                        attempts=task.attempt,
                        error=failure.error,
                    )
                slots[task.index] = failure
                failures.append(failure)
                self.last_executed += 1
                if abort_exception is None and outcome.exception is not None:
                    abort_exception = outcome.exception
            self.last_failures += len(
                [o for o in outcomes if not o.ok and o.task.attempt > self.retries]
            )
            if self.max_failures is not None and len(failures) > self.max_failures:
                if abort_exception is not None:
                    # The failing attempt ran in-process: preserve the
                    # historical contract and surface the original error.
                    raise abort_exception
                raise SweepAbortedError(failures, self.max_failures)
            if retry:
                delay = max(
                    retry_delay(self.backoff, task.attempt, task.digest)
                    for task in retry
                )
                if delay > 0:
                    time.sleep(delay)
            wave = retry


def results_payload(
    results: Sequence[Union[RunResult, CellFailure]],
    *,
    shard: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """The stable JSON document a sweep writes to disk (``repro.sweep/2``).

    ``cells`` holds successful results and :class:`CellFailure` artifacts
    (marked ``"cell_failure": true``) in grid order; ``failures`` counts
    the latter.  ``shard=(i, k)`` stamps shard provenance on partial
    payloads produced by ``--backend shard``.
    """
    payload: Dict[str, Any] = {
        "schema": SWEEP_SCHEMA,
        "cells": [result.to_dict() for result in results],
        "failures": sum(1 for r in results if isinstance(r, CellFailure)),
    }
    if shard is not None:
        payload["shard"] = {"index": int(shard[0]), "count": int(shard[1])}
    return payload
