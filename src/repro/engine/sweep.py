"""Parameter-grid expansion and process-parallel experiment fan-out.

``expand_grid`` turns one base :class:`ExperimentSpec` plus a mapping of
axes into the full Cartesian product of specs, in a deterministic order
(axes vary slowest-first in the order given, exactly like nested ``for``
loops).  Axis names address spec fields with dotted paths::

    seed, replicas, duration, oracle_k          — top-level fields
    channel.delta, channel.min_delay, ...       — channel constructor params
    channel.kind, channel.drop_probability      — channel spec fields
    topology (kind shorthand), topology.kind    — dissemination topology
    topology.fanout, topology.shards, ...       — topology constructor params
    fault (kind shorthand), fault.kind          — adversary / fault model
    fault.heal_at, fault.victim, fault.seed     — fault constructor params
    params.token_rate, params.selection, ...    — protocol-specific knobs
    workload.use_lrc, workload.read_interval    — workload fields
    workload.clients, workload.client_rate      — client population axis

:class:`SweepRunner` executes a list of specs either serially (``jobs=1``,
the deterministic fallback tests rely on) or across a ``multiprocessing``
pool.  Every cell is an independent simulation seeded entirely by its
spec, so the two modes produce identical per-cell artifacts (only the
wall-clock ``timings`` differ); results always come back in spec order
regardless of worker scheduling.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import warnings
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.engine.cache import ResultCache
from repro.engine.result import RunResult
from repro.engine.spec import (
    WORKLOAD_FIELDS,
    ChannelSpec,
    ExperimentSpec,
    FaultSpec,
    TopologySpec,
)

__all__ = ["expand_grid", "derive_seed", "SweepRunner", "results_payload"]


def derive_seed(base_seed: int, cell_index: int) -> int:
    """Deterministic, well-spread per-cell seed (stable across runs)."""
    return (base_seed * 1_000_003 + cell_index * 7_919 + 17) % (2**31 - 1)


def _apply_override(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set one dotted-path override on a spec's dict form."""
    parts = path.split(".")
    top = parts[0]
    if len(parts) == 1:
        if top == "topology":
            # Absent unless set (digest stability), so it cannot rely on
            # the key-exists check; a bare string value is a kind name.
            data["topology"] = TopologySpec.from_dict(value).to_dict()
            return
        if top == "fault":
            # The serialized fault is ``None`` unless set; a bare string
            # value is a kind name (``"partition"``), a dict the full spec.
            data["fault"] = FaultSpec.from_dict(value).to_dict()
            return
        if top not in data:
            raise KeyError(f"unknown spec field {path!r}")
        data[top] = value
        return
    if len(parts) != 2:
        raise KeyError(f"axis path {path!r} nests too deep")
    key = parts[1]
    if top == "channel":
        if data.get("channel") is None:
            data["channel"] = ChannelSpec().to_dict()
        if key in ("kind", "drop_probability", "seed"):
            data["channel"][key] = value
        else:
            data["channel"]["params"][key] = value
    elif top == "topology":
        if data.get("topology") is None:
            data["topology"] = TopologySpec().to_dict()
        if key in ("kind", "seed"):
            data["topology"][key] = value
        else:
            data["topology"]["params"][key] = value
    elif top == "params":
        data["params"][key] = value
    elif top == "workload":
        # Validate against the field names: the serialized workload omits
        # the population keys (clients, client_rate) when unset, so dict
        # membership would wrongly reject them as axes.
        if key not in WORKLOAD_FIELDS:
            raise KeyError(f"unknown workload field {key!r}")
        data["workload"][key] = value
    elif top == "fault":
        if data.get("fault") is None:
            raise KeyError("cannot set a fault axis on a spec without a fault")
        if key in ("kind", "seed", "crash_at", "byzantine"):
            data["fault"][key] = value
        else:
            # Everything else is a constructor parameter of the registered
            # fault model (``fault.heal_at``, ``fault.victim``, ...).
            data["fault"].setdefault("params", {})[key] = value
    else:
        raise KeyError(f"unknown axis root {top!r} in {path!r}")


def _cell_label(base: ExperimentSpec, assignment: Sequence[tuple]) -> str:
    parts = [base.label or base.protocol]
    parts.extend(f"{path}={value}" for path, value in assignment)
    return " ".join(str(p) for p in parts)


def expand_grid(
    base: ExperimentSpec,
    axes: Mapping[str, Sequence[Any]],
    *,
    derive_seeds: bool = False,
) -> List[ExperimentSpec]:
    """Cartesian product of ``axes`` over ``base``, in deterministic order.

    With ``derive_seeds=True`` (and no explicit ``seed`` axis) every cell
    gets its own seed derived from ``base.seed`` and the cell index, so a
    sweep samples independent executions instead of replaying one seed
    under every configuration.
    """
    if not axes:
        return [base]
    names = list(axes)
    specs: List[ExperimentSpec] = []
    for index, values in enumerate(itertools.product(*(axes[name] for name in names))):
        assignment = list(zip(names, values))
        data = base.to_dict()
        for path, value in assignment:
            _apply_override(data, path, value)
        if derive_seeds and "seed" not in axes:
            data["seed"] = derive_seed(base.seed, index)
        data["label"] = _cell_label(base, assignment)
        specs.append(ExperimentSpec.from_dict(data))
    return specs


def _execute_payload(payload: str) -> str:
    """Worker entry point: JSON spec in, JSON result out (picklable both ways)."""
    spec = ExperimentSpec.from_json(payload)
    return spec.execute().to_json()


class SweepRunner:
    """Execute a batch of specs, serially or across a process pool.

    ``jobs=1`` runs in-process (results keep their live ``run`` objects);
    ``jobs>1`` fans out over ``multiprocessing``.  Each cell is seeded by
    its spec alone, so both modes are bit-identical up to timings.

    With a :class:`~repro.engine.cache.ResultCache` attached, cells whose
    spec digest is already stored are served from disk — byte-identical
    payload, zero simulator events — and only the missing cells execute
    (and are stored back).  Results always come back in spec order.
    """

    def __init__(
        self,
        jobs: int = 1,
        start_method: Optional[str] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.start_method = start_method
        self.cache = cache
        #: Cache hits of the most recent :meth:`run` call (0 without a cache).
        self.last_cache_hits = 0

    def run(self, specs: Sequence[ExperimentSpec]) -> List[RunResult]:
        specs = list(specs)
        if self.cache is None:
            self.last_cache_hits = 0
            return self._execute(specs)
        slots, missing = self.cache.partition(specs)
        self.last_cache_hits = len(specs) - len(missing)
        if missing:
            fresh = self._execute([specs[i] for i in missing])
            for index, result in zip(missing, fresh):
                try:
                    self.cache.put(result)
                except OSError as error:
                    # Never lose an already-computed sweep to a cache-write
                    # failure (read-only dir, disk full): mirror the read
                    # side, where bad entries degrade to misses.
                    warnings.warn(
                        f"result cache write failed ({error}); "
                        "continuing without caching this cell",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                slots[index] = result
        return [result for result in slots if result is not None]

    def _execute(self, specs: Sequence[ExperimentSpec]) -> List[RunResult]:
        if self.jobs == 1 or len(specs) <= 1:
            return [spec.execute() for spec in specs]
        try:
            ctx = multiprocessing.get_context(self.start_method)
            pool = ctx.Pool(processes=min(self.jobs, len(specs)))
        except (OSError, ImportError):
            # Restricted environments (no /dev/shm, no fork) cannot build a
            # pool at all; fall back to the serial path rather than failing
            # the sweep.  Errors raised *inside* workers (bad specs, genuine
            # runtime failures) propagate — they would fail serially too.
            return [spec.execute() for spec in specs]
        with pool:
            payloads = pool.map(_execute_payload, [s.to_json() for s in specs])
        return [RunResult.from_dict(json.loads(p)) for p in payloads]


def results_payload(results: Sequence[RunResult]) -> Dict[str, Any]:
    """The stable JSON document a sweep writes to disk."""
    return {
        "schema": "repro.sweep/1",
        "cells": [result.to_dict() for result in results],
    }
