"""Run artifacts: what an executed :class:`ExperimentSpec` leaves behind.

The engine's :class:`RunResult` is the serializable sibling of
:class:`repro.protocols.base.RunResult` (the live harness object with
replicas, trees and the recorded history).  It carries everything the
paper-level analyses derive from a run — the classification verdict
against the refinement hierarchy, fork statistics, convergence and
fairness summaries, network counters and wall-clock timings — as plain
dictionaries, so results can be dumped to JSON, shipped back from a
worker process, and diffed across sweeps.

When the run happened in-process the live objects stay attached
(``result.run`` / ``result.classification_result``); after a JSON or
cross-process round-trip those fields are ``None`` but every derived
number survives.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.analysis.convergence import convergence_summary
from repro.analysis.fairness import fairness_report
from repro.analysis.forks import fork_statistics, merge_statistics
from repro.engine.registry import ProtocolEntry
from repro.engine.spec import ExperimentSpec
from repro.workload.merit import uniform_merit, zipf_merit

__all__ = ["RunResult", "analyse_run"]


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats so the payload is strict-JSON clean."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


@dataclass
class RunResult:
    """Serializable artifact of one executed experiment."""

    spec: ExperimentSpec
    protocol_name: str
    classification: Dict[str, Any]
    forks: Dict[str, float]
    convergence: Dict[str, Any]
    fairness: Dict[str, Any]
    network: Dict[str, Any]
    blocks: Dict[str, Any]
    timings: Dict[str, float]
    #: Streaming-monitor verdict summary; only present when the spec opted
    #: into ``monitor=True`` (kept out of the payload otherwise so existing
    #: artifacts and cache entries stay byte-identical).
    consistency: Optional[Dict[str, Any]] = None
    #: Degradation-monitor summary (divergence depth over time, heal
    #: metrics); only present when the spec injected a registered fault
    #: model, same opt-in serialization rule as ``consistency``.
    degradation: Optional[Dict[str, Any]] = None
    run: Optional[Any] = field(default=None, repr=False, compare=False)
    classification_result: Optional[Any] = field(default=None, repr=False, compare=False)

    # -- convenience --------------------------------------------------------

    @property
    def label(self) -> str:
        return self.spec.label or self.spec.protocol

    @property
    def refinement_label(self) -> str:
        return self.classification["label"]

    @property
    def matches_paper(self) -> Optional[bool]:
        return self.classification["matches_paper"]

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; ``timings`` are the only non-deterministic keys."""
        data = {
            "spec": self.spec.to_dict(),
            "protocol_name": self.protocol_name,
            "classification": dict(self.classification),
            "forks": dict(self.forks),
            "convergence": dict(self.convergence),
            "fairness": dict(self.fairness),
            "network": dict(self.network),
            "blocks": dict(self.blocks),
            "timings": dict(self.timings),
        }
        if self.consistency is not None:
            data["consistency"] = dict(self.consistency)
        if self.degradation is not None:
            data["degradation"] = dict(self.degradation)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def stable_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus ``timings`` — the deterministic payload.

        Every key left is a pure function of the spec, so two executions
        of the same cell (serial vs pooled, first attempt vs retried,
        shard vs whole-grid) compare equal on this form.  The shard-merge
        and chaos-retry invariants are asserted against it.
        """
        data = self.to_dict()
        data.pop("timings", None)
        return data

    def stable_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.stable_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            protocol_name=data["protocol_name"],
            classification=dict(data["classification"]),
            forks=dict(data["forks"]),
            convergence=dict(data["convergence"]),
            fairness=dict(data["fairness"]),
            network=dict(data["network"]),
            blocks=dict(data["blocks"]),
            timings=dict(data["timings"]),
            consistency=(
                dict(data["consistency"]) if data.get("consistency") is not None else None
            ),
            degradation=(
                dict(data["degradation"]) if data.get("degradation") is not None else None
            ),
        )


def analyse_run(
    spec: ExperimentSpec,
    entry: ProtocolEntry,
    run: Any,
    run_seconds: float,
) -> RunResult:
    """Derive every paper-level statistic from a finished protocol run."""
    from repro.protocols.classification import classify_run

    started = time.perf_counter()
    scorer = spec.build_score()
    classification = classify_run(run, score=scorer)

    forks = merge_statistics(
        {pid: fork_statistics(replica.tree) for pid, replica in run.replicas.items()}
    )
    summary = convergence_summary(run.final_chains())

    merit_name = spec.workload.merit or entry.fairness_merit
    if merit_name == "zipf":
        merit = zipf_merit(spec.replicas, exponent=spec.workload.merit_exponent)
    else:
        merit = uniform_merit(spec.replicas)
    reference_tree = next(iter(run.replicas.values())).tree
    fairness = fairness_report(reference_tree, merit)

    analysis_seconds = time.perf_counter() - started

    classification_dict: Dict[str, Any] = {
        "label": (
            classification.refinement.label()
            if classification.refinement is not None
            else "(no criterion satisfied)"
        ),
        "consistency": str(classification.consistency),
        "oracle_kind": str(classification.oracle_kind),
        "k": _json_safe(classification.k),
        "matches_paper": classification.matches_paper,
        "expected": (
            classification.expected.label() if classification.expected is not None else None
        ),
        "describe": classification.describe(),
    }

    convergence_dict = {
        "replicas": summary.replicas,
        "min_score": summary.min_score,
        "max_score": summary.max_score,
        "common_prefix_score": summary.common_prefix_score,
        "mean_pairwise_mcps": summary.mean_pairwise_mcps,
        "fully_agreeing_pairs": summary.fully_agreeing_pairs,
        "total_pairs": summary.total_pairs,
        "agreement_ratio": summary.agreement_ratio,
        "max_divergence": summary.max_divergence,
    }

    fairness_dict = {
        "shares": dict(fairness.shares),
        "merits": dict(fairness.merits),
        "ratios": dict(fairness.ratios),
        "worst_ratio": fairness.worst_ratio,
        "blocks_counted": fairness.blocks_counted,
        "describe": fairness.describe(),
    }

    network_dict = {
        "messages_sent": run.network.messages_sent,
        "messages_delivered": run.network.messages_delivered,
        "messages_dropped": run.network.messages_dropped,
        "events_processed": run.network.simulator.events_processed,
        "virtual_duration": spec.duration,
    }
    if getattr(run.network.simulator, "callback_timer", None) is not None:
        # Callback profiling enabled (repro bench --profile / timed_callbacks):
        # surface how much of the drain loop was spent inside user callbacks.
        network_dict["callback_seconds"] = run.network.simulator.callback_seconds
        network_dict["drain_seconds"] = run.network.simulator.drain_seconds

    timings = {"run_seconds": run_seconds, "analysis_seconds": analysis_seconds}
    population = getattr(run, "population", None)
    if population is not None:
        # Population workload attached: surface the client-op volume and
        # the generator's share of the run (the workload benches' floor).
        network_dict["client_ops"] = population.total_ops
        timings["workload_generation_seconds"] = population.generation_seconds

    blocks_dict = {
        "created": {pid: r.blocks_created for pid, r in run.replicas.items()},
        "adopted": {pid: r.blocks_adopted for pid, r in run.replicas.items()},
        "tree_sizes": {pid: len(r.tree) for pid, r in run.replicas.items()},
    }

    monitor = getattr(run, "monitor", None)
    degradation = getattr(run, "degradation", None)
    quarantined = getattr(run.network, "messages_quarantined", 0)
    if quarantined:
        # Only emitted when churn actually absorbed traffic, so artifacts
        # of fault-free runs are byte-identical to pre-fault ones.
        network_dict["messages_quarantined"] = quarantined

    return RunResult(
        spec=spec,
        protocol_name=run.name,
        classification=classification_dict,
        forks={k: float(v) for k, v in forks.items()},
        convergence=convergence_dict,
        fairness=fairness_dict,
        network=network_dict,
        blocks=blocks_dict,
        timings=timings,
        consistency=monitor.summary() if monitor is not None else None,
        degradation=degradation.summary() if degradation is not None else None,
        run=run,
        classification_result=classification,
    )
