"""Command-line interface: regenerate the paper's artefacts from a shell.

``python -m repro <command>`` exposes the most useful entry points without
writing any Python:

* ``table1`` — run the seven system models and print the reproduced Table 1;
* ``classify`` — run a single system model and print its classification,
  fork statistics, convergence and fairness summaries (``--monitor``
  additionally streams the consistency verdicts during the run through
  the :class:`~repro.core.consistency_index.ConsistencyMonitor`);
* ``hierarchy`` — print the Figure 8 / Figure 14 hierarchies;
* ``figures`` — check the Figure 2/3/4 example histories against both
  consistency criteria and print the verdicts;
* ``resume-run`` — finish an interrupted run from a checkpoint file
  written by ``--checkpoint-every`` (available on ``classify`` and, per
  sweep cell, on ``sweep``); the continued history is byte-identical to
  an uninterrupted run;
* ``fork-sweep`` — the fork-rate ablation (oracle bound × delay);
* ``sweep`` — expand a parameter grid into :class:`ExperimentSpec` cells,
  fan them out through a pluggable executor backend (``--backend``,
  ``--shard-index I/K``) with per-cell retries, timeouts and journaled
  resume (``--retries``, ``--timeout``, ``--journal``/``--resume``), and
  dump the results as JSON (``--cache DIR`` memoizes cells on their spec
  digest, so re-runs are served from disk without simulating anything);
* ``bench`` — the perf benchmark harness: times the selection and
  consistency-checking hot paths against their pre-index baselines,
  the streaming consistency monitor, fork-heavy protocol runs, a Table-1
  sweep and a cold/warm cached sweep, and writes ``BENCH_<date>.json``.

Every command resolves system names through the protocol registry and
routes runs through the experiment engine (:mod:`repro.engine`), so a
system registered with ``@register_protocol`` is immediately available
here.  Every command accepts ``--seed`` so results are reproducible, and
prints plain text only (no plotting dependencies).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.report import render_classification_table, render_table
from repro.core.errors import UnknownVocabularyError
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.hierarchy import message_passing_hierarchy, refinement_hierarchy
from repro.engine import (
    DEFAULT_CACHE_DIR,
    DEFAULT_CHECKPOINT_DIR,
    CellFailure,
    ChannelSpec,
    CheckpointCorruptionError,
    CheckpointWriter,
    ExperimentSpec,
    FaultSpec,
    FlakyExecutor,
    ResultCache,
    SweepRunner,
    TopologySpec,
    available_executors,
    available_protocols,
    checkpoint_path_for,
    expand_grid,
    get_protocol,
    load_checkpoint,
    make_executor,
    regime_spec,
    resume_spec_from_checkpoint,
    results_payload,
    spec_digest,
)
from repro.engine.executors import INJECTION_KINDS
from repro.engine.bench import available_scenarios, run_bench, write_report
from repro.network.faults import available_faults
from repro.network.topology import available_topologies
from repro.protocols.classification import reproduce_table1
from repro.workload.scenarios import figure2_history, figure3_history, figure4_history

__all__ = ["main", "build_parser"]


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--checkpoint-every`` / ``--checkpoint-dir`` pair (classify, sweep)."""
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "snapshot the live run every N events (crash-safe atomic "
            "writes; killed runs resume via 'repro resume-run' and sweep "
            "retries resume from the latest per-cell snapshot)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory checkpoint files are written to "
            f"(default {DEFAULT_CHECKPOINT_DIR!r}; files are named "
            "<spec-digest>.ckpt)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    systems = sorted(available_protocols())
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'Blockchain Abstract Data Type' (SPAA 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="reproduce Table 1 (system classification)")
    table1.add_argument("--replicas", type=int, default=5)
    table1.add_argument("--duration", type=float, default=100.0)
    table1.add_argument("--seed", type=int, default=7)

    classify = sub.add_parser("classify", help="run one system model and classify it")
    classify.add_argument("system", choices=systems)
    classify.add_argument("--replicas", type=int, default=5)
    classify.add_argument("--duration", type=float, default=120.0)
    classify.add_argument("--seed", type=int, default=7)
    classify.add_argument(
        "--fork-prone",
        action="store_true",
        help="use a fork-prone regime for the proof-of-work systems",
    )
    classify.add_argument(
        "--monitor",
        action="store_true",
        help="stream consistency verdicts during the run (ConsistencyMonitor)",
    )
    classify.add_argument(
        "--topology",
        default=None,
        metavar="KIND",
        help=(
            "dissemination topology: a registered kind "
            f"({', '.join(sorted(available_topologies()))}), "
            "'kind:key=value,...' for parameters "
            "(e.g. 'gossip:fanout=4'), or a JSON object"
        ),
    )
    classify.add_argument(
        "--fault",
        default=None,
        metavar="KIND",
        help=(
            "adversary to inject: a registered fault kind, "
            "'kind:key=value,...' for parameters (e.g. "
            "'partition:groups=[[\"p0\",\"p1\"],[\"p2\",\"p3\",\"p4\"]],heal_at=60'), "
            "or a JSON object; degradation metrics land in the output"
        ),
    )
    _add_checkpoint_arguments(classify)

    resume_run = sub.add_parser(
        "resume-run",
        help="finish an interrupted run from its checkpoint file",
    )
    resume_run.add_argument(
        "checkpoint",
        metavar="PATH",
        help=(
            "checkpoint file written by --checkpoint-every (classify or a "
            "sweep worker); the embedded spec resumes and is classified"
        ),
    )
    resume_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="keep snapshotting the continued run every N events to PATH",
    )

    sub.add_parser("hierarchy", help="print the Figure 8 and Figure 14 hierarchies")

    sub.add_parser("figures", help="check the Figure 2/3/4 example histories")

    fork_sweep = sub.add_parser("fork-sweep", help="fork rate vs oracle bound and delay")
    fork_sweep.add_argument("--replicas", type=int, default=5)
    fork_sweep.add_argument("--duration", type=float, default=150.0)
    fork_sweep.add_argument("--seed", type=int, default=5)
    fork_sweep.add_argument("--jobs", type=int, default=1)

    sweep = sub.add_parser(
        "sweep",
        help="grid sweep (seeds × delays × drops × replicas) through the engine",
    )
    sweep.add_argument("--protocol", required=True, choices=systems)
    sweep.add_argument("--replicas", type=int, default=5)
    sweep.add_argument("--duration", type=float, default=100.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--seeds", default=None, help="seed axis, e.g. '0:8', '1,2,5' or '3'")
    sweep.add_argument("--delays", default=None, help="channel delta axis, e.g. '1.0,2.0,4.0'")
    sweep.add_argument("--drops", default=None, help="drop-probability axis, e.g. '0.0,0.3'")
    sweep.add_argument("--replica-counts", default=None, help="replica-count axis, e.g. '4,6,8'")
    sweep.add_argument("--token-rates", default=None, help="token-rate axis, e.g. '0.1,0.4'")
    sweep.add_argument(
        "--clients",
        default=None,
        help="client-population axis, e.g. '100,1000,10000' (workload.clients)",
    )
    sweep.add_argument(
        "--client-rate",
        type=float,
        default=None,
        help="operations per client per time unit for every cell (default: runner's)",
    )
    sweep.add_argument("--oracle-bounds", default=None, help="oracle bound axis, e.g. '1,2,inf'")
    sweep.add_argument(
        "--topology",
        default=None,
        metavar="KIND",
        help="base topology for every cell (same forms as classify --topology)",
    )
    sweep.add_argument(
        "--topologies",
        default=None,
        metavar="KINDS",
        help=(
            "topology axis: comma-separated registered kinds, e.g. 'full,gossip,ring' "
            "(grid cells are labelled topology=<kind>)"
        ),
    )
    sweep.add_argument(
        "--fault",
        default=None,
        metavar="KIND",
        help="adversary for every cell (same forms as classify --fault)",
    )
    sweep.add_argument(
        "--fork-prone",
        action="store_true",
        help="start from the protocol's fork-prone regime before applying axes",
    )
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    sweep.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "execution backend: a registered executor "
            f"({', '.join(available_executors())}); default derives from "
            "--jobs (serial for 1, pool otherwise)"
        ),
    )
    sweep.add_argument(
        "--shard-index",
        default=None,
        metavar="I/K",
        help=(
            "run only shard I of K (cells I, I+K, I+2K, ... of the grid); "
            "implies --backend shard; shards sharing --cache DIR merge into "
            "the full sweep byte-identically"
        ),
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget; an over-budget worker is killed and "
            "the cell retried (enforced by process backends)"
        ),
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-attempt failed cells up to N times (exponential backoff + seeded jitter)",
    )
    sweep.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base delay before the first retry (doubles per retry; 0 disables sleeping)",
    )
    sweep.add_argument(
        "--max-failures",
        type=int,
        default=0,
        metavar="N",
        help=(
            "abort once more than N cells fail every attempt; failed cells up "
            "to the threshold degrade to CellFailure artifacts in the payload "
            "(-1 = never abort; default 0 preserves fail-fast)"
        ),
    )
    sweep.add_argument(
        "--journal",
        nargs="?",
        const="sweep.journal.jsonl",
        default=None,
        metavar="PATH",
        help=(
            "append per-cell progress (digest, attempts, status, error) to "
            "PATH (default 'sweep.journal.jsonl'); enables --resume"
        ),
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip cells the journal marks complete (successes served from "
            "--cache, failures reconstructed); requires --journal and --cache"
        ),
    )
    sweep.add_argument(
        "--flaky-rates",
        default=None,
        metavar="KIND=P,...",
        help=(
            "chaos testing: wrap the backend in the flaky executor injecting "
            "faults at the given seeded per-attempt rates, e.g. "
            "'exception=0.2,hang=0.1,kill=0.05'"
        ),
    )
    sweep.add_argument(
        "--flaky-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for --flaky-rates injection decisions (per cell digest and attempt)",
    )
    sweep.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "maintain consistency verdicts online during each cell "
            "(streaming ConsistencyMonitor; verdicts land in the JSON results)"
        ),
    )
    _add_checkpoint_arguments(sweep)
    sweep.add_argument("--out", default="sweep_results.json", help="JSON results path")
    sweep.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_DIR,
        default=None,
        metavar="DIR",
        help=(
            "memoize cells on their spec digest under DIR "
            f"(default {DEFAULT_CACHE_DIR!r}); cached cells are served from "
            "disk byte-identically, with zero simulator events"
        ),
    )

    bench = sub.add_parser(
        "bench",
        help="perf benchmark harness; writes BENCH_<date>.json for the perf trajectory",
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--scenario",
        nargs="+",
        default=None,
        metavar="NAME",
        help=(
            "run only the named scenarios/sections instead of the full suite; "
            "filtered reports record the filter under 'scenario_filter'. "
            f"Available: {', '.join(available_scenarios())}"
        ),
    )
    bench.add_argument("--jobs", type=int, default=1, help="worker processes for the sweep scenario")
    bench.add_argument("--out-dir", default=".", help="directory BENCH_<date>.json is written to")
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small scenario sizes (CI smoke); timings are not comparable to full runs",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each scenario section under cProfile and print a top-25 "
            "cumulative-time table per section (also recorded in the JSON); "
            "profiled timings/speedups are inflated and not comparable"
        ),
    )

    return parser


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _parse_axis(text: Optional[str], cast: Callable[[str], Any]) -> Optional[List[Any]]:
    """Parse ``'0:8'`` (range), ``'a,b,c'`` (list) or a single value."""
    if text is None:
        return None
    text = text.strip()
    try:
        if ":" in text:
            lo, hi = text.split(":", 1)
            return [cast(str(v)) for v in range(int(lo), int(hi))]
        return [cast(v) for v in text.split(",") if v != ""]
    except ValueError:
        raise SystemExit(
            f"repro sweep: error: cannot parse axis value {text!r} "
            "(expected 'lo:hi', 'a,b,c' or a single value)"
        ) from None


def _parse_bound(text: str) -> float:
    if text.strip() in ("inf", "∞", "none", "None"):
        return math.inf
    return float(text)


def _require_positive(value: Optional[float], flag: str, command: str) -> None:
    """Loudly reject non-positive resilience knobs (``None`` = unset = fine)."""
    if value is not None and value <= 0:
        raise SystemExit(
            f"repro {command}: error: {flag} must be > 0, got {value!r}"
        )


def _split_topology_params(rest: str) -> List[str]:
    """Split ``key=value,key=value`` on top-level commas only.

    Commas inside brackets, braces or quotes belong to a JSON value
    (``members=["p0","p1"]``), not to the pair separator.
    """
    pairs: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current = ""
    for char in rest:
        if quote is not None:
            current += char
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            current += char
        elif char in "[{":
            depth += 1
            current += char
        elif char in "]}":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            pairs.append(current)
            current = ""
        else:
            current += char
    pairs.append(current)
    return pairs


def _fault_kinds() -> List[str]:
    """Every kind ``--fault`` accepts: legacy runner kinds + the registry."""
    return sorted({"crash", "byzantine", *available_faults()})


def _parse_fault(text: str) -> FaultSpec:
    """Parse ``--fault``: a kind, ``kind:key=value,...``, or a JSON object.

    Values go through :func:`json.loads` when they parse (so
    ``heal_at=60`` is a number, ``at={"p4": 30}`` a mapping,
    ``members=["p5"]`` a list) and stay strings otherwise.  The keys
    ``crash_at``, ``byzantine`` and ``seed`` address the spec fields of
    the legacy runner faults; everything else is a constructor parameter
    of the registered fault model.
    """
    text = text.strip()
    if text.startswith("{"):
        try:
            spec = FaultSpec.from_dict(json.loads(text))
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"repro: error: cannot parse fault JSON {text!r} ({error})"
            ) from None
    elif ":" in text:
        kind, _, rest = text.partition(":")
        fields: Dict[str, Any] = {}
        params: Dict[str, Any] = {}
        for pair in _split_topology_params(rest):
            if not pair:
                continue
            key, eq, raw = pair.partition("=")
            if not eq:
                raise SystemExit(
                    f"repro: error: fault parameter {pair!r} is not 'key=value'"
                )
            try:
                value = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            key = key.strip()
            if key in ("crash_at", "byzantine", "seed"):
                fields[key] = value
            else:
                params[key] = value
        spec = FaultSpec(kind=kind.strip(), params=params, **fields)
    else:
        spec = FaultSpec(kind=text)
    if spec.kind not in _fault_kinds():
        raise SystemExit(
            f"repro: error: unknown fault {spec.kind!r} "
            f"(registered: {', '.join(_fault_kinds())})"
        )
    return spec


def _parse_topology(text: str) -> TopologySpec:
    """Parse ``--topology``: a kind, ``kind:key=value,...``, or a JSON object.

    Parameter values go through :func:`json.loads` when they parse (so
    ``fanout=4`` is an int, ``members=["p0","p1"]`` a list,
    ``include_observers=false`` a bool) and stay strings otherwise.
    """
    text = text.strip()
    if text.startswith("{"):
        try:
            spec = TopologySpec.from_dict(json.loads(text))
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"repro: error: cannot parse topology JSON {text!r} ({error})"
            ) from None
    elif ":" in text:
        kind, _, rest = text.partition(":")
        params = {}
        for pair in _split_topology_params(rest):
            if not pair:
                continue
            key, eq, raw = pair.partition("=")
            if not eq:
                raise SystemExit(
                    f"repro: error: topology parameter {pair!r} is not 'key=value'"
                )
            try:
                value = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            params[key.strip()] = value
        spec = TopologySpec(kind=kind.strip(), params=params)
    else:
        spec = TopologySpec(kind=text)
    if spec.kind not in available_topologies():
        raise SystemExit(
            f"repro: error: unknown topology {spec.kind!r} "
            f"(registered: {', '.join(sorted(available_topologies()))})"
        )
    return spec


def _regime_spec(
    system: str,
    *,
    replicas: int,
    duration: float,
    seed: int,
    fork_prone: bool,
) -> ExperimentSpec:
    """Base spec for one system, optionally in its fork-prone regime."""
    entry = get_protocol(system)
    regime = entry.fork_prone if (fork_prone and entry.fork_prone) else {}
    return regime_spec(system, regime, n=replicas, duration=duration, seed=seed)


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_table1(args: argparse.Namespace) -> str:
    results = reproduce_table1(n=args.replicas, duration=args.duration, seed=args.seed)
    return render_classification_table(results)


def _cmd_classify(args: argparse.Namespace) -> str:
    _require_positive(args.checkpoint_every, "--checkpoint-every", "classify")
    spec = _regime_spec(
        args.system,
        replicas=args.replicas,
        duration=args.duration,
        seed=args.seed,
        fork_prone=args.fork_prone,
    )
    if args.monitor:
        spec = spec.with_updates(monitor=True)
    if args.topology is not None:
        spec = spec.with_updates(topology=_parse_topology(args.topology))
    if args.fault is not None:
        spec = spec.with_updates(fault=_parse_fault(args.fault))
    if args.checkpoint_every is not None:
        # The file is named by the digest of the knob-free spec, so the
        # path is stable however often the cadence changes.
        directory = args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR
        path = checkpoint_path_for(directory, spec_digest(spec))
        spec = spec.with_updates(
            checkpoint_every=args.checkpoint_every, checkpoint_path=path
        )
    record = spec.execute()
    return _render_classification(record)


def _render_classification(record) -> str:
    lines = [
        record.classification["describe"],
        "",
        f"blocks/replica (mean): {record.forks['mean_blocks']:.1f}",
        f"fork points/replica (mean): {record.forks['mean_forks']:.2f}",
        f"wasted block ratio (mean): {record.forks['mean_wasted_ratio']:.3f}",
        f"final common prefix score: {record.convergence['common_prefix_score']}",
        f"replica agreement ratio: {record.convergence['agreement_ratio']:.2f}",
        "",
        record.fairness["describe"],
    ]
    if record.consistency is not None:
        verdicts = record.consistency["properties"]
        lines.extend(
            [
                "",
                "streaming monitor (verdicts maintained online, raw history):",
                f"  strong consistency: {record.consistency['strong']}"
                f"  eventual consistency: {record.consistency['eventual']}",
                "  "
                + "  ".join(f"{name}={holds}" for name, holds in verdicts.items()),
                f"  reads={record.consistency['reads']}"
                f"  events={record.consistency['events']}"
                f"  blocks indexed={record.consistency['blocks_indexed']}",
            ]
        )
    if record.degradation is not None:
        deg = record.degradation
        heal = (
            f"  heal_at={deg['heal_at']}  healed_at={deg['healed_at']}"
            f"  time_to_heal={deg['time_to_heal']}"
            if deg["heal_at"] is not None
            else "  (no heal time announced)"
        )
        lines.extend(
            [
                "",
                "degradation monitor (divergence among correct replicas):",
                f"  max divergence depth: {deg['max_divergence_depth']}"
                f"  final: {deg['final_divergence_depth']}"
                f"  reads: {deg['reads']}",
                heal,
            ]
        )
    return "\n".join(lines)


def _cmd_resume_run(args: argparse.Namespace) -> str:
    _require_positive(args.checkpoint_every, "--checkpoint-every", "resume-run")
    try:
        snapshot = load_checkpoint(args.checkpoint)
    except FileNotFoundError:
        raise SystemExit(
            f"repro resume-run: error: no checkpoint at {args.checkpoint!r}"
        ) from None
    except CheckpointCorruptionError as error:
        raise SystemExit(f"repro resume-run: error: {error}") from None
    if snapshot.spec is None:
        raise SystemExit(
            "repro resume-run: error: checkpoint carries no experiment spec "
            "(it was written by a raw checkpoint sink, not the CLI/sweep path)"
        )
    spec = ExperimentSpec.from_dict(snapshot.spec)
    writer = (
        CheckpointWriter(args.checkpoint, spec=snapshot.spec)
        if args.checkpoint_every is not None
        else None
    )
    record = resume_spec_from_checkpoint(
        spec, snapshot, every=args.checkpoint_every, writer=writer
    )
    header = (
        f"resumed {spec.label or spec.protocol!r} from {args.checkpoint} "
        f"(clock {snapshot.clock:.2f}, {snapshot.event_count} events, "
        f"phase {snapshot.phase!r})"
    )
    return f"{header}\n\n{_render_classification(record)}"


def _cmd_hierarchy(_: argparse.Namespace) -> str:
    lines = ["Figure 8 — full hierarchy (a -> b: a is stronger than b)"]
    for vertex, weaker in refinement_hierarchy().items():
        targets = ", ".join(w.label() for w in weaker) or "(bottom)"
        lines.append(f"  {vertex.label():28s} -> {targets}")
    lines.append("")
    lines.append("Figure 14 — message-passing feasible vertices (Theorem 4.8)")
    feasible = message_passing_hierarchy()
    for vertex in refinement_hierarchy():
        verdict = "implementable" if vertex in feasible else "IMPOSSIBLE"
        lines.append(f"  {vertex.label():28s} {verdict}")
    return "\n".join(lines)


def _cmd_figures(_: argparse.Namespace) -> str:
    rows: List[List[object]] = []
    for name, history, expected_sc, expected_ec in (
        ("Figure 2", figure2_history(), True, True),
        ("Figure 3", figure3_history(), False, True),
        ("Figure 4", figure4_history(), False, False),
    ):
        sc = check_strong_consistency(history).holds
        ec = check_eventual_consistency(history).holds
        status = "as in paper" if (sc, ec) == (expected_sc, expected_ec) else "MISMATCH"
        rows.append([name, sc, ec, status])
    return render_table(
        ["history", "strong consistency", "eventual consistency", "verdict"],
        rows,
        title="Figures 2–4 — example histories",
    )


def _cmd_fork_sweep(args: argparse.Namespace) -> str:
    bounds = (1.0, 2.0, math.inf)
    deltas = (1.0, 2.0, 4.0)
    specs = [
        ExperimentSpec(
            protocol="bitcoin",
            replicas=args.replicas,
            duration=args.duration,
            seed=args.seed,
            channel=ChannelSpec(
                kind="synchronous", params={"delta": delta, "min_delay": delta / 4}
            ),
            oracle_k=bound,
            params={"token_rate": 0.4},
            label=f"k={bound} delta={delta}",
        )
        for bound in bounds
        for delta in deltas
    ]
    records = SweepRunner(jobs=args.jobs).run(specs)
    rows = [
        [
            "∞" if math.isinf(spec.oracle_k) else int(spec.oracle_k),
            spec.channel.params["delta"],
            round(record.forks["mean_blocks"], 1),
            round(record.forks["mean_forks"], 2),
            round(record.forks["mean_wasted_ratio"], 3),
        ]
        for spec, record in zip(specs, records)
    ]
    return render_table(
        ["k", "delay", "blocks/replica", "fork points/replica", "wasted ratio"],
        rows,
        title="Fork-rate ablation",
    )


def _parse_shard(text: str) -> tuple:
    """``'I/K'`` → ``(I, K)`` with range validation (0-based index)."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(
            f"repro sweep: error: cannot parse --shard-index {text!r} (expected I/K, e.g. 0/4)"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise SystemExit(
            f"repro sweep: error: --shard-index {text!r} out of range (need 0 <= I < K)"
        )
    return index, count


def _parse_flaky_rates(text: str) -> Dict[str, float]:
    """``'exception=0.2,hang=0.1'`` → rate mapping, kinds validated."""
    rates: Dict[str, float] = {}
    for item in text.split(","):
        if not item:
            continue
        try:
            kind, value = item.split("=", 1)
            rates[kind.strip()] = float(value)
        except ValueError:
            raise SystemExit(
                f"repro sweep: error: cannot parse --flaky-rates item {item!r} "
                "(expected KIND=PROBABILITY)"
            ) from None
    unknown = sorted(set(rates) - set(INJECTION_KINDS))
    if unknown:
        raise SystemExit(
            f"repro sweep: error: unknown injection kind(s) {', '.join(map(repr, unknown))}; "
            f"registered: {', '.join(INJECTION_KINDS)}"
        )
    return rates


def _build_sweep_executor(args: argparse.Namespace, shard: Optional[tuple]):
    """Resolve --backend / --shard-index / --flaky-rates into an executor.

    ``None`` means "let the runner derive the default from --jobs".
    """
    backend = args.backend
    if shard is not None:
        if backend not in (None, "shard"):
            raise SystemExit(
                f"repro sweep: error: --shard-index requires --backend shard, not {backend!r}"
            )
        backend = "shard"
    elif backend == "shard":
        raise SystemExit(
            "repro sweep: error: --backend shard requires --shard-index I/K"
        )
    rates = _parse_flaky_rates(args.flaky_rates) if args.flaky_rates is not None else None
    checkpoint_every = args.checkpoint_every
    checkpoint_dir = None
    if checkpoint_every is not None:
        if backend == "serial":
            raise SystemExit(
                "repro sweep: error: --checkpoint-every requires a process "
                "backend (pool/shard/flaky), not --backend serial"
            )
        checkpoint_dir = args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR
    executor = None
    if backend is not None:
        try:
            executor = make_executor(
                backend,
                jobs=args.jobs,
                shard_index=shard[0] if shard is not None else None,
                shard_count=shard[1] if shard is not None else None,
                rates=rates,
                seed=args.flaky_seed,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
            )
        except UnknownVocabularyError as error:
            raise SystemExit(f"repro sweep: error: {error}") from None
    elif checkpoint_every is not None:
        # Checkpointing needs workers: replace the jobs-derived default
        # (which would be serial for --jobs 1) with a checkpointing pool.
        executor = make_executor(
            "pool",
            jobs=args.jobs,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
    if rates is not None and not isinstance(executor, FlakyExecutor):
        # --flaky-rates composes with any backend: wrap whatever was chosen
        # (or the jobs-derived default) in the chaos executor.
        inner = executor
        executor = make_executor(
            "flaky",
            jobs=args.jobs,
            rates=rates,
            seed=args.flaky_seed,
            inner=inner,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
    return executor


def _cmd_sweep(args: argparse.Namespace) -> str:
    _require_positive(args.timeout, "--timeout", "sweep")
    _require_positive(args.checkpoint_every, "--checkpoint-every", "sweep")
    if args.retries < 0:
        raise SystemExit(
            f"repro sweep: error: --retries must be >= 0, got {args.retries}"
        )
    base = _regime_spec(
        args.protocol,
        replicas=args.replicas,
        duration=args.duration,
        seed=args.seed,
        fork_prone=args.fork_prone,
    )
    if args.monitor:
        base = base.with_updates(monitor=True)
    if args.topology is not None:
        base = base.with_updates(topology=_parse_topology(args.topology))
    if args.fault is not None:
        base = base.with_updates(fault=_parse_fault(args.fault))

    axes: Dict[str, Sequence[Any]] = {}
    if args.topologies is not None:
        kinds = []
        for item in args.topologies.split(","):
            if item == "":
                continue
            if ":" in item or item.lstrip().startswith("{"):
                raise SystemExit(
                    "repro sweep: error: --topologies takes bare registered kinds; "
                    "use --topology (base spec) for parameterized topologies"
                )
            kinds.append(_parse_topology(item).kind)
        axes["topology"] = kinds
    seeds = _parse_axis(args.seeds, int)
    if seeds is not None:
        axes["seed"] = seeds
    replica_counts = _parse_axis(args.replica_counts, int)
    if replica_counts is not None:
        axes["replicas"] = replica_counts
    delays = _parse_axis(args.delays, float)
    if delays is not None:
        axes["channel.delta"] = delays
    drops = _parse_axis(args.drops, float)
    if drops is not None:
        axes["channel.drop_probability"] = drops
    token_rates = _parse_axis(args.token_rates, float)
    if token_rates is not None:
        axes["params.token_rate"] = token_rates
    clients = _parse_axis(args.clients, int)
    if clients is not None:
        axes["workload.clients"] = clients
    if args.client_rate is not None:
        import dataclasses

        base = base.with_updates(
            workload=dataclasses.replace(base.workload, client_rate=args.client_rate)
        )
    bounds = _parse_axis(args.oracle_bounds, _parse_bound)
    if bounds is not None:
        axes["oracle_k"] = bounds

    specs = expand_grid(base, axes)
    shard = _parse_shard(args.shard_index) if args.shard_index is not None else None
    executor = _build_sweep_executor(args, shard)
    cache = ResultCache(args.cache) if args.cache is not None else None
    if args.resume and args.journal is None:
        raise SystemExit("repro sweep: error: --resume requires --journal")
    if args.resume and cache is None:
        raise SystemExit(
            "repro sweep: error: --resume requires --cache "
            "(completed cells are restored from the result cache)"
        )
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        executor=executor,
        retries=args.retries,
        timeout=args.timeout,
        backoff=args.retry_backoff,
        max_failures=None if args.max_failures < 0 else args.max_failures,
        journal=args.journal,
        resume=args.resume,
    )
    records = runner.run(specs)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results_payload(records, shard=shard), handle, sort_keys=True, indent=2)
        handle.write("\n")

    rows = []
    for record in records:
        if isinstance(record, CellFailure):
            rows.append(
                [
                    record.label,
                    record.spec.seed,
                    f"FAILED after {record.attempts} attempt(s)",
                    record.error.get("type") or "-",
                    "-",
                ]
            )
        else:
            rows.append(
                [
                    record.label,
                    record.spec.seed,
                    record.classification["label"],
                    round(record.forks["mean_forks"], 2),
                    round(record.convergence["agreement_ratio"], 2),
                ]
            )
    table = render_table(
        ["cell", "seed", "classification", "fork points/replica", "agreement"],
        rows,
        title=f"Sweep — {args.protocol} ({len(records)} cells, jobs={args.jobs})",
    )
    summary = f"wrote {len(records)} cells to {args.out}"
    if shard is not None:
        summary += f" [shard {shard[0]}/{shard[1]}: {len(records)}/{len(specs)} grid cells]"
    if cache is not None:
        summary += (
            f" ({runner.last_cache_hits}/{len(records)} cells from cache {args.cache})"
        )
    if runner.last_resumed:
        summary += f", {runner.last_resumed} resumed from journal"
    if runner.last_failures:
        summary += f", {runner.last_failures} FAILED (see payload)"
    return f"{table}\n\n{summary}"


def _cmd_bench(args: argparse.Namespace) -> str:
    try:
        report = run_bench(
            seed=args.seed,
            quick=args.quick,
            jobs=args.jobs,
            profile=args.profile,
            scenarios=args.scenario,
        )
    except UnknownVocabularyError as error:
        # Unknown --scenario names surface the uniform vocabulary error;
        # re-raise as a clean CLI failure instead of a traceback.  (Other
        # exceptions keep their tracebacks — they are bugs, not usage.)
        raise SystemExit(f"repro bench: error: {error}") from None
    path = write_report(report, args.out_dir)

    rows: List[List[object]] = []
    for name, data in sorted(report["scenarios"].items()):
        # Fast-path scenarios: timed against an in-run reference baseline.
        fast_key = next(
            (k for k in ("indexed_seconds", "batched_seconds") if k in data), None
        )
        if fast_key is not None:
            seconds = data[fast_key]
            baseline = f"{data['reference_seconds']:.3f}s"
            speedup = f"{data['speedup']:.1f}x"
        elif "cold_seconds" in data:
            seconds = data["warm_seconds"]
            baseline = f"{data['cold_seconds']:.3f}s"
            speedup = f"{data['speedup']:.1f}x" if data["speedup"] else "-"
        else:
            seconds = data["seconds"]
            baseline = "-"
            speedup = "-"
        rows.append([name, f"{seconds:.3f}s", baseline, speedup])
    table = render_table(
        ["scenario", "seconds", "baseline", "speedup"],
        rows,
        title=f"Perf bench — seed={args.seed}{' (quick)' if args.quick else ''}",
    )
    sections = [table]
    for name, entry in sorted(report.get("profiles", {}).items()):
        sections.append(
            f"profile [{name}] — scenarios: {', '.join(entry['scenarios'])}\n"
            f"{entry['top25_cumulative'].rstrip()}"
        )
    sections.append(f"wrote {path}")
    return "\n\n".join(sections)


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _cmd_table1,
    "classify": _cmd_classify,
    "resume-run": _cmd_resume_run,
    "hierarchy": _cmd_hierarchy,
    "figures": _cmd_figures,
    "fork-sweep": _cmd_fork_sweep,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
