"""Command-line interface: regenerate the paper's artefacts from a shell.

``python -m repro <command>`` exposes the most useful entry points without
writing any Python:

* ``table1`` — run the seven system models and print the reproduced Table 1;
* ``classify`` — run a single system model and print its classification,
  fork statistics, convergence and fairness summaries;
* ``hierarchy`` — print the Figure 8 / Figure 14 hierarchies;
* ``figures`` — check the Figure 2/3/4 example histories against both
  consistency criteria and print the verdicts;
* ``fork-sweep`` — the fork-rate ablation (oracle bound × delay).

Every command accepts ``--seed`` so results are reproducible, and prints
plain text only (no plotting dependencies).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.convergence import convergence_summary
from repro.analysis.fairness import fairness_report
from repro.analysis.forks import fork_statistics, merge_statistics
from repro.analysis.report import render_classification_table, render_table
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.hierarchy import message_passing_hierarchy, refinement_hierarchy
from repro.network.channels import SynchronousChannel
from repro.protocols.algorand import run_algorand
from repro.protocols.byzcoin import run_byzcoin
from repro.protocols.classification import classify_run, reproduce_table1
from repro.protocols.ghost import run_ethereum
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.nakamoto import run_bitcoin
from repro.protocols.peercensus import run_peercensus
from repro.protocols.redbelly import run_redbelly
from repro.workload.merit import uniform_merit, zipf_merit
from repro.workload.scenarios import figure2_history, figure3_history, figure4_history

__all__ = ["main", "build_parser"]

SYSTEMS: Dict[str, Callable[..., object]] = {
    "bitcoin": run_bitcoin,
    "ethereum": run_ethereum,
    "byzcoin": run_byzcoin,
    "algorand": run_algorand,
    "peercensus": run_peercensus,
    "redbelly": run_redbelly,
    "hyperledger": run_hyperledger,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'Blockchain Abstract Data Type' (SPAA 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="reproduce Table 1 (system classification)")
    table1.add_argument("--replicas", type=int, default=5)
    table1.add_argument("--duration", type=float, default=100.0)
    table1.add_argument("--seed", type=int, default=7)

    classify = sub.add_parser("classify", help="run one system model and classify it")
    classify.add_argument("system", choices=sorted(SYSTEMS))
    classify.add_argument("--replicas", type=int, default=5)
    classify.add_argument("--duration", type=float, default=120.0)
    classify.add_argument("--seed", type=int, default=7)
    classify.add_argument(
        "--fork-prone",
        action="store_true",
        help="use a fork-prone regime for the proof-of-work systems",
    )

    sub.add_parser("hierarchy", help="print the Figure 8 and Figure 14 hierarchies")

    sub.add_parser("figures", help="check the Figure 2/3/4 example histories")

    sweep = sub.add_parser("fork-sweep", help="fork rate vs oracle bound and delay")
    sweep.add_argument("--replicas", type=int, default=5)
    sweep.add_argument("--duration", type=float, default=150.0)
    sweep.add_argument("--seed", type=int, default=5)

    return parser


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_table1(args: argparse.Namespace) -> str:
    results = reproduce_table1(n=args.replicas, duration=args.duration, seed=args.seed)
    return render_classification_table(results)


def _cmd_classify(args: argparse.Namespace) -> str:
    runner = SYSTEMS[args.system]
    kwargs = {"n": args.replicas, "duration": args.duration, "seed": args.seed}
    if args.system in ("bitcoin", "ethereum") and args.fork_prone:
        kwargs["token_rate"] = 0.4
        kwargs["channel"] = SynchronousChannel(delta=3.0, min_delay=0.5, seed=args.seed)
    run = runner(**kwargs)

    classification = classify_run(run)
    forks = merge_statistics({pid: fork_statistics(r.tree) for pid, r in run.replicas.items()})
    convergence = convergence_summary(run.final_chains())
    merit = (
        zipf_merit(args.replicas)
        if args.system in ("byzcoin", "peercensus")
        else uniform_merit(args.replicas)
    )
    reference_tree = next(iter(run.replicas.values())).tree
    fairness = fairness_report(reference_tree, merit)

    lines = [
        classification.describe(),
        "",
        f"blocks/replica (mean): {forks['mean_blocks']:.1f}",
        f"fork points/replica (mean): {forks['mean_forks']:.2f}",
        f"wasted block ratio (mean): {forks['mean_wasted_ratio']:.3f}",
        f"final common prefix score: {convergence.common_prefix_score}",
        f"replica agreement ratio: {convergence.agreement_ratio:.2f}",
        "",
        fairness.describe(),
    ]
    return "\n".join(lines)


def _cmd_hierarchy(_: argparse.Namespace) -> str:
    lines = ["Figure 8 — full hierarchy (a -> b: a is stronger than b)"]
    for vertex, weaker in refinement_hierarchy().items():
        targets = ", ".join(w.label() for w in weaker) or "(bottom)"
        lines.append(f"  {vertex.label():28s} -> {targets}")
    lines.append("")
    lines.append("Figure 14 — message-passing feasible vertices (Theorem 4.8)")
    feasible = message_passing_hierarchy()
    for vertex in refinement_hierarchy():
        verdict = "implementable" if vertex in feasible else "IMPOSSIBLE"
        lines.append(f"  {vertex.label():28s} {verdict}")
    return "\n".join(lines)


def _cmd_figures(_: argparse.Namespace) -> str:
    rows: List[List[object]] = []
    for name, history, expected_sc, expected_ec in (
        ("Figure 2", figure2_history(), True, True),
        ("Figure 3", figure3_history(), False, True),
        ("Figure 4", figure4_history(), False, False),
    ):
        sc = check_strong_consistency(history).holds
        ec = check_eventual_consistency(history).holds
        status = "as in paper" if (sc, ec) == (expected_sc, expected_ec) else "MISMATCH"
        rows.append([name, sc, ec, status])
    return render_table(
        ["history", "strong consistency", "eventual consistency", "verdict"],
        rows,
        title="Figures 2–4 — example histories",
    )


def _cmd_fork_sweep(args: argparse.Namespace) -> str:
    from repro.oracle.tape import TapeFamily
    from repro.oracle.theta import FrugalOracle, ProdigalOracle

    rows = []
    for bound in (1, 2, None):
        for delta in (1.0, 2.0, 4.0):
            tapes = TapeFamily(seed=args.seed, probability_scale=0.4)
            oracle = ProdigalOracle(tapes=tapes) if bound is None else FrugalOracle(k=bound, tapes=tapes)
            run = run_bitcoin(
                n=args.replicas,
                duration=args.duration,
                token_rate=0.4,
                seed=args.seed,
                channel=SynchronousChannel(delta=delta, min_delay=delta / 4, seed=args.seed),
                oracle=oracle,
            )
            stats = merge_statistics(
                {pid: fork_statistics(r.tree) for pid, r in run.replicas.items()}
            )
            rows.append(
                [
                    "∞" if bound is None else bound,
                    delta,
                    round(stats["mean_blocks"], 1),
                    round(stats["mean_forks"], 2),
                    round(stats["mean_wasted_ratio"], 3),
                ]
            )
    return render_table(
        ["k", "delay", "blocks/replica", "fork points/replica", "wasted ratio"],
        rows,
        title="Fork-rate ablation",
    )


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _cmd_table1,
    "classify": _cmd_classify,
    "hierarchy": _cmd_hierarchy,
    "figures": _cmd_figures,
    "fork-sweep": _cmd_fork_sweep,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
