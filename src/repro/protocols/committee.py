"""Generic committee/consensus engine used by the strongly consistent systems.

ByzCoin, Algorand, PeerCensus, Red Belly and Hyperledger Fabric all share
the same abstract structure once viewed through the paper's framework:

1. in each round, some mechanism designates a *proposer* (proof-of-work
   lottery, stake-weighted sortition, round-robin over a consortium, or a
   fixed ordering service);
2. the proposer obtains and consumes a token from the **frugal oracle with
   k = 1**, so at most one block can extend a given parent;
3. a vote phase (the PBFT / BA* / total-order-broadcast part) makes every
   replica commit the same block, after which every replica's local
   BlockTree remains a single chain.

:class:`CommitteeReplica` implements that skeleton over the message-
passing substrate: ``PROPOSAL`` and ``VOTE`` messages, a quorum rule, and
the replication events (``send``/``receive``/``update``) the paper's
Section 4 analyses expect.  The individual system modules configure the
proposer-selection strategy, the merit distribution and the workload, and
document how the real system maps onto this skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.block import Block
from repro.core.consistency_index import ConsistencyMonitor
from repro.core.selection import FixedTipSelection, LongestChain
from repro.network.channels import ChannelModel, SynchronousChannel
from repro.network.faults import FaultModel
from repro.network.simulator import Message, Network
from repro.network.topology import Committee, Topology
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import FrugalOracle, TokenOracle, ValidatedBlock
from repro.protocols.base import BlockchainReplica, ReplicaConfig, RunResult, run_protocol
from repro.workload.merit import MeritDistribution, uniform_merit
from repro.workload.transactions import TransactionGenerator

__all__ = ["ProposerStrategy", "CommitteeConfig", "CommitteeReplica", "run_committee_protocol"]

PROPOSAL = "proposal"
VOTE = "vote"

#: A proposer strategy maps a round number to the proposing process id.
ProposerStrategy = Callable[[int], str]


# The strategy factories return picklable callable objects (not nested
# closures): a strategy is stored on every replica's ``CommitteeConfig``
# and therefore rides checkpoint snapshots.  Each strategy is stateless —
# its draw is a pure function of the round number — so a pickle
# round-trip cannot perturb proposer selection.


class _RoundRobinProposer:
    """Rotate the proposer role through the committee."""

    __slots__ = ("members",)

    def __init__(self, members: Tuple[str, ...]) -> None:
        self.members = members

    def __call__(self, round_number: int) -> str:
        return self.members[round_number % len(self.members)]


class _FixedProposer:
    """A single, fixed proposer."""

    __slots__ = ("leader",)

    def __init__(self, leader: str) -> None:
        self.leader = leader

    def __call__(self, round_number: int) -> str:  # noqa: ARG002
        return self.leader


class _WeightedLotteryProposer:
    """Merit-weighted per-round lottery; fresh seeded rng per draw."""

    __slots__ = ("members", "weights", "seed")

    def __init__(self, members: Tuple[str, ...], weights: np.ndarray, seed: int) -> None:
        self.members = members
        self.weights = weights
        self.seed = seed

    def __call__(self, round_number: int) -> str:
        rng = np.random.default_rng((self.seed, round_number))
        return str(rng.choice(self.members, p=self.weights))


def round_robin_proposer(committee: Sequence[str]) -> ProposerStrategy:
    """Rotate the proposer role through the committee (Red Belly, PBFT-style)."""
    members = tuple(committee)
    if not members:
        raise ValueError("committee must be non-empty")
    return _RoundRobinProposer(members)


def fixed_proposer(leader: str) -> ProposerStrategy:
    """A single, fixed proposer (Hyperledger Fabric's ordering service)."""
    return _FixedProposer(leader)


def weighted_lottery_proposer(
    merit: MeritDistribution, seed: int = 0, committee: Optional[Sequence[str]] = None
) -> ProposerStrategy:
    """Merit-weighted per-round lottery (PoW leader election, stake sortition).

    The draw for round ``r`` is a deterministic function of ``(seed, r)``
    so every replica computes the same proposer without communication —
    the abstraction of "highest-priority committee member" in Algorand and
    of "first miner to find the key block" in ByzCoin/PeerCensus.
    """
    members = tuple(committee) if committee is not None else merit.writers()
    if not members:
        raise ValueError("no eligible proposers")
    weights = np.array([merit.merit_of(pid) for pid in members], dtype=float)
    if weights.sum() <= 0:
        weights = np.ones(len(members))
    weights = weights / weights.sum()
    return _WeightedLotteryProposer(members, weights, seed)


@dataclass(frozen=True)
class CommitteeConfig:
    """Configuration of the committee engine."""

    committee: Tuple[str, ...]
    proposer_strategy: ProposerStrategy
    round_interval: float = 5.0
    quorum_fraction: float = 2.0 / 3.0
    transactions_per_block: int = 4
    max_token_attempts: int = 200

    def quorum(self) -> int:
        """Number of votes needed to commit (strict majority of the fraction)."""
        return int(np.floor(self.quorum_fraction * len(self.committee))) + 1


class CommitteeReplica(BlockchainReplica):
    """A replica of a committee/consensus-based blockchain."""

    def __init__(
        self,
        pid: str,
        oracle: TokenOracle,
        config: ReplicaConfig,
        committee_config: CommitteeConfig,
        tx_generator: Optional[TransactionGenerator] = None,
    ) -> None:
        if oracle.k != 1:
            raise ValueError("committee protocols require the frugal oracle with k = 1")
        super().__init__(pid, oracle, config)
        self.committee_config = committee_config
        self.tx_generator = tx_generator if tx_generator is not None else TransactionGenerator()
        self.round = 0
        self.blocks_committed = 0
        self._pending_blocks: Dict[str, Block] = {}
        self._received_blocks: Set[str] = set()
        self._votes: Dict[str, Set[str]] = {}
        self._committed: Set[str] = set()
        self._pending_validated: Dict[str, ValidatedBlock] = {}
        self._append_tokens: Dict[str, object] = {}

    # -- round machinery ---------------------------------------------------------------

    def on_start(self) -> None:
        super().on_start()
        self.schedule(self.committee_config.round_interval, self._round_tick)

    def _round_tick(self) -> None:
        if not self.producing:
            return
        self.round += 1
        if self._is_proposer(self.round) and self.pid in self.committee_config.committee:
            self._propose()
        self.schedule(self.committee_config.round_interval, self._round_tick)

    def _is_proposer(self, round_number: int) -> bool:
        return self.committee_config.proposer_strategy(round_number) == self.pid

    # -- proposal ------------------------------------------------------------------------

    def _propose(self) -> None:
        if self.mempool:
            # Population workload attached: propose real client operations.
            payload = self.drain_mempool(self.committee_config.transactions_per_block)
        else:
            payload = self.tx_generator.payload(
                self.pid, self.committee_config.transactions_per_block
            )
        candidate = self.make_candidate(payload=payload)
        parent = self.current_tip()
        validated: Optional[ValidatedBlock] = None
        for _ in range(self.committee_config.max_token_attempts):
            validated = self.oracle.get_token(parent, candidate, process=self.pid)
            if validated is not None:
                break
        if validated is None:
            return
        consumed = self.oracle.consume_token(validated, process=self.pid)
        if not any(v.block_id == validated.block_id for v in consumed):
            # Another proposer already consumed the single token for this
            # parent (possible when rounds overlap): abandon the proposal.
            return
        block = validated.block
        self._pending_validated[block.block_id] = validated
        # The append operation starts now (its response is recorded at commit
        # time), so that every read returning the block is preceded by the
        # append invocation, as Block Validity requires.
        self._append_tokens[block.block_id] = self.recorder.invoke(self.pid, "append", block)
        # The proposal broadcast *is* the dissemination of the block.
        self.recorder.send(self.pid, block.parent_id or "b0", block.block_id)
        self.broadcast(PROPOSAL, block, include_self=True)

    # -- message handling ------------------------------------------------------------------

    def on_protocol_message(self, message: Message) -> None:
        if message.kind == PROPOSAL:
            self._handle_proposal(message.payload)
        elif message.kind == VOTE:
            block_id, voter = message.payload
            self._handle_vote(block_id, voter)

    def _handle_proposal(self, block: Block) -> None:
        if block.block_id in self._received_blocks:
            return
        self._received_blocks.add(block.block_id)
        self._pending_blocks[block.block_id] = block
        self.recorder.receive(self.pid, block.parent_id or "b0", block.block_id)
        if self.pid in self.committee_config.committee:
            self.broadcast(VOTE, (block.block_id, self.pid), include_self=True)
        self._maybe_commit(block.block_id)

    def _handle_vote(self, block_id: str, voter: str) -> None:
        if voter not in self.committee_config.committee:
            return
        self._votes.setdefault(block_id, set()).add(voter)
        self._maybe_commit(block_id)

    # -- commit ---------------------------------------------------------------------------

    def _maybe_commit(self, block_id: str) -> None:
        if block_id in self._committed:
            return
        votes = self._votes.get(block_id, set())
        if len(votes) < self.committee_config.quorum():
            return
        block = self._pending_blocks.get(block_id)
        if block is None:
            return
        if block.parent_id is not None and block.parent_id not in self.tree:
            # Parent not committed locally yet; retry once it arrives.
            return
        self._committed.add(block_id)
        created_here = block.creator == self.pid
        if created_here:
            applied = self._insert(block)
            token = self._append_tokens.pop(block_id, None)
            if token is not None:
                self.recorder.respond(token, applied)
            if applied:
                self.blocks_created += 1
        else:
            applied = self._insert(block)
            if applied:
                self.blocks_adopted += 1
        if applied:
            self.blocks_committed += 1
            self.recorder.update(self.pid, block.parent_id or "b0", block.block_id)
            # Pin the selection to the committed chain tip: the replica's
            # view is the single decided chain (the trivial projection of
            # the paper's Section 5 strongly consistent systems).
            self.config = ReplicaConfig(
                selection=FixedTipSelection(tip_id=self._chain_tip()),
                read_interval=self.config.read_interval,
                use_lrc=self.config.use_lrc,
                merit=self.config.merit,
            )
            # A commit may unblock a child proposal that arrived early.
            for other_id, other in list(self._pending_blocks.items()):
                if other_id not in self._committed and other.parent_id == block_id:
                    self._maybe_commit(other_id)

    def _chain_tip(self) -> str:
        return LongestChain()(self.tree).tip.block_id


def run_committee_protocol(
    name: str,
    *,
    n: int = 7,
    duration: float = 200.0,
    merit: Optional[MeritDistribution] = None,
    committee: Optional[Sequence[str]] = None,
    proposer_strategy_factory: Optional[
        Callable[[Tuple[str, ...], MeritDistribution], ProposerStrategy]
    ] = None,
    round_interval: float = 5.0,
    channel: Optional[ChannelModel] = None,
    read_interval: float = 5.0,
    transactions_per_block: int = 4,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    core: str = "array",
    clients: Optional[int] = None,
    client_rate: float = 0.5,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run a committee-based protocol and return its :class:`RunResult`.

    ``proposer_strategy_factory`` receives the committee and the merit
    distribution and returns the proposer strategy; the default is
    round-robin (the Red Belly / generic BFT pattern).

    The committee is expressed structurally through the network's
    :class:`~repro.network.topology.Committee` topology (members fan out
    to everyone so observers learn decided blocks; observers address the
    committee only) rather than ad-hoc per-message filtering — for member
    senders its receiver lists coincide with full mesh, so this is
    event-for-event identical to the pre-topology runs.  Pass
    ``topology=`` to override (e.g. ``Committee(members,
    include_observers=False)`` for committee-only dissemination, or a
    :class:`~repro.network.topology.Sharded` overlay).
    """
    merit_distribution = merit if merit is not None else uniform_merit(n)
    all_pids = tuple(f"p{i}" for i in range(n))
    committee_ids = tuple(committee) if committee is not None else all_pids
    strategy = (
        proposer_strategy_factory(committee_ids, merit_distribution)
        if proposer_strategy_factory is not None
        else round_robin_proposer(committee_ids)
    )
    committee_config = CommitteeConfig(
        committee=committee_ids,
        proposer_strategy=strategy,
        round_interval=round_interval,
        transactions_per_block=transactions_per_block,
    )
    # The frugal oracle with k = 1; committee members draw from their tape
    # until a token is granted, so the scale just bounds the retry count.
    tapes = TapeFamily(seed=seed, probability_scale=float(len(committee_ids)))
    oracle = FrugalOracle(k=1, tapes=tapes)
    tx_seed = seed + 1

    def factory(pid: str, orc: TokenOracle, network: Network) -> CommitteeReplica:  # noqa: ARG001
        config = ReplicaConfig(
            selection=FixedTipSelection(),
            read_interval=read_interval,
            use_lrc=True,
            merit=max(merit_distribution.merit_of(pid), 1e-3),
        )
        return CommitteeReplica(
            pid,
            orc,
            config,
            committee_config,
            tx_generator=TransactionGenerator(seed=tx_seed + sum(ord(c) for c in pid)),
        )

    return run_protocol(
        name,
        factory,
        oracle,
        n=n,
        duration=duration,
        channel=channel if channel is not None else SynchronousChannel(delta=0.5, seed=seed),
        monitor=monitor,
        topology=topology if topology is not None else Committee(members=committee_ids),
        core=core,
        clients=clients,
        client_rate=client_rate,
        client_seed=seed,
        fault=fault,
    )
