"""Hyperledger Fabric model (Section 5.7).

Hyperledger Fabric is a permissioned system: any process may read, a
subset ``M`` may append; executed transactions are ordered by an atomic
broadcast (the ordering service) into blocks, cut when a size or timeout
condition triggers.  "By construction, HyperLedger Fabric ensures that a
unique token (k = 1) is consumed, thus [it] implements a strongly
consistent BlockTree": ``R(BT-ADT_SC, Θ_{F,k=1})``.

Mapping onto the committee engine:

* the proposer is the *fixed* ordering-service leader (endorsement is not
  modelled — it does not affect the ADT-level classification);
* the committee (the peers that ack/commit blocks) is the writer set;
* block contents come from a client transaction workload, with blocks cut
  every ``round_interval`` (the timeout flavour of Fabric's stop
  condition) holding at most ``transactions_per_block`` transactions (the
  size flavour);
* oracle = Θ_{F,k=1}.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.consistency_index import ConsistencyMonitor
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.topology import Topology
from repro.protocols.base import RunResult
from repro.protocols.committee import fixed_proposer, run_committee_protocol
from repro.workload.merit import MeritDistribution, permissioned_merit

__all__ = ["run_hyperledger"]


@register_protocol(
    "hyperledger",
    description="Fixed orderer, permissioned writers (Hyperledger Fabric model)",
)
def run_hyperledger(
    *,
    n: int = 8,
    writers: Optional[Sequence[str]] = None,
    orderer: str = "p0",
    duration: float = 200.0,
    channel: Optional[ChannelModel] = None,
    round_interval: float = 5.0,
    read_interval: float = 5.0,
    transactions_per_block: int = 6,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the Hyperledger Fabric model (fixed orderer, permissioned writers)."""
    all_pids = [f"p{i}" for i in range(n)]
    writer_set = tuple(writers) if writers is not None else tuple(all_pids[: max(3, n // 2)])
    if orderer not in writer_set:
        writer_set = (orderer, *writer_set)
    merit: MeritDistribution = permissioned_merit(writer_set, readers=all_pids)

    return run_committee_protocol(
        "hyperledger",
        n=n,
        duration=duration,
        merit=merit,
        committee=writer_set,
        proposer_strategy_factory=lambda committee, merits: fixed_proposer(orderer),  # noqa: ARG005
        round_interval=round_interval,
        channel=channel,
        read_interval=read_interval,
        transactions_per_block=transactions_per_block,
        seed=seed,
        monitor=monitor,
        topology=topology,
        fault=fault,
    )
