"""Red Belly model (Section 5.6).

Red Belly is a *consortium* blockchain: every process may read, but only a
predefined subset ``M ⊆ V`` may append; each member of ``M`` has merit
``1/|M|`` and everyone else merit 0.  Proposals go through a
(leader/randomization/signature)-free Byzantine consensus run by all
processes, which decides a unique block — ``consumeToken`` returns true
for exactly one token, so the BlockTree "contains a unique blockchain" and
the selection function is the trivial projection.  Classification:
``R(BT-ADT_SC, Θ_{F,k=1})``.

Mapping onto the committee engine:

* the committee is the writer set ``M`` (a strict subset of the replicas);
* proposer selection is round-robin over ``M`` (the consensus itself is
  leaderless, but which member's block gets decided in a given round is
  immaterial to the classification — what matters is that exactly one
  block per parent is decided and everybody applies it);
* oracle = Θ_{F,k=1}.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.consistency_index import ConsistencyMonitor
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.topology import Topology
from repro.protocols.base import RunResult
from repro.protocols.committee import run_committee_protocol, round_robin_proposer
from repro.workload.merit import MeritDistribution, permissioned_merit

__all__ = ["run_redbelly"]


@register_protocol(
    "redbelly",
    description="Consortium writers, consensus-decided chain (Red Belly model)",
)
def run_redbelly(
    *,
    n: int = 8,
    writers: Optional[Sequence[str]] = None,
    duration: float = 200.0,
    channel: Optional[ChannelModel] = None,
    round_interval: float = 5.0,
    read_interval: float = 5.0,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the Red Belly model: consortium writers, consensus-decided chain."""
    all_pids = [f"p{i}" for i in range(n)]
    writer_set = tuple(writers) if writers is not None else tuple(all_pids[: max(2, n // 2)])
    merit: MeritDistribution = permissioned_merit(writer_set, readers=all_pids)

    return run_committee_protocol(
        "redbelly",
        n=n,
        duration=duration,
        merit=merit,
        committee=writer_set,
        proposer_strategy_factory=lambda committee, merits: round_robin_proposer(committee),  # noqa: ARG005
        round_interval=round_interval,
        channel=channel,
        read_interval=read_interval,
        seed=seed,
        monitor=monitor,
        topology=topology,
        fault=fault,
    )
