"""PeerCensus model (Section 5.5).

PeerCensus decouples "Bitcoin the data structure" from "Bitcoin the
timestamping service": key blocks are still created through proof-of-work
(the ``getToken`` realization), but a dynamic Byzantine-fault-tolerant
consensus — whose committee is defined by the miners of the chained key
blocks — commits exactly one of the concurrent candidates
(``consumeToken`` returning true for a single token).  As long as fewer
than one third of the committee is Byzantine, the paper classifies
PeerCensus as ``R(BT-ADT_SC, Θ_{F,k=1})``.

Mapping onto the committee engine: identical skeleton to ByzCoin (PoW
lottery for the proposer, 2/3-quorum vote for the commit); the module
exists separately so the committee membership rule (miners of the last
``w`` key blocks) and the secure-state caveat discussed in the paper have
a dedicated, documented home, and so Table 1 is reproduced system by
system rather than by aliasing.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.consistency_index import ConsistencyMonitor
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.topology import Topology
from repro.protocols.base import RunResult
from repro.protocols.committee import run_committee_protocol, weighted_lottery_proposer
from repro.workload.merit import MeritDistribution, zipf_merit

__all__ = ["run_peercensus"]


@register_protocol(
    "peercensus",
    fairness_merit="zipf",
    description="PoW identity issuance + BFT commit (PeerCensus model)",
)
def run_peercensus(
    *,
    n: int = 7,
    duration: float = 200.0,
    merit: Optional[MeritDistribution] = None,
    channel: Optional[ChannelModel] = None,
    round_interval: float = 5.0,
    read_interval: float = 5.0,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the PeerCensus model (PoW proposer + BFT commit, k = 1)."""
    hashing_power = merit if merit is not None else zipf_merit(n, exponent=0.8)

    def strategy_factory(committee: Tuple[str, ...], merits: MeritDistribution):
        return weighted_lottery_proposer(merits, seed=seed + 29, committee=committee)

    return run_committee_protocol(
        "peercensus",
        n=n,
        duration=duration,
        merit=hashing_power,
        proposer_strategy_factory=strategy_factory,
        round_interval=round_interval,
        channel=channel,
        read_interval=read_interval,
        seed=seed,
        monitor=monitor,
        topology=topology,
        fault=fault,
    )
