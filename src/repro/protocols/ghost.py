"""Ethereum-style model: proof-of-work plus GHOST selection (Section 5.2).

Per the paper, Ethereum differs from Bitcoin — for classification
purposes — only in two respects:

* the merit parameter reflects memory bandwidth rather than raw hashing
  power (irrelevant to the abstract model: it is still a merit-weighted
  lottery on the prodigal oracle);
* the selection function is implemented by the GHOST algorithm, which
  descends the BlockTree greedily by *subtree* weight rather than taking
  the single heaviest path.

The system therefore also implements ``R(BT-ADT_EC, Θ_P)``.  Modelling the
selection difference is still worthwhile: the selection-function ablation
(`benchmarks/bench_ablation_selection.py`) shows GHOST converging faster
than longest-chain in high-fork regimes, the behaviour the original GHOST
paper reports.
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency_index import ConsistencyMonitor
from repro.core.selection import GHOSTSelection
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.topology import Topology
from repro.oracle.theta import TokenOracle
from repro.protocols.base import RunResult
from repro.protocols.nakamoto import NakamotoReplica, run_bitcoin
from repro.workload.merit import MeritDistribution

__all__ = ["EthereumReplica", "run_ethereum"]


class EthereumReplica(NakamotoReplica):
    """A GHOST-following proof-of-work replica.

    Identical to :class:`~repro.protocols.nakamoto.NakamotoReplica`; the
    class exists so that runs, logs and tests can distinguish the two
    models and so Ethereum-specific behaviour (e.g. uncle accounting in a
    future extension) has a home.
    """


@register_protocol(
    "ethereum",
    table1={
        "params": {"token_rate": 0.5},
        "channel": {"kind": "synchronous", "params": {"delta": 3.0, "min_delay": 0.5}},
    },
    fork_prone={
        "params": {"token_rate": 0.4},
        "channel": {"kind": "synchronous", "params": {"delta": 3.0, "min_delay": 0.5}},
    },
    description="GHOST selection over the prodigal oracle (Ethereum model)",
)
def run_ethereum(
    *,
    n: int = 8,
    duration: float = 200.0,
    mining_interval: float = 1.0,
    token_rate: float = 0.1,
    merit: Optional[MeritDistribution] = None,
    channel: Optional[ChannelModel] = None,
    read_interval: float = 5.0,
    use_lrc: bool = True,
    seed: int = 0,
    oracle: Optional[TokenOracle] = None,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    core: str = "array",
    batched: bool = True,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the Ethereum model (GHOST selection over the prodigal oracle).

    The default ``token_rate`` is higher than Bitcoin's to reflect the much
    shorter block interval, which is also what makes the GHOST-vs-longest
    comparison interesting (more simultaneous blocks, more forks).
    """
    result = run_bitcoin(
        n=n,
        duration=duration,
        mining_interval=mining_interval,
        token_rate=token_rate,
        merit=merit,
        channel=channel,
        selection=GHOSTSelection(),
        read_interval=read_interval,
        use_lrc=use_lrc,
        seed=seed,
        oracle=oracle,
        replica_cls=EthereumReplica,
        monitor=monitor,
        topology=topology,
        core=core,
        batched=batched,
        fault=fault,
    )
    # Re-label: the harness was shared with the Bitcoin runner.
    result.name = "ethereum"
    return result
