"""Replicated-BlockTree replica and the protocol run harness.

The BlockTree of Section 4.2 "being now a shared object replicated at each
process", every protocol model follows the same skeleton:

* each replica ``i`` maintains a local copy ``bt_i`` of the BlockTree,
  exposes the BT-ADT ``read()`` operation on it, and records the
  replication events ``update_i``/``send_i``/``receive_i`` exactly as the
  paper defines them;
* blocks produced locally are validated through the (shared) token
  oracle, applied locally (``update`` + ``send``) and disseminated through
  a communication primitive (flooding or LRC);
* blocks received from the network are applied (``receive`` then
  ``update``) provided their parent is known, otherwise parked in an
  orphan buffer until the parent arrives — the standard reconstruction
  used by every real system modelled here.

Protocol-specific behaviour (who may create blocks and when, which
selection function picks the parent, how a block is committed) lives in
subclasses.  :func:`run_protocol` wires replicas, channels, the shared
oracle and a read workload together and returns everything the analyses
need (the recorded history, the replicas, the oracle, network counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.block import Block, BlockIdFactory, Blockchain
from repro.core.blocktree import BlockTree
from repro.core.consistency_index import ConsistencyMonitor
from repro.core.degradation import DegradationMonitor
from repro.core.history import History, HistoryRecorder
from repro.core.score import LengthScore, ScoreFunction
from repro.core.selection import LongestChain, SelectionFunction
from repro.network.broadcast import (
    BlockAnnouncement,
    FloodingBroadcast,
    LightReliableCommunication,
)
from repro.network.channels import ChannelModel, SynchronousChannel
from repro.network.faults import FaultModel
from repro.network.process import Process
from repro.network.simulator import Message, Network, Simulator
from repro.network.topology import Topology
from repro.oracle.theta import TokenOracle, ValidatedBlock
from repro.workload.population import ClientPopulation

__all__ = ["ReplicaConfig", "BlockchainReplica", "RunResult", "LiveRun", "run_protocol"]


class _SimulatorClock:
    """Picklable ``() -> simulator.now`` callable (DegradationMonitor clock)."""

    __slots__ = ("simulator",)

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def __call__(self) -> float:
        return self.simulator.now


class _ReplicaCorrectness:
    """Picklable ``pid -> is_correct`` callable (DegradationMonitor probe)."""

    __slots__ = ("replicas",)

    def __init__(self, replicas: Dict[str, "BlockchainReplica"]) -> None:
        self.replicas = replicas

    def __call__(self, pid: str) -> bool:
        return self.replicas[pid].is_correct


@dataclass(frozen=True)
class ReplicaConfig:
    """Configuration shared by all replica types.

    Attributes
    ----------
    selection:
        The selection function ``f`` applied to the local tree.
    read_interval:
        Virtual-time interval between the periodic ``read()`` operations
        each replica performs (reads are the observable events the
        consistency criteria constrain, so every run needs a read
        workload).
    use_lrc:
        Disseminate blocks through :class:`LightReliableCommunication`
        (relay on first reception) rather than plain flooding.
    merit:
        The replica's merit ``α`` (hashing power / stake / permission
        weight), registered with the oracle's tape family.
    """

    selection: SelectionFunction = field(default_factory=LongestChain)
    read_interval: float = 5.0
    use_lrc: bool = True
    merit: float = 1.0


class BlockchainReplica(Process):
    """A process maintaining a replicated BlockTree."""

    def __init__(
        self,
        pid: str,
        oracle: TokenOracle,
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        super().__init__(pid)
        self.oracle = oracle
        self.config = config if config is not None else ReplicaConfig()
        self.tree = BlockTree()
        self.ids = BlockIdFactory(prefix=f"{pid}_b")
        self._orphans: Dict[str, List[Block]] = {}
        #: Client operations (integer coin ids) awaiting inclusion in a
        #: block, fed by :meth:`on_client_op` (the population workload's
        #: bulk-scheduled arrival callback).
        self.mempool: List[int] = []
        self.blocks_created = 0
        self.blocks_adopted = 0
        self.producing = True
        self._transport: Optional[FloodingBroadcast] = None

    # -- wiring --------------------------------------------------------------------

    def attach(self, network: Network) -> None:
        super().attach(network)
        transport_cls = (
            LightReliableCommunication if self.config.use_lrc else FloodingBroadcast
        )
        self._transport = transport_cls(self)
        self._transport.on_deliver(self._on_block_delivered)
        self.oracle.tapes.register_merit(self.pid, self.config.merit)

    @property
    def transport(self) -> FloodingBroadcast:
        assert self._transport is not None, "replica not attached to a network"
        return self._transport

    # -- BT-ADT operations ----------------------------------------------------------

    def local_read(self) -> Blockchain:
        """Perform (and record) a ``read()`` on the local replica."""
        token = self.recorder.invoke(self.pid, "read", None)
        chain = self.config.selection(self.tree)
        self.recorder.respond(token, chain)
        return chain

    def current_tip(self) -> Block:
        """Tip of the locally selected chain (no event recorded)."""
        return self.config.selection(self.tree).tip

    # -- block production -------------------------------------------------------------

    def make_candidate(self, payload: Tuple[object, ...] = ()) -> Block:
        """Create a candidate block extending the locally selected chain."""
        tip = self.current_tip()
        return self.ids.make_block(
            tip.block_id,
            payload=payload,
            creator=self.pid,
            round=int(self.now),
        )

    def commit_local_block(self, validated: ValidatedBlock, announce: bool = True) -> bool:
        """Apply a locally produced, oracle-validated block and disseminate it.

        Records the append operation (invocation + response), the
        ``update`` replication event and — when ``announce`` — the ``send``
        event through the transport.
        """
        block = validated.block
        token = self.recorder.invoke(self.pid, "append", block)
        applied = self._insert(block)
        self.recorder.respond(token, applied)
        if applied:
            self.blocks_created += 1
            self.recorder.update(self.pid, block.parent_id or "b0", block.block_id)
            if announce:
                self.transport.disseminate(
                    BlockAnnouncement(parent_id=block.parent_id or "b0", block=block)
                )
        return applied

    # -- block reception ----------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "block":
            self.transport.handle(message)
        else:
            self.on_protocol_message(message)

    def on_message_batch(self, deliveries) -> int:
        """Route delivery batches through the transport's dup-flood skip.

        Only safe when both hooks the fast path models are the stock
        ones: a subclass overriding :meth:`on_message` (adversaries may
        act on duplicates) or a transport overriding ``handle`` falls
        back to the default scalar-exact loop.
        """
        transport = self._transport
        if (
            transport is None
            or type(self).on_message is not BlockchainReplica.on_message
        ):
            return super().on_message_batch(deliveries)
        handle = type(transport).handle
        if (
            handle is not FloodingBroadcast.handle
            and handle is not LightReliableCommunication.handle
        ):
            return super().on_message_batch(deliveries)
        return transport.handle_batch(deliveries)

    def batch_dup_seen(self):
        """Expose the transport seen-set for the span-level dup skip.

        Same stock-hook guards as :meth:`on_message_batch`: a subclass
        overriding :meth:`on_message` (adversaries may act on
        duplicates) or a transport overriding ``handle`` keeps the
        ``None`` default, so every delivery still dispatches.
        """
        transport = self._transport
        if (
            transport is None
            or type(self).on_message is not BlockchainReplica.on_message
        ):
            return None
        handle = type(transport).handle
        if (
            handle is not FloodingBroadcast.handle
            and handle is not LightReliableCommunication.handle
        ):
            return None
        return transport._delivered

    def on_protocol_message(self, message: Message) -> None:
        """Hook for protocol-specific (non-block) messages."""

    def _on_block_delivered(self, announcement: BlockAnnouncement, sender: str) -> None:
        block = announcement.block
        if sender == self.pid or block.creator == self.pid:
            # Our own dissemination echo; the local update already happened.
            return
        self.adopt_block(block)

    def adopt_block(self, block: Block) -> bool:
        """Apply a remotely produced block (the ``update_j`` of the paper)."""
        if block.block_id in self.tree:
            return False
        if block.parent_id is not None and block.parent_id not in self.tree:
            self._orphans.setdefault(block.parent_id, []).append(block)
            return False
        applied = self._insert(block)
        if applied:
            self.blocks_adopted += 1
            self.recorder.update(self.pid, block.parent_id or "b0", block.block_id)
            self._flush_orphans(block.block_id)
        return applied

    def _insert(self, block: Block) -> bool:
        if block.block_id in self.tree:
            return False
        if block.parent_id is not None and block.parent_id not in self.tree:
            return False
        self.tree.append(block)
        return True

    def _flush_orphans(self, parent_id: str) -> None:
        pending = self._orphans.pop(parent_id, [])
        for orphan in pending:
            self.adopt_block(orphan)

    # -- client workload ----------------------------------------------------------------

    def on_client_op(self, op: int) -> None:
        """Receive one client operation (called straight off the calendar).

        Deliberately minimal — with population-scale workloads this is
        among the hottest callbacks in a run.
        """
        self.mempool.append(op)

    def drain_mempool(self, limit: int) -> Tuple[str, ...]:
        """Pop up to ``limit`` pending operations as a block payload.

        Coin ids are rendered in the ``coin<n>`` form the validity
        predicates expect; operations are included first-come-first-served.
        """
        take = self.mempool[:limit]
        del self.mempool[:limit]
        return tuple(f"coin{op}" for op in take)

    # -- read workload ------------------------------------------------------------------

    def on_start(self) -> None:
        self._schedule_next_read()

    def stop_production(self) -> None:
        """Stop creating blocks and issuing periodic reads.

        The run harness calls this at the end of the configured duration so
        that the remaining in-flight messages can drain; without it the
        self-rescheduling timers would keep the event queue non-empty
        forever and the replicas' final views could not converge.
        """
        self.producing = False

    def _schedule_next_read(self) -> None:
        if self.config.read_interval <= 0:
            return
        self.schedule(self.config.read_interval, self._periodic_read)

    def _periodic_read(self) -> None:
        if not self.producing:
            return
        self.local_read()
        self._schedule_next_read()


@dataclass
class RunResult:
    """Everything a protocol run produces."""

    name: str
    history: History
    replicas: Dict[str, BlockchainReplica]
    oracle: TokenOracle
    network: Network
    duration: float
    score: ScoreFunction = field(default_factory=LengthScore)
    #: The streaming consistency monitor that observed the run, when one
    #: was passed to :func:`run_protocol` (its verdicts then reflect the
    #: full recorded history).
    monitor: Optional[ConsistencyMonitor] = field(default=None, repr=False)
    #: The vectorized client population that fed the run, when
    #: :func:`run_protocol` scheduled one (``clients=...``); carries the
    #: generation timings the workload benches record.
    population: Optional[ClientPopulation] = field(default=None, repr=False)
    #: The degradation monitor that tracked divergence depth online, when
    #: the run injected a registered fault model (``fault=...``).
    degradation: Optional[DegradationMonitor] = field(default=None, repr=False)

    @property
    def correct_replicas(self) -> Tuple[str, ...]:
        return tuple(pid for pid, r in self.replicas.items() if r.is_correct)

    def final_chains(self) -> Dict[str, Blockchain]:
        """The chain each replica would return from a final read."""
        return {
            pid: replica.config.selection(replica.tree)
            for pid, replica in self.replicas.items()
        }

    def block_creators(self) -> Dict[str, str]:
        """Map block id → creator process (for the update-agreement checker)."""
        creators: Dict[str, str] = {}
        for replica in self.replicas.values():
            for block in replica.tree:
                if block.creator is not None:
                    creators.setdefault(block.block_id, block.creator)
        return creators


class LiveRun:
    """A staged, checkpointable protocol run.

    :func:`run_protocol` stages every live object of an in-flight run
    (simulator, network, replicas, recorder, monitors, fault schedules —
    everything except the consumed ``replica_factory``) into one of these
    and then drives :meth:`finish`, which advances a ``phase`` cursor::

        "main"  — run the clock to ``duration``
        "drain" — stop block production (exactly once) and quiesce
        "reads" — final ``local_read()`` at every alive replica
        "done"  — result available

    Checkpoint snapshots pickle the whole ``LiveRun`` between event
    chunks; restoring one re-enters :meth:`finish` and the continued
    history is byte-identical to the uninterrupted run.  The checkpoint
    sink is passed per :meth:`finish` call — never stored — so sinks
    need not be picklable.
    """

    def __init__(
        self,
        *,
        name: str,
        simulator: Simulator,
        recorder: HistoryRecorder,
        network: Network,
        replicas: Dict[str, BlockchainReplica],
        oracle: TokenOracle,
        duration: float,
        max_events: int,
        monitor: Optional[ConsistencyMonitor],
        population: Optional[ClientPopulation],
        degradation: Optional[DegradationMonitor],
        drain: bool,
        final_reads: bool,
    ) -> None:
        self.name = name
        self.simulator = simulator
        self.recorder = recorder
        self.network = network
        self.replicas = replicas
        self.oracle = oracle
        self.duration = duration
        self.max_events = max_events
        self.monitor = monitor
        self.population = population
        self.degradation = degradation
        self.drain = drain
        self.final_reads = final_reads
        self.phase = "main"

    @property
    def event_count(self) -> int:
        """Events processed so far (checkpoint headers record this)."""
        return self.simulator.events_processed

    def finish(
        self,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_sink: Optional[Callable[["LiveRun"], None]] = None,
    ) -> RunResult:
        """Advance through the remaining phases and return the result.

        With ``checkpoint_every`` set, the event-processing phases drain
        in chunks of at most that many events and ``checkpoint_sink``
        receives this ``LiveRun`` after every nonzero chunk.
        """
        sink: Optional[Callable[[Simulator], None]] = None
        if checkpoint_sink is not None:
            def sink(_simulator: Simulator) -> None:
                checkpoint_sink(self)
        while self.phase != "done":
            if self.phase == "main":
                self.network.run(
                    until=self.duration,
                    max_events=self.max_events,
                    checkpoint_every=checkpoint_every,
                    checkpoint_sink=sink,
                )
                if self.drain:
                    # Production stops exactly once, at the main → drain
                    # transition; snapshots taken mid-drain already carry
                    # the stopped producers inside replica state.
                    for replica in self.replicas.values():
                        replica.stop_production()
                    self.phase = "drain"
                else:
                    self.phase = "reads"
            elif self.phase == "drain":
                self.network.run(
                    max_events=self.max_events,
                    checkpoint_every=checkpoint_every,
                    checkpoint_sink=sink,
                )
                self.phase = "reads"
            elif self.phase == "reads":
                if self.final_reads:
                    for replica in self.replicas.values():
                        if replica.alive:
                            replica.local_read()
                self.phase = "done"
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown run phase {self.phase!r}")
        return self.result()

    def result(self) -> RunResult:
        """The finished run's :class:`RunResult` (phase must be ``done``)."""
        if self.phase != "done":
            raise RuntimeError(f"run has not finished (phase={self.phase!r})")
        return RunResult(
            name=self.name,
            history=self.recorder.history(),
            replicas=self.replicas,
            oracle=self.oracle,
            network=self.network,
            duration=self.duration,
            monitor=self.monitor,
            population=self.population,
            degradation=self.degradation,
        )


def run_protocol(
    name: str,
    replica_factory: Callable[[str, TokenOracle, Network], BlockchainReplica],
    oracle: TokenOracle,
    *,
    n: int = 8,
    duration: float = 200.0,
    channel: Optional[ChannelModel] = None,
    final_reads: bool = True,
    drain: bool = True,
    max_events: int = 2_000_000,
    monitor: Optional[ConsistencyMonitor] = None,
    batched: bool = True,
    topology: Optional[Topology] = None,
    core: str = "array",
    clients: Optional[int] = None,
    client_rate: float = 0.5,
    client_seed: int = 0,
    fault: Optional[FaultModel] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_sink: Optional[Callable[[LiveRun], None]] = None,
) -> RunResult:
    """Run a protocol model and collect its history.

    Parameters
    ----------
    name:
        Label for reports (e.g. ``"bitcoin"``).
    replica_factory:
        Called once per process id to build (but not register) the replica.
    oracle:
        The shared token oracle; its tape family is also the merit registry.
    n, duration, channel:
        Number of replicas, virtual run length, channel model (default: a
        synchronous channel with δ = 1).
    monitor:
        Optional :class:`~repro.core.consistency_index.ConsistencyMonitor`
        subscribed to the recorder before the run starts, so consistency
        verdicts are maintained online while events stream in.  The
        monitor is returned on the result (``result.monitor``).
    final_reads:
        Issue one last ``read()`` at every replica after the run quiesces,
        so the "limit views" used by the eventual-prefix interpretation are
        part of the history.
    drain:
        After ``duration``, stop block production and keep processing the
        already-queued deliveries until the network quiesces.  This is what
        lets correct replicas converge under reliable communication (and is
        deliberately *not* enough to make them converge when messages were
        dropped, which is the Theorem 4.6/4.7 experiment).
    batched:
        Route fan-outs through the batched message plane (the default).
        ``False`` uses the pre-batching scalar reference path; the two are
        stream-identical and the equivalence tests assert the recorded
        histories match event-for-event.
    topology:
        Dissemination topology deciding who hears each broadcast (see
        :mod:`repro.network.topology`).  ``None`` keeps the historical
        full-mesh semantics byte-identically; gossip / committee /
        sharded topologies restrict each sender's fan-out.
    core:
        Event-calendar implementation: ``"array"`` (the array-native
        calendar queue, the default) or ``"heap"`` (the original
        heapq-of-tuples core, retained verbatim as the equivalence
        oracle).  The two produce byte-identical histories.
    clients, client_rate, client_seed:
        When ``clients`` is set, a :class:`ClientPopulation` of that size
        is generated column-wise (``client_rate`` operations per client
        per time unit, seeded by ``client_seed``) and bulk-inserted into
        the calendar before the run; replicas accumulate the arrivals in
        their mempools and include them in block payloads.
    fault:
        Optional registered :class:`~repro.network.faults.FaultModel`
        injecting scheduled adversarial events (crashes, silent members,
        churn, healing partitions, eclipse windows) through the
        simulator.  A :class:`~repro.core.degradation.DegradationMonitor`
        is subscribed to the recorder alongside it, tracking divergence
        depth over time and time-to-heal; it is returned on the result
        (``result.degradation``).  ``fault=None`` keeps the start-up
        sequence byte-identical to the pre-fault harness.
    checkpoint_every, checkpoint_sink:
        When set, the run drains in chunks of at most ``checkpoint_every``
        events and ``checkpoint_sink`` receives the staged :class:`LiveRun`
        after every nonzero chunk (typically a
        :class:`~repro.engine.checkpoint.CheckpointWriter` bound method).
        When both are ``None``, the ambient configuration installed by
        :func:`repro.engine.checkpoint.checkpoint_context` (if any) is
        used instead.  Chunking never perturbs event order, so the
        recorded history is byte-identical either way.
    """
    simulator = Simulator(core=core)
    recorder = HistoryRecorder()
    if monitor is not None:
        monitor.attach(recorder)
    network = Network(
        simulator,
        channel if channel is not None else SynchronousChannel(delta=1.0, seed=7),
        recorder=recorder,
        batched=batched,
        topology=topology,
    )
    replicas: Dict[str, BlockchainReplica] = {}
    for index in range(n):
        pid = f"p{index}"
        replica = replica_factory(pid, oracle, network)
        network.register(replica)
        replicas[pid] = replica

    degradation: Optional[DegradationMonitor] = None
    if fault is None:
        network.start()
    else:
        # The degradation monitor subscribes before any event can be
        # recorded, so its divergence trajectory covers the whole run.
        degradation = DegradationMonitor(
            heal_at=fault.heal_time(),
            clock=_SimulatorClock(simulator),
            correct=_ReplicaCorrectness(replicas),
        ).attach(recorder)
        fault.install(network)
        # Start processes one by one, giving the fault its per-process
        # hook right after each ``on_start()`` — the exact queue-insertion
        # point the legacy crash subclass used, which is what keeps the
        # registry-based crash event-for-event identical to it.
        for replica in replicas.values():
            replica.on_start()
            fault.after_process_start(replica)
        fault.after_start(network)
    population: Optional[ClientPopulation] = None
    if clients:
        population = ClientPopulation(
            clients=clients,
            rate=client_rate,
            duration=duration,
            processes=tuple(replicas),
            seed=client_seed,
        )
        population.schedule_on(network)

    live = LiveRun(
        name=name,
        simulator=simulator,
        recorder=recorder,
        network=network,
        replicas=replicas,
        oracle=oracle,
        duration=duration,
        max_events=max_events,
        monitor=monitor,
        population=population,
        degradation=degradation,
        drain=drain,
        final_reads=final_reads,
    )
    if checkpoint_every is None and checkpoint_sink is None:
        # Lazy import: protocols must stay importable without the engine
        # package, and the engine imports protocols at registration time.
        from repro.engine.checkpoint import ambient_checkpoint_config

        config = ambient_checkpoint_config()
        if config is not None:
            checkpoint_every = config.every
            checkpoint_sink = config.sink
    return live.finish(
        checkpoint_every=checkpoint_every, checkpoint_sink=checkpoint_sink
    )
