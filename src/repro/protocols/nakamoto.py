"""Bitcoin / Nakamoto-style proof-of-work model (Section 5.1).

The paper's classification of Bitcoin:

* any process may read and append;
* the ``getToken`` operation is realized by proof-of-work — here, the
  merit-weighted oracle lottery (the merit ``α_p`` is the normalized
  hashing power);
* ``consumeToken`` "returns true for all valid blocks, thus there is no
  bound on the number of consumed tokens" — the **prodigal** oracle;
* the selection function returns the chain with the most accumulated work
  (we expose both the heaviest-chain and longest-chain variants);
* valid blocks are flooded through the network;
* the resulting system implements ``R(BT-ADT_EC, Θ_P)``: Eventual — not
  Strong — consistency.

Each replica "mines" by attempting one ``getToken`` per mining step on the
tip of its locally selected chain.  On success it consumes the token,
applies the block locally (``update`` + ``send``) and floods it.  Forks
arise exactly as in the real system: two replicas may both win a token for
the same parent before hearing of each other's block.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.consistency_index import ConsistencyMonitor
from repro.core.selection import HeaviestChain, LongestChain, SelectionFunction
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.simulator import Network
from repro.network.topology import Topology
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import ProdigalOracle, TokenOracle
from repro.protocols.base import BlockchainReplica, ReplicaConfig, RunResult, run_protocol
from repro.workload.merit import MeritDistribution, uniform_merit

__all__ = ["NakamotoReplica", "run_bitcoin"]


class NakamotoReplica(BlockchainReplica):
    """A proof-of-work miner/full-node replica."""

    def __init__(
        self,
        pid: str,
        oracle: TokenOracle,
        config: Optional[ReplicaConfig] = None,
        mining_interval: float = 1.0,
        transactions_per_block: int = 4,
    ) -> None:
        super().__init__(pid, oracle, config)
        if mining_interval <= 0:
            raise ValueError("mining_interval must be positive")
        self.mining_interval = mining_interval
        self.transactions_per_block = transactions_per_block
        self._tx_counter = 0

    # -- mining loop -----------------------------------------------------------------

    def on_start(self) -> None:
        super().on_start()
        self.schedule(self.mining_interval, self._mining_step)

    def _mining_step(self) -> None:
        if not self.producing:
            return
        self.try_mine()
        self.schedule(self.mining_interval, self._mining_step)

    def try_mine(self) -> bool:
        """One proof-of-work attempt: ``getToken`` on the local tip.

        Returns ``True`` iff a block was produced and committed.
        """
        candidate = self.make_candidate(payload=self._next_payload())
        parent = self.current_tip()
        validated = self.oracle.get_token(parent, candidate, process=self.pid)
        if validated is None:
            return False
        consumed = self.oracle.consume_token(validated, process=self.pid)
        if not any(v.block_id == validated.block_id for v in consumed):
            # Unreachable with the prodigal oracle, but a frugal-oracle
            # variant (used by ablations) can reject the k+1-th fork.
            return False
        return self.commit_local_block(validated)

    def _next_payload(self) -> Tuple[str, ...]:
        if self.mempool:
            # Population workload attached: blocks carry real client
            # operations (first-come-first-served from the mempool).
            return self.drain_mempool(self.transactions_per_block)
        start = self._tx_counter
        self._tx_counter += self.transactions_per_block
        return tuple(
            f"tx_{self.pid}_{i}" for i in range(start, self._tx_counter)
        )


_FORK_PRONE_CHANNEL = {"kind": "synchronous", "params": {"delta": 3.0, "min_delay": 0.5}}


@register_protocol(
    "bitcoin",
    table1={"params": {"token_rate": 0.4}, "channel": _FORK_PRONE_CHANNEL},
    fork_prone={"params": {"token_rate": 0.4}, "channel": _FORK_PRONE_CHANNEL},
    description="Nakamoto proof-of-work, heaviest chain, prodigal oracle",
)
def run_bitcoin(
    *,
    n: int = 8,
    duration: float = 200.0,
    mining_interval: float = 1.0,
    token_rate: float = 0.05,
    merit: Optional[MeritDistribution] = None,
    channel: Optional[ChannelModel] = None,
    selection: Optional[SelectionFunction] = None,
    read_interval: float = 5.0,
    use_lrc: bool = True,
    seed: int = 0,
    oracle: Optional[TokenOracle] = None,
    replica_cls: type = NakamotoReplica,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    core: str = "array",
    batched: bool = True,
    clients: Optional[int] = None,
    client_rate: float = 0.5,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the Bitcoin model and return its :class:`RunResult`.

    ``token_rate`` scales merits into per-attempt success probabilities:
    with uniform merit ``1/n`` and rate ``r`` each miner finds a block with
    probability ``r/n`` per attempt, i.e. the network-wide block interval
    is roughly ``mining_interval / r`` — the knob the convergence ablation
    sweeps.
    """
    merit_distribution = merit if merit is not None else uniform_merit(n)
    tapes = TapeFamily(seed=seed, probability_scale=token_rate)
    shared_oracle = oracle if oracle is not None else ProdigalOracle(tapes=tapes)
    chain_rule = selection if selection is not None else HeaviestChain()

    def factory(pid: str, orc: TokenOracle, network: Network) -> NakamotoReplica:  # noqa: ARG001
        config = ReplicaConfig(
            selection=chain_rule,
            read_interval=read_interval,
            use_lrc=use_lrc,
            merit=merit_distribution.merit_of(pid),
        )
        return replica_cls(
            pid,
            orc,
            config,
            mining_interval=mining_interval,
        )

    return run_protocol(
        "bitcoin",
        factory,
        shared_oracle,
        n=n,
        duration=duration,
        channel=channel,
        monitor=monitor,
        topology=topology,
        core=core,
        batched=batched,
        clients=clients,
        client_rate=client_rate,
        client_seed=seed,
        fault=fault,
    )
