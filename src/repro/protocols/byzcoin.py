"""ByzCoin model (Section 5.3).

ByzCoin separates block creation from transaction validation: key blocks
are produced by a Bitcoin-style proof-of-work lottery (the ``getToken``
realization), but only a *single* key block per parent is ever committed,
because a PBFT-variant run by the recent miners picks one winner among the
concurrent candidates (the ``consumeToken`` realization).  Under the
semi-synchronous assumption this makes ByzCoin "an implementation of a
strongly consistent BlockTree composed with a Frugal Oracle, with k = 1"
(the paper's words).

In the committee engine this maps to:

* proposer selection = merit-weighted lottery (merit = hashing power), the
  abstraction of "the first miner to find a key block";
* the commit phase = the committee vote with a 2/3 quorum (the PBFT
  variant);
* the shared oracle = Θ_{F,k=1}.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.consistency_index import ConsistencyMonitor
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.topology import Topology
from repro.protocols.base import RunResult
from repro.protocols.committee import run_committee_protocol, weighted_lottery_proposer
from repro.workload.merit import MeritDistribution, zipf_merit

__all__ = ["run_byzcoin"]


@register_protocol(
    "byzcoin",
    fairness_merit="zipf",
    description="PoW-elected committee with PBFT-style commit (ByzCoin model)",
)
def run_byzcoin(
    *,
    n: int = 7,
    duration: float = 200.0,
    merit: Optional[MeritDistribution] = None,
    channel: Optional[ChannelModel] = None,
    round_interval: float = 5.0,
    read_interval: float = 5.0,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the ByzCoin model; hashing power defaults to a Zipf distribution."""
    hashing_power = merit if merit is not None else zipf_merit(n, exponent=1.0)

    def strategy_factory(committee: Tuple[str, ...], merits: MeritDistribution):
        return weighted_lottery_proposer(merits, seed=seed, committee=committee)

    result = run_committee_protocol(
        "byzcoin",
        n=n,
        duration=duration,
        merit=hashing_power,
        proposer_strategy_factory=strategy_factory,
        round_interval=round_interval,
        channel=channel,
        read_interval=read_interval,
        seed=seed,
        monitor=monitor,
        topology=topology,
        fault=fault,
    )
    return result
