"""Classification of protocol runs in the refinement hierarchy (Table 1).

Given a protocol run (its recorded history plus the oracle it used), the
classifier determines which refined ADT the execution belongs to:

* the oracle coordinate is read off the oracle's fork bound ``k``
  (``k = 1`` → frugal no-fork, finite ``k`` → frugal, ``∞`` → prodigal);
* the consistency coordinate is the *strongest* criterion the recorded
  history satisfies (SC if the Strong-Consistency checker accepts it, else
  EC if the Eventual-Consistency checker accepts it, else "none").

``reproduce_table1`` runs all seven system models of Section 5 with
comparable parameters and tabulates their classification next to the
paper's expected row, which is exactly what the Table 1 bench prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.consistency import (
    BTEventualConsistency,
    BTStrongConsistency,
    ConsistencyReport,
)
from repro.core.consistency_index import ConsistencyIndex
from repro.core.hierarchy import Consistency, OracleKind, Refinement
from repro.core.score import LengthScore, ScoreFunction
from repro.protocols.base import RunResult

__all__ = [
    "ClassificationResult",
    "classify_run",
    "reproduce_table1",
    "PAPER_TABLE1",
    "TABLE1_SYSTEMS",
]


#: The order in which Table 1 runs are executed and reported.
TABLE1_SYSTEMS: Tuple[str, ...] = (
    "bitcoin",
    "ethereum",
    "byzcoin",
    "algorand",
    "peercensus",
    "redbelly",
    "hyperledger",
)

#: The paper's Table 1, as (consistency, oracle kind, k) per system.
PAPER_TABLE1: Dict[str, Refinement] = {
    "bitcoin": Refinement.ec_prodigal(),
    "ethereum": Refinement.ec_prodigal(),
    "algorand": Refinement.sc_frugal(1),
    "byzcoin": Refinement.sc_frugal(1),
    "peercensus": Refinement.sc_frugal(1),
    "redbelly": Refinement.sc_frugal(1),
    "hyperledger": Refinement.sc_frugal(1),
}


@dataclass(frozen=True)
class ClassificationResult:
    """Where one run landed in the hierarchy, with the supporting evidence."""

    name: str
    refinement: Optional[Refinement]
    consistency: str
    oracle_kind: str
    k: float
    strong_report: ConsistencyReport
    eventual_report: ConsistencyReport
    expected: Optional[Refinement] = None

    @property
    def matches_paper(self) -> Optional[bool]:
        """``True``/``False`` against Table 1, ``None`` when no expectation is set."""
        if self.expected is None:
            return None
        if self.refinement is None:
            return False
        return (
            self.refinement.consistency == self.expected.consistency
            and self.refinement.oracle == self.expected.oracle
            and self.refinement.k == self.expected.k
        )

    def describe(self) -> str:
        label = self.refinement.label() if self.refinement is not None else "(no criterion satisfied)"
        suffix = ""
        if self.expected is not None:
            verdict = "matches" if self.matches_paper else "DIFFERS FROM"
            suffix = f"  [{verdict} paper: {self.expected.label()}]"
        return f"{self.name:12s} -> {label}{suffix}"


def _oracle_coordinates(k: float) -> Tuple[str, float]:
    if k == math.inf:
        return OracleKind.PRODIGAL, math.inf
    return OracleKind.FRUGAL, float(k)


def classify_run(
    run: RunResult,
    score: Optional[ScoreFunction] = None,
    expected: Optional[Refinement] = None,
) -> ClassificationResult:
    """Classify one protocol run in the refinement hierarchy."""
    scorer = score if score is not None else LengthScore()
    history = run.history.without_failed_appends()
    # Both criteria read the same union prefix index; build it once.
    index = ConsistencyIndex.from_history(history)
    strong = BTStrongConsistency(score=scorer).check(history, index)
    eventual = BTEventualConsistency(score=scorer).check(history, index)

    oracle_kind, k = _oracle_coordinates(run.oracle.k)
    if strong.holds:
        consistency = Consistency.STRONG
    elif eventual.holds:
        consistency = Consistency.EVENTUAL
    else:
        consistency = "none"

    refinement: Optional[Refinement] = None
    if consistency in (Consistency.STRONG, Consistency.EVENTUAL):
        refinement = Refinement(consistency, oracle_kind, k)

    return ClassificationResult(
        name=run.name,
        refinement=refinement,
        consistency=consistency,
        oracle_kind=oracle_kind,
        k=k,
        strong_report=strong,
        eventual_report=eventual,
        expected=expected if expected is not None else PAPER_TABLE1.get(run.name),
    )


def reproduce_table1(
    *,
    n: int = 6,
    duration: float = 120.0,
    seed: int = 7,
    runners: Optional[Dict[str, Callable[[], RunResult]]] = None,
) -> Dict[str, ClassificationResult]:
    """Run every system of Table 1 and classify it.

    Each row is now a declarative :class:`~repro.engine.spec.ExperimentSpec`
    built from the protocol registry's ``table1`` regime metadata (the
    proof-of-work systems run fork-prone there, so the *guarantee*
    difference between them and the consensus systems is visible in the
    recorded histories, as in the paper's Section 5 discussion).

    ``runners`` may override/extend the default set (used by the benches to
    tweak durations); each runner must return a :class:`RunResult`.
    """
    # Imported here to keep module import light and avoid cycles.
    from repro.engine import table1_spec

    overrides = dict(runners) if runners else {}
    order = list(TABLE1_SYSTEMS) + [name for name in overrides if name not in TABLE1_SYSTEMS]

    results: Dict[str, ClassificationResult] = {}
    for name in order:
        if name in overrides:
            results[name] = classify_run(overrides[name]())
            continue
        record = table1_spec(name, n=n, duration=duration, seed=seed).execute()
        assert record.classification_result is not None  # serial execution
        results[name] = record.classification_result
    return results
