"""Models of the blockchain systems classified in Table 1.

Each module models one of the systems of Section 5 at the level of detail
that the paper's classification depends on — the validation oracle the
system maps to, its chain-selection / commit rule, and its communication
pattern — on top of the message-passing substrate of :mod:`repro.network`:

* :mod:`repro.protocols.base` — the replicated-BlockTree replica and the
  run harness shared by every model;
* :mod:`repro.protocols.nakamoto` — Bitcoin: proof-of-work lottery
  (prodigal oracle), heaviest/longest chain, flooding;
* :mod:`repro.protocols.ghost` — Ethereum: same oracle, GHOST selection;
* :mod:`repro.protocols.committee` — the generic committee/consensus
  engine (leader proposal + votes + commit) several systems build on;
* :mod:`repro.protocols.byzcoin`, :mod:`repro.protocols.algorand`,
  :mod:`repro.protocols.peercensus`, :mod:`repro.protocols.redbelly`,
  :mod:`repro.protocols.hyperledger` — the strongly consistent systems,
  all mapping to the frugal oracle with k = 1;
* :mod:`repro.protocols.classification` — run a model, extract its
  history, and classify it in the refinement hierarchy (reproducing
  Table 1).
"""

from repro.protocols.base import BlockchainReplica, ReplicaConfig, RunResult, run_protocol
from repro.protocols.nakamoto import NakamotoReplica, run_bitcoin
from repro.protocols.ghost import EthereumReplica, run_ethereum
from repro.protocols.committee import CommitteeReplica, CommitteeConfig
from repro.protocols.byzcoin import run_byzcoin
from repro.protocols.algorand import run_algorand
from repro.protocols.peercensus import run_peercensus
from repro.protocols.redbelly import run_redbelly
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.faults import run_bitcoin_with_crashes, run_committee_with_byzantine
from repro.protocols.classification import ClassificationResult, classify_run, reproduce_table1

__all__ = [
    "BlockchainReplica",
    "ReplicaConfig",
    "RunResult",
    "run_protocol",
    "NakamotoReplica",
    "run_bitcoin",
    "EthereumReplica",
    "run_ethereum",
    "CommitteeReplica",
    "CommitteeConfig",
    "run_byzcoin",
    "run_algorand",
    "run_peercensus",
    "run_redbelly",
    "run_hyperledger",
    "run_bitcoin_with_crashes",
    "run_committee_with_byzantine",
    "ClassificationResult",
    "classify_run",
    "reproduce_table1",
]
