"""Fault injection for the protocol models.

Section 4.2's failure model allows Byzantine processes and makes "no
assumption on the number of failures"; the theorem-level experiments in
this reproduction mostly rely on *message*-level adversaries (loss,
targeted drops), but the protocol models also support *process*-level
faults, provided here:

* **crash faults** — a replica halts at a configured virtual time and
  neither produces, relays nor applies anything afterwards;
* **silent Byzantine faults** — a replica keeps receiving and updating its
  local state but never sends anything (votes, proposals, blocks), the
  cheapest adversary against quorum-based commit and against block
  dissemination.

The two runner helpers mirror :func:`repro.protocols.nakamoto.run_bitcoin`
and :func:`repro.protocols.committee.run_committee_protocol` and are used
by the fault-injection tests and the resilience ablation bench: a
committee system keeps Strong Consistency as long as the faulty replicas
stay below the quorum slack, and a proof-of-work system keeps Eventual
Consistency among its *correct* replicas as long as dissemination still
reaches them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.consistency_index import ConsistencyMonitor
from repro.core.selection import FixedTipSelection, HeaviestChain
from repro.engine.registry import register_fault_runner, register_protocol
from repro.network.channels import ChannelModel, SynchronousChannel
from repro.network.faults import FaultModel
from repro.network.simulator import Network
from repro.network.topology import Committee, Topology
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle, TokenOracle
from repro.protocols.base import ReplicaConfig, RunResult, run_protocol
from repro.protocols.committee import (
    CommitteeConfig,
    CommitteeReplica,
    round_robin_proposer,
)
from repro.protocols.nakamoto import NakamotoReplica
from repro.workload.merit import MeritDistribution, uniform_merit
from repro.workload.transactions import TransactionGenerator

__all__ = [
    "CrashingNakamotoReplica",
    "SilentCommitteeReplica",
    "run_bitcoin_with_crashes",
    "run_committee_with_byzantine",
]


class CrashingNakamotoReplica(NakamotoReplica):
    """A proof-of-work replica that crashes at ``crash_at``."""

    def __init__(self, *args, crash_at: float, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if crash_at < 0:
            raise ValueError("crash_at must be non-negative")
        self.crash_at = crash_at

    def on_start(self) -> None:
        super().on_start()
        self.schedule(self.crash_at, self.crash)


class SilentCommitteeReplica(CommitteeReplica):
    """A Byzantine committee member that withholds every outbound message.

    It still processes deliveries (so its local state stays plausible) but
    never proposes, never votes and never relays — the standard "silent"
    adversary against quorum intersection.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.byzantine = True

    def send(self, receiver: str, kind: str, payload) -> bool:  # noqa: ARG002
        return False

    def broadcast(self, kind: str, payload, include_self: bool = True) -> int:  # noqa: ARG002
        return 0


@register_fault_runner("bitcoin", "crash")
def run_bitcoin_with_crashes(
    *,
    n: int = 6,
    duration: float = 150.0,
    crash_at: Mapping[str, float],
    token_rate: float = 0.3,
    merit: Optional[MeritDistribution] = None,
    channel: Optional[ChannelModel] = None,
    read_interval: float = 5.0,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Bitcoin model with the replicas named in ``crash_at`` crashing."""
    merit_distribution = merit if merit is not None else uniform_merit(n)
    tapes = TapeFamily(seed=seed, probability_scale=token_rate)
    oracle: TokenOracle = ProdigalOracle(tapes=tapes)

    def factory(pid: str, orc: TokenOracle, network: Network) -> NakamotoReplica:  # noqa: ARG001
        config = ReplicaConfig(
            selection=HeaviestChain(),
            read_interval=read_interval,
            use_lrc=True,
            merit=merit_distribution.merit_of(pid),
        )
        if pid in crash_at:
            return CrashingNakamotoReplica(pid, orc, config, crash_at=crash_at[pid])
        return NakamotoReplica(pid, orc, config)

    return run_protocol(
        "bitcoin-crash",
        factory,
        oracle,
        n=n,
        duration=duration,
        channel=channel if channel is not None else SynchronousChannel(delta=1.0, seed=seed),
        monitor=monitor,
        topology=topology,
        fault=fault,
    )


@register_fault_runner("committee", "byzantine")
@register_protocol(
    "committee",
    description="Generic round-robin committee (BFT quorum commit, k = 1)",
)
def run_committee_with_byzantine(
    *,
    n: int = 7,
    duration: float = 150.0,
    byzantine: Sequence[str] = (),
    round_interval: float = 5.0,
    channel: Optional[ChannelModel] = None,
    read_interval: float = 5.0,
    transactions_per_block: int = 4,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Round-robin committee protocol with silent Byzantine members.

    The committee is the full replica set, so with ``f`` silent members the
    commit quorum (⌊2n/3⌋ + 1 votes) is still reachable as long as
    ``f ≤ n - quorum`` — the classical ``f < n/3`` resilience.  Rounds led
    by a Byzantine proposer simply produce no block.
    """
    all_pids = tuple(f"p{i}" for i in range(n))
    byz = set(byzantine)
    unknown = byz - set(all_pids)
    if unknown:
        raise ValueError(f"unknown byzantine replicas {sorted(unknown)}")
    committee_config = CommitteeConfig(
        committee=all_pids,
        proposer_strategy=round_robin_proposer(all_pids),
        round_interval=round_interval,
        transactions_per_block=transactions_per_block,
    )
    tapes = TapeFamily(seed=seed, probability_scale=float(n))
    oracle = FrugalOracle(k=1, tapes=tapes)

    def factory(pid: str, orc: TokenOracle, network: Network) -> CommitteeReplica:  # noqa: ARG001
        config = ReplicaConfig(
            selection=FixedTipSelection(),
            read_interval=read_interval,
            use_lrc=True,
            merit=1.0 / n,
        )
        cls = SilentCommitteeReplica if pid in byz else CommitteeReplica
        return cls(
            pid,
            orc,
            config,
            committee_config,
            tx_generator=TransactionGenerator(seed=seed + sum(ord(c) for c in pid)),
        )

    return run_protocol(
        "committee-byzantine",
        factory,
        oracle,
        n=n,
        duration=duration,
        channel=channel if channel is not None else SynchronousChannel(delta=0.5, seed=seed),
        monitor=monitor,
        topology=topology if topology is not None else Committee(members=all_pids),
        fault=fault,
    )
