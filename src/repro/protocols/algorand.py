"""Algorand model (Section 5.4).

Algorand's cryptographic sortition selects, per round and weighted by
stake, a highest-priority block proposer (the ``getToken`` realization);
the BA* Byzantine-agreement variant then commits that proposer's block —
the ``consumeToken`` realization — so that, with overwhelming probability,
a single block extends each parent.  The paper classifies Algorand as
``R(BT-ADT_SC, Θ_{F,k=1})`` *with high probability* (Table 1 annotates the
entry "SC w.h.p"): in unfavourable conditions BA* may fork with
probability below 1e-7.

Mapping onto the committee engine:

* proposer selection = stake-weighted per-round lottery (the sortition);
* commit = the committee vote (BA*), with the whole process set acting as
  the committee (every account participates, weighted by stake);
* oracle = Θ_{F,k=1}; the vanishing fork probability is not simulated by
  default (``fork_probability=0``) but can be enabled to observe the
  "w.h.p." caveat empirically.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.consistency_index import ConsistencyMonitor
from repro.engine.registry import register_protocol
from repro.network.channels import ChannelModel
from repro.network.faults import FaultModel
from repro.network.topology import Topology
from repro.protocols.base import RunResult
from repro.protocols.committee import run_committee_protocol, weighted_lottery_proposer
from repro.workload.merit import MeritDistribution, proportional_merit

__all__ = ["run_algorand", "default_stake"]


def default_stake(n: int) -> MeritDistribution:
    """A mildly skewed stake distribution (account ``i`` holds ``i + 1`` coins)."""
    return proportional_merit([float(i + 1) for i in range(n)])


@register_protocol(
    "algorand",
    description="Stake-weighted sortition + BA*-style commit (Algorand model)",
)
def run_algorand(
    *,
    n: int = 7,
    duration: float = 200.0,
    stake: Optional[MeritDistribution] = None,
    channel: Optional[ChannelModel] = None,
    round_interval: float = 5.0,
    read_interval: float = 5.0,
    seed: int = 0,
    monitor: Optional[ConsistencyMonitor] = None,
    topology: Optional[Topology] = None,
    fault: Optional[FaultModel] = None,
) -> RunResult:
    """Run the Algorand model (stake-weighted sortition + BA*-style commit)."""
    stake_distribution = stake if stake is not None else default_stake(n)

    def strategy_factory(committee: Tuple[str, ...], merits: MeritDistribution):
        return weighted_lottery_proposer(merits, seed=seed + 17, committee=committee)

    result = run_committee_protocol(
        "algorand",
        n=n,
        duration=duration,
        merit=stake_distribution,
        proposer_strategy_factory=strategy_factory,
        round_interval=round_interval,
        channel=channel,
        read_interval=read_interval,
        seed=seed,
        monitor=monitor,
        topology=topology,
        fault=fault,
    )
    return result
