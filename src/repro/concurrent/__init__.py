"""Shared-memory substrate and the reductions of Section 4.1.

The paper's implementability results for the oracles are stated in the
classical wait-free shared-memory model: ``n`` sequential processes, up to
``n - 1`` of which may crash, communicating through atomic objects.  This
subpackage provides that model:

* :mod:`repro.concurrent.scheduler` — a deterministic cooperative
  scheduler that interleaves process steps (including adversarial and
  crash-prone schedules);
* :mod:`repro.concurrent.registers` — atomic read/write registers and the
  Compare&Swap register of Figure 9;
* :mod:`repro.concurrent.snapshot` — a wait-free atomic-snapshot object
  (update/scan), the consensus-number-1 object of Figure 12;
* :mod:`repro.concurrent.consensus_object` — the consensus abstraction of
  Definition 4.1 (with the block-validity flavour of [CGLR18]);
* :mod:`repro.concurrent.reductions` — the three constructions of the
  paper: Compare&Swap from ``consumeToken`` (Θ_{F,1}), Consensus from
  Θ_{F,1} (Protocol A, Figure 11), and Θ_P from Atomic Snapshot
  (Figure 12).
"""

from repro.concurrent.scheduler import Scheduler, ProcessCrashed, SchedulerResult
from repro.concurrent.registers import AtomicRegister, CASRegister
from repro.concurrent.snapshot import AtomicSnapshot
from repro.concurrent.consensus_object import ConsensusObject, CASConsensus
from repro.concurrent.reductions import (
    CASFromConsumeToken,
    OracleConsensus,
    SnapshotTokenStore,
    snapshot_prodigal_oracle,
)

__all__ = [
    "Scheduler",
    "ProcessCrashed",
    "SchedulerResult",
    "AtomicRegister",
    "CASRegister",
    "AtomicSnapshot",
    "ConsensusObject",
    "CASConsensus",
    "CASFromConsumeToken",
    "OracleConsensus",
    "SnapshotTokenStore",
    "snapshot_prodigal_oracle",
]
