"""Cooperative scheduler for the wait-free shared-memory model.

Processes are Python generator functions: every ``yield`` marks a step
boundary, and whatever the process does between two yields (a read, a
write, a ``consumeToken``, ...) executes atomically.  The scheduler picks
which process advances next according to a pluggable strategy, which is
how the tests and benches exercise adversarial interleavings without real
threads (real threads would make runs irreproducible and the GIL would
hide the interesting schedules anyway).

Three strategies are provided:

* ``round_robin`` — fair rotation (every correct process keeps taking
  steps: the wait-freedom-friendly schedule);
* ``random`` — uniformly random choice driven by a seeded generator
  (the "unknown adversary" used by the property-based tests);
* ``adversarial`` — a caller-supplied callable deciding, at each step,
  which runnable process moves (used to build the specific bad schedules
  of the impossibility arguments).

Crash faults are modelled by :meth:`Scheduler.crash`: a crashed process
simply never takes another step, which is exactly the crash model of the
consensus-number results (Section 4.1 considers crash failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["Scheduler", "SchedulerResult", "ProcessCrashed", "StepLimitExceeded"]

ProcessBody = Generator[Any, None, Any]


class ProcessCrashed(RuntimeError):
    """Raised when interacting with a process that has been crashed."""


class StepLimitExceeded(RuntimeError):
    """Raised when a run does not quiesce within the configured step budget."""


@dataclass
class _ProcessState:
    name: str
    body: ProcessBody
    finished: bool = False
    crashed: bool = False
    result: Any = None
    steps: int = 0


@dataclass(frozen=True)
class SchedulerResult:
    """Outcome of a scheduler run."""

    results: Dict[str, Any]
    steps: int
    schedule: Tuple[str, ...]
    crashed: Tuple[str, ...]

    def result_of(self, name: str) -> Any:
        return self.results[name]


class Scheduler:
    """Deterministic cooperative scheduler.

    Parameters
    ----------
    seed:
        Seed for the ``random`` strategy (ignored by the others).
    strategy:
        ``"round_robin"``, ``"random"`` or ``"adversarial"``.
    chooser:
        For the adversarial strategy, a callable
        ``chooser(step_index, runnable_names) -> name``.
    """

    def __init__(
        self,
        seed: int = 0,
        strategy: str = "round_robin",
        chooser: Optional[Callable[[int, Tuple[str, ...]], str]] = None,
    ) -> None:
        if strategy not in ("round_robin", "random", "adversarial"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy == "adversarial" and chooser is None:
            raise ValueError("adversarial strategy requires a chooser")
        self._strategy = strategy
        self._chooser = chooser
        self._rng = np.random.default_rng(seed)
        self._processes: Dict[str, _ProcessState] = {}
        self._rr_cursor = 0

    # -- population -------------------------------------------------------------

    def spawn(self, name: str, body: ProcessBody) -> None:
        """Register a process; ``body`` must be a started-able generator."""
        if name in self._processes:
            raise ValueError(f"process {name!r} already exists")
        if not hasattr(body, "send"):
            raise TypeError("process body must be a generator (use a 'yield'ing function)")
        self._processes[name] = _ProcessState(name=name, body=body)

    def crash(self, name: str) -> None:
        """Crash a process: it will never be scheduled again."""
        state = self._processes[name]
        state.crashed = True

    @property
    def process_names(self) -> Tuple[str, ...]:
        return tuple(self._processes)

    # -- execution ------------------------------------------------------------------

    def _runnable(self) -> List[str]:
        return [
            n
            for n, s in self._processes.items()
            if not s.finished and not s.crashed
        ]

    def _pick(self, step: int, runnable: List[str]) -> str:
        if self._strategy == "round_robin":
            name = runnable[self._rr_cursor % len(runnable)]
            self._rr_cursor += 1
            return name
        if self._strategy == "random":
            return runnable[int(self._rng.integers(0, len(runnable)))]
        assert self._chooser is not None
        choice = self._chooser(step, tuple(runnable))
        if choice not in runnable:
            raise ValueError(
                f"adversarial chooser returned {choice!r} which is not runnable"
            )
        return choice

    def step(self, name: str) -> bool:
        """Advance ``name`` by one step; return ``True`` if it finished."""
        state = self._processes[name]
        if state.crashed:
            raise ProcessCrashed(name)
        if state.finished:
            return True
        try:
            next(state.body)
            state.steps += 1
        except StopIteration as stop:
            state.finished = True
            state.result = stop.value
        return state.finished

    def run(self, max_steps: int = 100_000) -> SchedulerResult:
        """Run until every non-crashed process finishes (or the budget runs out).

        Crashed processes are excluded from the completion condition —
        wait-free algorithms must let the others finish regardless, which
        is exactly what the Section 4.1 tests assert.
        """
        schedule: List[str] = []
        steps = 0
        while True:
            runnable = self._runnable()
            if not runnable:
                break
            if steps >= max_steps:
                raise StepLimitExceeded(
                    f"{len(runnable)} processes still runnable after {max_steps} steps"
                )
            name = self._pick(steps, runnable)
            self.step(name)
            schedule.append(name)
            steps += 1
        return SchedulerResult(
            results={
                n: s.result for n, s in self._processes.items() if s.finished
            },
            steps=steps,
            schedule=tuple(schedule),
            crashed=tuple(n for n, s in self._processes.items() if s.crashed),
        )

    def run_interleaving(self, order: Iterable[str], max_steps: int = 100_000) -> SchedulerResult:
        """Run following an explicit schedule prefix, then round-robin.

        ``order`` names processes to advance one step each, in sequence;
        entries naming finished/crashed processes are skipped.  After the
        prefix is exhausted the run completes round-robin.  This is the
        handiest way to reproduce the specific interleavings drawn in the
        paper's proofs.
        """
        schedule: List[str] = []
        steps = 0
        for name in order:
            state = self._processes.get(name)
            if state is None:
                raise KeyError(name)
            if state.finished or state.crashed:
                continue
            self.step(name)
            schedule.append(name)
            steps += 1
            if steps >= max_steps:
                raise StepLimitExceeded("explicit schedule exceeded the step budget")
        remainder = self.run(max_steps=max_steps - steps)
        return SchedulerResult(
            results=remainder.results,
            steps=steps + remainder.steps,
            schedule=tuple(schedule) + remainder.schedule,
            crashed=remainder.crashed,
        )
