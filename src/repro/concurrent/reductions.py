"""The wait-free reductions of Section 4.1.

Three constructions, each a figure of the paper:

* **Figure 10** — :class:`CASFromConsumeToken`: an implementation of
  ``compare&swap(K[h], {}, b^{tkn_h})`` on top of the frugal oracle with
  ``k = 1``.  ``consumeToken`` stores the block iff ``K[h]`` was empty and
  always returns the content of ``K[h]``, which is exactly CAS-with-empty-
  old-value semantics.  Theorem 4.1.

* **Figure 11 (Protocol A)** — :class:`OracleConsensus`: consensus from
  Θ_{F,1}.  ``propose(b)`` loops on ``getToken(b0, b)`` until the oracle
  validates a block, consumes the token and decides on the (singleton)
  content of the oracle's set for ``b0``.  Theorem 4.2: Θ_{F,1} has
  consensus number ∞.

* **Figure 12** — :func:`snapshot_prodigal_oracle` /
  :class:`SnapshotTokenStore`: ``consumeToken_h`` of the *prodigal* oracle
  implemented from an Atomic Snapshot — ``update`` writes the token into
  the caller's component, ``scan`` returns every token written so far.
  Since atomic snapshot has consensus number 1, Θ_P cannot be stronger:
  Theorem 4.3.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Sequence, Tuple

from repro.core.block import Block
from repro.concurrent.consensus_object import ConsensusObject
from repro.concurrent.snapshot import AtomicSnapshot
from repro.oracle.theta import TokenOracle, ValidatedBlock

__all__ = [
    "CASFromConsumeToken",
    "OracleConsensus",
    "SnapshotTokenStore",
    "snapshot_prodigal_oracle",
]


# ---------------------------------------------------------------------------
# Figure 10: Compare&Swap from consumeToken (k = 1)
# ---------------------------------------------------------------------------


class CASFromConsumeToken:
    """Compare&Swap on ``K[h]`` implemented from Θ_{F,1}'s ``consumeToken``.

    The emulated register holds either the empty set (``()``) or the
    singleton set of consumed blocks for the parent ``h``.  Only the
    transition *empty → singleton* is expressible — which is all the
    consensus construction needs.  Following Figure 10, the operation
    returns the register value *as seen before the write took effect*:
    ``{}`` when our block was stored (the CAS succeeded), the previously
    stored set otherwise.
    """

    def __init__(self, oracle: TokenOracle, parent_id: str) -> None:
        if oracle.k != 1:
            raise ValueError(
                "the CAS reduction requires the frugal oracle with k = 1 "
                f"(got k = {oracle.k})"
            )
        self.oracle = oracle
        self.parent_id = parent_id

    def compare_and_swap(
        self, validated: ValidatedBlock, process: Optional[str] = None
    ) -> Tuple[ValidatedBlock, ...]:
        """CAS(K[h], {}, validated); returns the prior content of ``K[h]``."""
        if validated.parent_id != self.parent_id:
            raise ValueError(
                f"validated block targets parent {validated.parent_id!r}, "
                f"this CAS emulates K[{self.parent_id!r}]"
            )
        returned = self.oracle.consume_token(validated, process=process)
        if len(returned) == 1 and returned[0].block_id == validated.block_id:
            # Our block was stored: the register was empty beforehand.
            return ()
        return returned

    def read(self) -> Tuple[ValidatedBlock, ...]:
        """Current content of the emulated register."""
        return self.oracle.consumed_for(self.parent_id)


# ---------------------------------------------------------------------------
# Figure 11 / Protocol A: Consensus from the frugal oracle with k = 1
# ---------------------------------------------------------------------------


class OracleConsensus(ConsensusObject):
    """Consensus implemented from Θ_{F,1} (Protocol A, Figure 11).

    Each proposer loops on ``getToken(b0, b)`` until the oracle returns a
    valid block, then consumes the token; the decision is the (unique)
    block stored in the oracle's set for ``b0``.  The first consumer wins;
    every later consumer observes and adopts the stored block, so
    Agreement holds, and Validity holds because only oracle-validated
    blocks can be stored.

    ``propose_steps`` exposes the same logic as a generator for use under
    the cooperative scheduler (yields between oracle calls so adversarial
    interleavings are possible); :meth:`propose` runs it to completion for
    sequential callers.
    """

    def __init__(self, oracle: TokenOracle, anchor_id: str = "b0") -> None:
        if oracle.k != 1:
            raise ValueError("Protocol A requires the frugal oracle with k = 1")
        super().__init__()
        self.oracle = oracle
        self.anchor_id = anchor_id

    # -- scheduler-friendly body -------------------------------------------------

    def propose_steps(
        self, process: str, block: Block
    ) -> Generator[None, None, ValidatedBlock]:
        """Generator version of ``propose`` (one yield per oracle call)."""
        self.proposals[process] = block
        validated: Optional[ValidatedBlock] = None
        while validated is None:
            yield
            validated = self.oracle.get_token(self.anchor_id, block, process=process)
        yield
        stored = self.oracle.consume_token(validated, process=process)
        if not stored:  # pragma: no cover - k=1 always stores at least one block
            raise AssertionError("consumeToken returned an empty set under k = 1")
        decision = stored[0]
        self.decisions[process] = decision
        return decision

    # -- ConsensusObject interface ---------------------------------------------------

    def _decide(self, process: str, value: Any) -> Any:
        body = self.propose_steps(process, value)
        decision: Optional[ValidatedBlock] = None
        try:
            while True:
                next(body)
        except StopIteration as stop:
            decision = stop.value
        assert decision is not None
        return decision

    def propose(self, process: str, value: Any) -> Any:
        """Propose a block; returns the decided :class:`ValidatedBlock`.

        Overridden (rather than relying on the base class) because the
        generator body already records proposal and decision.
        """
        if process in self.decisions:
            raise ValueError(f"process {process!r} already decided")
        return self._decide(process, value)


# ---------------------------------------------------------------------------
# Figure 12: the prodigal oracle's consumeToken from Atomic Snapshot
# ---------------------------------------------------------------------------


class SnapshotTokenStore:
    """``consumeToken_h`` of Θ_P implemented over an Atomic Snapshot.

    One snapshot component per potential token owner; ``consume_token``
    performs ``update`` of the caller's component followed by a ``scan``
    and returns every token observed — the unbounded set semantics of the
    prodigal oracle.  Because atomic snapshot is implementable from
    read/write registers, this construction witnesses that Θ_P requires
    no synchronization power beyond registers (consensus number 1).
    """

    def __init__(self, processes: Sequence[str]) -> None:
        if not processes:
            raise ValueError("at least one process is required")
        self._index: Dict[str, int] = {p: i for i, p in enumerate(processes)}
        self._snapshot = AtomicSnapshot(components=len(processes), initial=None)

    @property
    def snapshot(self) -> AtomicSnapshot:
        return self._snapshot

    def consume_token(self, process: str, token: Any) -> Tuple[Any, ...]:
        """Figure 12: ``update(R_{h,m}, tkn_m); scan(...)``."""
        index = self._index[process]
        self._snapshot.update(index, token)
        view = self._snapshot.scan()
        return tuple(v for v in view if v is not None)

    def read_tokens(self) -> Tuple[Any, ...]:
        """Scan without writing (observer view of ``K[h]``)."""
        return tuple(v for v in self._snapshot.scan() if v is not None)


def snapshot_prodigal_oracle(processes: Sequence[str]) -> Dict[str, SnapshotTokenStore]:
    """Build one :class:`SnapshotTokenStore` per parent block lazily.

    Returns a ``defaultdict``-style mapping (plain dict with a helper) is
    overkill here: callers typically need the store for a single parent, so
    we return a dict pre-populated for the genesis parent and let callers
    add more.  Provided mainly so the benches can show the construction
    end-to-end with several parents.
    """
    return {"b0": SnapshotTokenStore(processes)}
