"""The Consensus abstraction (Definition 4.1) and a CAS-based implementation.

The paper uses the blockchain flavour of consensus: Termination, Integrity
and Agreement are classical, and Validity requires the decided block to
satisfy the validity predicate ``P`` (a valid block may be decided even if
it was proposed by a faulty process).

Two implementations are provided:

* :class:`CASConsensus` — the textbook wait-free consensus from a
  Compare&Swap register (first successful CAS wins); this is the target of
  the reduction chain Θ_{F,1} → CAS → Consensus and is also used on its
  own by the consensus-based protocol models;
* :class:`ConsensusObject` — the abstract interface plus the bookkeeping
  (per-process decisions) that the property checks
  (:func:`check_consensus_properties`) inspect.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.concurrent.registers import CASRegister

__all__ = [
    "ConsensusObject",
    "CASConsensus",
    "ConsensusViolation",
    "check_consensus_properties",
]

Validator = Callable[[Any], bool]


class ConsensusViolation(AssertionError):
    """Raised by :func:`check_consensus_properties` on a property violation."""


class ConsensusObject(abc.ABC):
    """Single-shot consensus: each process proposes once and decides once."""

    def __init__(self) -> None:
        self.decisions: Dict[str, Any] = {}
        self.proposals: Dict[str, Any] = {}

    @abc.abstractmethod
    def _decide(self, process: str, value: Any) -> Any:
        """Implementation hook: agree on a value given this proposal."""

    def propose(self, process: str, value: Any) -> Any:
        """Propose ``value``; returns the decided value for this instance."""
        if process in self.decisions:
            raise ConsensusViolation(
                f"process {process!r} proposed twice (Integrity would be violated)"
            )
        self.proposals[process] = value
        decision = self._decide(process, value)
        self.decisions[process] = decision
        return decision

    @property
    def decided_values(self) -> Tuple[Any, ...]:
        return tuple(self.decisions.values())


class CASConsensus(ConsensusObject):
    """Wait-free consensus from a Compare&Swap register.

    The register starts empty (``None``); every proposer CASes its value
    in; the first CAS succeeds and every proposer (including later ones)
    decides the register content.  Consensus number of CAS is ∞
    (Herlihy 1991), which is what Theorem 4.2 leans on.
    """

    _EMPTY = None

    def __init__(self, register: Optional[CASRegister] = None) -> None:
        super().__init__()
        self.register = register if register is not None else CASRegister(self._EMPTY)

    def _decide(self, process: str, value: Any) -> Any:
        previous = self.register.compare_and_swap(self._EMPTY, value, process=process)
        return value if previous == self._EMPTY else previous


def check_consensus_properties(
    consensus: ConsensusObject,
    *,
    validator: Optional[Validator] = None,
    correct_processes: Optional[Tuple[str, ...]] = None,
) -> None:
    """Assert Termination/Integrity/Agreement/Validity on a finished instance.

    ``correct_processes`` restricts the Termination/Agreement checks to the
    processes that were not crashed by the scheduler; ``validator`` is the
    predicate ``P`` of the paper's Validity property.

    Raises
    ------
    ConsensusViolation
        describing the first violated property.
    """
    processes = (
        correct_processes
        if correct_processes is not None
        else tuple(consensus.proposals)
    )
    # Termination: every correct proposer decided.
    for process in processes:
        if process in consensus.proposals and process not in consensus.decisions:
            raise ConsensusViolation(f"process {process!r} proposed but never decided")
    decided = [consensus.decisions[p] for p in processes if p in consensus.decisions]
    if not decided:
        return
    # Agreement: all correct deciders decided the same value.
    first = decided[0]
    for value in decided[1:]:
        if value != first:
            raise ConsensusViolation(
                f"agreement violated: decided values {first!r} and {value!r}"
            )
    # Validity: the decided value satisfies P.
    if validator is not None and not validator(first):
        raise ConsensusViolation(f"decided value {first!r} does not satisfy the predicate")
