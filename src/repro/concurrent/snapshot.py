"""Wait-free atomic snapshot (update/scan), after Aspnes & Herlihy / Afek et al.

The paper's Theorem 4.3 shows the prodigal oracle Θ_P has consensus
number 1 by implementing its ``consumeToken`` from an Atomic Snapshot
object [7], which itself is wait-free implementable from atomic registers.
To keep that chain of reductions honest we implement the snapshot the
classical way rather than as a plain array read:

* each process owns a single-writer register holding a triple
  ``(value, sequence_number, embedded_view)``;
* ``scan`` repeatedly performs *double collects* until either two
  successive collects are identical (a clean scan) or some register is
  observed to change twice, in which case the scanner *borrows* the view
  embedded by that writer (the standard helping mechanism that makes the
  construction wait-free);
* ``update`` increments the writer's sequence number and embeds a fresh
  scan in the written triple, which is what makes borrowing correct.

The object is generic over the number of components ``n`` and the stored
values; :mod:`repro.concurrent.reductions` instantiates it with token sets
to realise the Θ_P construction of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = ["AtomicSnapshot"]


@dataclass(frozen=True)
class _Cell:
    """Content of one single-writer register."""

    value: Any
    sequence: int
    view: Optional[Tuple[Any, ...]]


class AtomicSnapshot:
    """An ``n``-component atomic snapshot object.

    Every component starts at ``initial`` (default ``None``).  The
    operation granularity is the whole ``update``/``scan`` call — atomic in
    the cooperative model — but the implementation still follows the
    register-level algorithm so the helping/borrowing logic (and its
    wait-freedom) can be unit-tested and counted.
    """

    def __init__(self, components: int, initial: Any = None) -> None:
        if components < 1:
            raise ValueError("an atomic snapshot needs at least one component")
        self._cells: List[_Cell] = [
            _Cell(value=initial, sequence=0, view=None) for _ in range(components)
        ]
        self.scan_count = 0
        self.borrowed_scans = 0

    @property
    def components(self) -> int:
        return len(self._cells)

    # -- the two operations ------------------------------------------------------

    def update(self, index: int, value: Any) -> None:
        """Write ``value`` into component ``index`` (single writer per index)."""
        if not 0 <= index < len(self._cells):
            raise IndexError(index)
        embedded = self.scan()
        old = self._cells[index]
        self._cells[index] = _Cell(value=value, sequence=old.sequence + 1, view=embedded)

    def scan(self) -> Tuple[Any, ...]:
        """Return an atomic view of all components.

        Uses double collects with helping: bounded by the number of
        components, hence wait-free.
        """
        self.scan_count += 1
        moved: set[int] = set()
        previous = self._collect()
        while True:
            current = self._collect()
            if all(
                p.sequence == c.sequence for p, c in zip(previous, current)
            ):
                return tuple(c.value for c in current)
            for i, (p, c) in enumerate(zip(previous, current)):
                if p.sequence != c.sequence:
                    if i in moved and c.view is not None:
                        # Second observed move of writer i: borrow its view.
                        self.borrowed_scans += 1
                        return c.view
                    moved.add(i)
            previous = current

    # -- helpers --------------------------------------------------------------------

    def _collect(self) -> Tuple[_Cell, ...]:
        return tuple(self._cells)

    def peek(self, index: int) -> Any:
        """Non-linearizable convenience read of one component (tests only)."""
        return self._cells[index].value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AtomicSnapshot(components={self.components}, scans={self.scan_count})"
