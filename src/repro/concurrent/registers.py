"""Atomic registers and the Compare&Swap object (Figure 9).

In the cooperative shared-memory model of :mod:`repro.concurrent.scheduler`
every method call executes between two yield points and is therefore
atomic (linearizable) by construction; these classes simply make the
object vocabulary of the paper explicit and record their operation history
so tests can assert linearization-level facts (e.g. "exactly one CAS
succeeded").

* :class:`AtomicRegister` — read/write register (consensus number 1).
* :class:`CASRegister` — the paper's ``compare&swap(register, old, new)``
  that returns the *previous* value (consensus number ∞, Herlihy 1991).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["AtomicRegister", "CASRegister"]


@dataclass
class AtomicRegister:
    """A single-value atomic read/write register."""

    value: Any = None
    _writes: List[Tuple[str, Any]] = field(default_factory=list)

    def read(self, process: Optional[str] = None) -> Any:  # noqa: ARG002
        """Return the current value."""
        return self.value

    def write(self, value: Any, process: Optional[str] = None) -> None:
        """Overwrite the current value."""
        self.value = value
        self._writes.append((process or "?", value))

    @property
    def write_history(self) -> Tuple[Tuple[str, Any], ...]:
        """All writes applied, in linearization order."""
        return tuple(self._writes)


@dataclass
class CASRegister:
    """The Compare&Swap register of Figure 9.

    ``compare_and_swap(old, new)`` atomically compares the register with
    ``old``; on equality it stores ``new``.  In both cases it returns the
    value held *at the beginning* of the operation — the paper's CAS
    returns ``previous_value``, and the reduction in Figure 10 depends on
    that convention.
    """

    value: Any = None
    _operations: List[Tuple[str, Any, Any, Any]] = field(default_factory=list)

    def compare_and_swap(self, old: Any, new: Any, process: Optional[str] = None) -> Any:
        previous = self.value
        if previous == old:
            self.value = new
        self._operations.append((process or "?", old, new, previous))
        return previous

    def read(self, process: Optional[str] = None) -> Any:  # noqa: ARG002
        """Plain read of the register (CAS registers also support reads)."""
        return self.value

    @property
    def successful_operations(self) -> Tuple[Tuple[str, Any, Any, Any], ...]:
        """The CAS operations that actually changed the register."""
        return tuple(op for op in self._operations if op[1] == op[3])

    @property
    def operation_history(self) -> Tuple[Tuple[str, Any, Any, Any], ...]:
        """Every CAS applied, in linearization order: (process, old, new, previous)."""
        return tuple(self._operations)
