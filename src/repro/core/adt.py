"""Generic Abstract Data Types (Definitions 2.1–2.3).

The paper specifies shared objects through two complementary facets: a
*sequential specification* given by a transducer-style Abstract Data Type
``T = ⟨A, B, Z, ξ0, τ, δ⟩`` and a *consistency criterion* over concurrent
histories.  This module implements the first facet generically:

* :class:`AbstractDataType` — the 6-tuple.  Input symbols are arbitrary
  hashable Python objects (the paper encodes arguments inside the symbol,
  e.g. ``append(b)`` is one symbol per block ``b``; we model a symbol as an
  operation name plus its argument, which is the same countable set).
* :class:`Operation` — an element of ``Σ = A ∪ (A × B)``: an input symbol
  optionally paired with an output value (the paper's ``α/β`` notation).
* :func:`is_sequential_history` — membership in the sequential
  specification ``L(T)`` (Definition 2.3), computed by replaying the
  transition system from ``ξ0``.

The concrete BT-ADT of Definition 3.1 lives in :mod:`repro.core.bt_adt`
and the token-oracle ADTs in :mod:`repro.oracle.theta`; both subclass
:class:`AbstractDataType` so the sequential-specification machinery (and
its tests) apply uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "InputSymbol",
    "Operation",
    "AbstractDataType",
    "SequentialHistoryError",
    "is_sequential_history",
    "replay",
]

StateT = TypeVar("StateT")


@dataclass(frozen=True)
class InputSymbol:
    """An element of the input alphabet ``A``.

    The paper's input symbols carry no arguments because "the call of the
    same operation with different arguments is encoded by different
    symbols"; we realise that countable family as a (name, argument) pair.
    """

    name: str
    argument: Any = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.argument is None:
            return f"{self.name}()"
        return f"{self.name}({self.argument})"


@dataclass(frozen=True)
class Operation:
    """An element of ``Σ = A ∪ (A × B)``: a symbol, optionally with output.

    ``Operation(symbol)`` is the bare input symbol ``α``;
    ``Operation(symbol, output=β, has_output=True)`` is the pair ``α/β``.
    The explicit ``has_output`` flag distinguishes "no output recorded"
    from "output recorded and equal to ``None``".
    """

    symbol: InputSymbol
    output: Any = None
    has_output: bool = False

    @classmethod
    def invocation(cls, name: str, argument: Any = None) -> "Operation":
        """Build a bare input-symbol operation ``α``."""
        return cls(InputSymbol(name, argument))

    @classmethod
    def with_output(cls, name: str, argument: Any, output: Any) -> "Operation":
        """Build an ``α/β`` operation."""
        return cls(InputSymbol(name, argument), output=output, has_output=True)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.has_output:
            return f"{self.symbol}/{self.output}"
        return str(self.symbol)


class SequentialHistoryError(AssertionError):
    """Raised by :func:`replay` when a word is not in ``L(T)``.

    Carries the index of the offending operation and a human-readable
    reason, so tests and the examples can show *why* a candidate history
    is rejected.
    """

    def __init__(self, index: int, operation: Operation, reason: str) -> None:
        super().__init__(f"operation #{index} ({operation}): {reason}")
        self.index = index
        self.operation = operation
        self.reason = reason


class AbstractDataType(abc.ABC, Generic[StateT]):
    """The 6-tuple ``T = ⟨A, B, Z, ξ0, τ, δ⟩`` of Definition 2.1.

    Subclasses provide the initial abstract state and the two functions
    ``τ`` (transition) and ``δ`` (output).  Both must be *pure*: they take
    a state and return a new state / an output without mutating their
    argument, so that :func:`replay` can explore candidate histories
    without side effects.  Stateful convenience wrappers (the objects the
    rest of the library actually calls, e.g. :class:`repro.core.bt_adt.BTADT`)
    are built on top of these pure functions.
    """

    @abc.abstractmethod
    def initial_state(self) -> StateT:
        """Return the initial abstract state ``ξ0``."""

    @abc.abstractmethod
    def transition(self, state: StateT, symbol: InputSymbol) -> StateT:
        """The transition function ``τ : Z × A -> Z``."""

    @abc.abstractmethod
    def output(self, state: StateT, symbol: InputSymbol) -> Any:
        """The output function ``δ : Z × A -> B``."""

    # -- the τ_T extension over operations (Definition 2.2) -----------------

    def transition_operation(self, state: StateT, operation: Operation) -> StateT:
        """Apply ``τ_T``: transitions ignore the output component of ``α/β``."""
        return self.transition(state, operation.symbol)

    def step(self, state: StateT, operation: Operation) -> Tuple[StateT, Any]:
        """Apply one operation, returning ``(next_state, output)``."""
        out = self.output(state, operation.symbol)
        nxt = self.transition(state, operation.symbol)
        return nxt, out


def replay(
    adt: AbstractDataType[StateT],
    operations: Sequence[Operation],
    *,
    initial_state: Optional[StateT] = None,
) -> List[StateT]:
    """Replay ``operations`` through ``adt``, checking output compatibility.

    Implements the membership test of Definition 2.3: a sequence ``σ`` is a
    sequential history iff there is a state sequence ``(ξ_i)`` starting at
    ``ξ0`` such that each ``σ_i`` is output-compatible with ``ξ_i``
    (``ξ_i ∈ δ^{-1}_T(σ_i)``) and drives the state to ``ξ_{i+1}``.  Since
    our ADTs are deterministic transducers the state sequence, if it
    exists, is unique and is returned (including the final state, so the
    result has ``len(operations) + 1`` entries).

    Raises
    ------
    SequentialHistoryError
        if some recorded output differs from ``δ(ξ_i, α_i)``.
    """
    state = adt.initial_state() if initial_state is None else initial_state
    states: List[StateT] = [state]
    for index, operation in enumerate(operations):
        expected = adt.output(state, operation.symbol)
        if operation.has_output and not _outputs_equal(expected, operation.output):
            raise SequentialHistoryError(
                index,
                operation,
                f"recorded output {operation.output!r} differs from "
                f"specification output {expected!r}",
            )
        state = adt.transition(state, operation.symbol)
        states.append(state)
    return states


def is_sequential_history(
    adt: AbstractDataType[StateT], operations: Iterable[Operation]
) -> bool:
    """Return ``True`` iff the operation sequence belongs to ``L(T)``."""
    try:
        replay(adt, list(operations))
    except SequentialHistoryError:
        return False
    return True


def _outputs_equal(a: Any, b: Any) -> bool:
    """Structural output comparison tolerant of Blockchain/tuple mixing."""
    if a is b:
        return True
    try:
        if a == b:
            return True
    except Exception:  # pragma: no cover - exotic user outputs
        return False
    # Allow comparing a Blockchain against a tuple/list of block ids.
    ids_a = getattr(a, "ids", None)
    ids_b = getattr(b, "ids", None)
    if ids_a is not None and isinstance(b, (tuple, list)):
        return tuple(ids_a) == tuple(b)
    if ids_b is not None and isinstance(a, (tuple, list)):
        return tuple(ids_b) == tuple(a)
    return False
