"""Selection functions ``f : BT -> BC``.

The BT-ADT is parameterized by a selection function ``f`` drawn from a set
``F``: ``f(bt)`` selects a blockchain from the BlockTree, and both the
``read()`` output and the parent of an appended block are defined through
it (Definition 3.1).  The paper leaves ``f`` generic "to suit the different
blockchain implementations" and names two concrete instances — the longest
chain and the heaviest chain — plus, in Section 5, the GHOST rule used by
Ethereum and the trivial projection used by single-chain (consensus-based)
systems.

All implementations here are *deterministic*: ties are broken by the
lexicographic order of the tip identifier, exactly as in the worked
example of Figure 2 ("in case of equality, selects the largest based on
the lexicographical order").  Determinism matters because the consistency
criteria are stated over read outputs; a nondeterministic ``f`` would make
the sequential specification ill-defined.

Performance: the simulator evaluates ``f(bt)`` on virtually every
delivery/mining event, so the rules below never rematerialize every
root-to-leaf chain.  They read the per-leaf score indexes the tree
maintains incrementally (heights for the length score, cumulative weights
for the weight score, subtree weights for GHOST) and only build the one
winning chain — then memoize it against the tree's ``version`` counter,
so repeated ``read()`` / tip queries between mutations cost O(1).  The
original brute-force implementations are kept as ``_reference_*`` oracles
for the randomized equivalence tests and as the pre-index baseline the
perf bench (``python -m repro bench``) measures against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.block import Blockchain
from repro.core.blocktree import BlockTree
from repro.core.score import LengthScore, ScoreFunction, WeightScore


def _vector_tip(index, increment: float, by_length: bool) -> str:
    """Winning tip over a columnar leaf index (see ``BlockTree.leaf_index``).

    Reproduces the scalar ``max`` over ``(score, leaf_id)`` keys exactly:
    the score expression performs the same IEEE-754 operations in the
    same order as the per-leaf closure (``cum + increment * height``),
    and score ties resolve to the lexicographically largest leaf id.
    Small leaf sets (the overwhelmingly common case — fork trees carry a
    handful of live leaves) arrive as plain lists and take a scalar
    max-key loop; large ones arrive as numpy columns and are scored in
    one vectorized expression.
    """
    leaf_ids, heights, cums = index
    if len(leaf_ids) == 1:
        return leaf_ids[0]
    if isinstance(heights, list):
        if by_length:
            scores = heights
        elif increment:
            scores = [cum + increment * height for cum, height in zip(cums, heights)]
        else:
            scores = cums
        best_score = scores[0]
        best_leaf = leaf_ids[0]
        for i in range(1, len(leaf_ids)):
            score = scores[i]
            if score > best_score:
                best_score = score
                best_leaf = leaf_ids[i]
            elif score == best_score and leaf_ids[i] > best_leaf:
                best_leaf = leaf_ids[i]
        return best_leaf
    if by_length:
        scores = heights
    elif increment:
        scores = cums + increment * heights
    else:
        scores = cums
    best = scores.max()
    ties = np.flatnonzero(scores == best)
    if len(ties) == 1:
        return leaf_ids[int(ties[0])]
    winner = None
    for i in ties.tolist():
        leaf = leaf_ids[i]
        if winner is None or leaf > winner:
            winner = leaf
    return winner

__all__ = [
    "SelectionFunction",
    "LongestChain",
    "HeaviestChain",
    "GHOSTSelection",
    "ScoreMaximizingSelection",
    "FixedTipSelection",
]


@runtime_checkable
class SelectionFunction(Protocol):
    """Protocol for the paper's selection functions ``f ∈ F``.

    ``f(bt)`` must return a blockchain of ``bt`` (a root-to-vertex path);
    when the tree only contains the genesis block the returned chain is
    the genesis-only chain ``{b0}``.
    """

    def __call__(self, tree: BlockTree) -> Blockchain:
        """Select a chain from ``tree``."""
        ...


def _lexicographic_tiebreak(candidates: Sequence[str]) -> str:
    """Deterministic tie-break: the lexicographically largest identifier.

    Matches the convention of the paper's Figure 2 example.
    """
    return max(candidates)


@dataclass(frozen=True)
class ScoreMaximizingSelection:
    """Select the leaf chain maximizing an arbitrary score function.

    This is the generic form of which :class:`LongestChain` and
    :class:`HeaviestChain` are the two named instances.  Ties on the score
    are broken lexicographically on the tip identifier.

    For the paper's two score families the per-leaf score is read straight
    off the tree's incremental indexes (no chain is built until the winner
    is known); an unknown :class:`ScoreFunction` falls back to scoring each
    leaf chain — once per chain, not twice.
    """

    score: ScoreFunction = field(default_factory=LengthScore)

    def __call__(self, tree: BlockTree) -> Blockchain:
        cached = tree.cached_selection(self)
        if cached is not None:
            return cached
        winner = self._select_tip(tree)
        if winner is not None:
            chain = tree.chain_to(winner)
        else:
            chain = self._select_by_scoring_chains(tree)
        tree.cache_selection(self, chain)
        return chain

    def _select_tip(self, tree: BlockTree) -> Optional[str]:
        """Winning tip from the per-leaf indexes, or ``None`` if the score
        function is not index-backed.

        The comparison key ``(score, leaf_id)`` reproduces exactly the
        brute-force semantics: maximal score first, lexicographically
        largest tip identifier among score ties.
        """
        score = self.score
        if isinstance(score, LengthScore):
            index = tree.leaf_index()
            if index is not None:
                return _vector_tip(index, 0.0, True)

            def leaf_score(leaf: str) -> float:
                return float(tree.height_of(leaf))
        elif isinstance(score, WeightScore):
            increment = score.min_increment
            index = tree.leaf_index()
            if index is not None:
                return _vector_tip(index, increment, False)
            if increment:
                def leaf_score(leaf: str) -> float:
                    return float(
                        tree.cumulative_weight(leaf) + increment * tree.height_of(leaf)
                    )
            else:
                def leaf_score(leaf: str) -> float:
                    return float(tree.cumulative_weight(leaf))
        else:
            return None
        best_key: Optional[Tuple[float, str]] = None
        for leaf in tree.leaves():
            key = (leaf_score(leaf), leaf)
            if best_key is None or key > best_key:
                best_key = key
        assert best_key is not None  # a tree always has >= 1 leaf
        return best_key[1]

    def _select_by_scoring_chains(self, tree: BlockTree) -> Blockchain:
        """Generic fallback: score every leaf chain exactly once."""
        score = self.score
        best: Optional[Tuple[float, str]] = None
        winner: Optional[Blockchain] = None
        for chain in tree.all_chains():
            key = (score(chain), chain.tip.block_id)
            if best is None or key > best:
                best, winner = key, chain
        if winner is None:  # pragma: no cover - a tree always has >= 1 leaf
            return Blockchain.genesis_only(tree.genesis)
        return winner


@dataclass(frozen=True)
class LongestChain:
    """The longest-chain rule (Bitcoin's original description, Figure 2)."""

    def __call__(self, tree: BlockTree) -> Blockchain:
        return _LONGEST(tree)


@dataclass(frozen=True)
class HeaviestChain:
    """The heaviest-chain ("most accumulated work") rule.

    The paper notes that Bitcoin's ``f`` "returns the blockchain which has
    required the most computational work"; block weights model per-block
    difficulty.
    """

    def __call__(self, tree: BlockTree) -> Blockchain:
        return _HEAVIEST(tree)


@dataclass(frozen=True)
class GHOSTSelection:
    """The GHOST rule (Greedy Heaviest-Observed Sub-Tree).

    Used by the Ethereum model (Section 5.2): starting from the genesis
    block, repeatedly descend into the child whose *subtree* carries the
    most weight, until a leaf is reached.  Ties are broken
    lexicographically for determinism.

    The descent reads the tree's cached subtree weights (one comparison
    pass per level) and the resulting chain is memoized against the tree
    version, so repeated reads between mutations are O(1).
    """

    def __call__(self, tree: BlockTree) -> Blockchain:
        cached = tree.cached_selection(self)
        if cached is not None:
            return cached
        cursor = tree.ghost_tip()
        if cursor is None:
            # Reference descent (dict-indexed trees): scalar comparison
            # pass per level over the cached subtree weights.
            cursor = tree.genesis.block_id
            while True:
                children = tree.children_of(cursor)
                if not children:
                    break
                best: Optional[Tuple[float, str]] = None
                for child in children:
                    key = (tree.subtree_weight(child), child)
                    if best is None or key > best:
                        best = key
                cursor = best[1]  # type: ignore[index]
        chain = tree.chain_to(cursor)
        tree.cache_selection(self, chain)
        return chain


# Shared, stateless rule instances: ``LongestChain``/``HeaviestChain`` (and
# the ``FixedTipSelection`` fallback) delegate here instead of constructing
# a fresh inner selection + score object on every call.  Sharing is safe —
# the instances are frozen and the memo lives on the tree, not the rule.
_LONGEST = ScoreMaximizingSelection(LengthScore())
_HEAVIEST = ScoreMaximizingSelection(WeightScore())


@dataclass(frozen=True)
class FixedTipSelection:
    """Selection that follows an externally decided tip (consensus systems).

    Red Belly, Hyperledger Fabric and the other strongly consistent
    systems of Table 1 keep a *single* chain: the "selection" is the
    trivial projection from the (fork-free) tree to its unique chain.
    When a tip has been pinned (by the consensus/ordering layer) the
    selection returns the chain to that tip; otherwise it behaves as the
    longest-chain rule over what is necessarily a path.
    """

    tip_id: Optional[str] = None

    def __call__(self, tree: BlockTree) -> Blockchain:
        if self.tip_id is not None and self.tip_id in tree:
            cached = tree.cached_selection(self)
            if cached is not None:
                return cached
            chain = tree.chain_to(self.tip_id)
            tree.cache_selection(self, chain)
            return chain
        return _LONGEST(tree)

    def pinned_to(self, tip_id: str) -> "FixedTipSelection":
        """Return a copy pinned to ``tip_id`` (selection functions are frozen)."""
        return FixedTipSelection(tip_id=tip_id)


# ---------------------------------------------------------------------------
# Reference oracles — the pre-index brute-force implementations
# ---------------------------------------------------------------------------
#
# These reproduce, verbatim, the original O(leaves × depth) selection code
# that rebuilt every root-to-leaf chain per call (and scored each chain
# twice).  They exist for two consumers only: the randomized equivalence
# tests (tests/core/test_selection_equivalence.py) use them as oracles, and
# the perf bench harness (repro.engine.bench) times them as the in-run
# baseline the indexed rules are compared against.  Do not "optimize" them.


@dataclass(frozen=True)
class _ReferenceScoreMaximizingSelection:
    """Brute-force oracle: materialize and score every chain per call."""

    score: ScoreFunction = field(default_factory=LengthScore)

    def __call__(self, tree: BlockTree) -> Blockchain:
        chains = tree.all_chains()
        if not chains:  # pragma: no cover - a tree always has >= 1 leaf
            return Blockchain.genesis_only(tree.genesis)
        best_score = max(self.score(c) for c in chains)
        tied = [c for c in chains if self.score(c) == best_score]
        winner_tip = _lexicographic_tiebreak([c.tip.block_id for c in tied])
        for chain in tied:
            if chain.tip.block_id == winner_tip:
                return chain
        raise AssertionError("unreachable: tie-break winner must be among ties")


@dataclass(frozen=True)
class _ReferenceLongestChain:
    """Brute-force oracle for the longest-chain rule."""

    def __call__(self, tree: BlockTree) -> Blockchain:
        return _ReferenceScoreMaximizingSelection(LengthScore())(tree)


@dataclass(frozen=True)
class _ReferenceHeaviestChain:
    """Brute-force oracle for the heaviest-chain rule."""

    def __call__(self, tree: BlockTree) -> Blockchain:
        return _ReferenceScoreMaximizingSelection(WeightScore())(tree)


@dataclass(frozen=True)
class _ReferenceGHOSTSelection:
    """Pre-memo GHOST oracle: full unmemoized descent, two passes per level."""

    def __call__(self, tree: BlockTree) -> Blockchain:
        cursor = tree.genesis.block_id
        while True:
            children = tree.children_of(cursor)
            if not children:
                return tree.chain_to(cursor)
            best_weight = max(tree.subtree_weight(c) for c in children)
            tied = [c for c in children if tree.subtree_weight(c) == best_weight]
            cursor = _lexicographic_tiebreak(tied)
