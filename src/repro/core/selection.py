"""Selection functions ``f : BT -> BC``.

The BT-ADT is parameterized by a selection function ``f`` drawn from a set
``F``: ``f(bt)`` selects a blockchain from the BlockTree, and both the
``read()`` output and the parent of an appended block are defined through
it (Definition 3.1).  The paper leaves ``f`` generic "to suit the different
blockchain implementations" and names two concrete instances — the longest
chain and the heaviest chain — plus, in Section 5, the GHOST rule used by
Ethereum and the trivial projection used by single-chain (consensus-based)
systems.

All implementations here are *deterministic*: ties are broken by the
lexicographic order of the tip identifier, exactly as in the worked
example of Figure 2 ("in case of equality, selects the largest based on
the lexicographical order").  Determinism matters because the consistency
criteria are stated over read outputs; a nondeterministic ``f`` would make
the sequential specification ill-defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.block import Blockchain
from repro.core.blocktree import BlockTree
from repro.core.score import LengthScore, ScoreFunction, WeightScore

__all__ = [
    "SelectionFunction",
    "LongestChain",
    "HeaviestChain",
    "GHOSTSelection",
    "ScoreMaximizingSelection",
    "FixedTipSelection",
]


@runtime_checkable
class SelectionFunction(Protocol):
    """Protocol for the paper's selection functions ``f ∈ F``.

    ``f(bt)`` must return a blockchain of ``bt`` (a root-to-vertex path);
    when the tree only contains the genesis block the returned chain is
    the genesis-only chain ``{b0}``.
    """

    def __call__(self, tree: BlockTree) -> Blockchain:
        """Select a chain from ``tree``."""
        ...


def _lexicographic_tiebreak(candidates: Sequence[str]) -> str:
    """Deterministic tie-break: the lexicographically largest identifier.

    Matches the convention of the paper's Figure 2 example.
    """
    return max(candidates)


@dataclass(frozen=True)
class ScoreMaximizingSelection:
    """Select the leaf chain maximizing an arbitrary score function.

    This is the generic form of which :class:`LongestChain` and
    :class:`HeaviestChain` are the two named instances.  Ties on the score
    are broken lexicographically on the tip identifier.
    """

    score: ScoreFunction = field(default_factory=LengthScore)

    def __call__(self, tree: BlockTree) -> Blockchain:
        chains = tree.all_chains()
        if not chains:  # pragma: no cover - a tree always has >= 1 leaf
            return Blockchain.genesis_only(tree.genesis)
        best_score = max(self.score(c) for c in chains)
        tied = [c for c in chains if self.score(c) == best_score]
        winner_tip = _lexicographic_tiebreak([c.tip.block_id for c in tied])
        for chain in tied:
            if chain.tip.block_id == winner_tip:
                return chain
        raise AssertionError("unreachable: tie-break winner must be among ties")


@dataclass(frozen=True)
class LongestChain:
    """The longest-chain rule (Bitcoin's original description, Figure 2)."""

    def __call__(self, tree: BlockTree) -> Blockchain:
        return ScoreMaximizingSelection(LengthScore())(tree)


@dataclass(frozen=True)
class HeaviestChain:
    """The heaviest-chain ("most accumulated work") rule.

    The paper notes that Bitcoin's ``f`` "returns the blockchain which has
    required the most computational work"; block weights model per-block
    difficulty.
    """

    def __call__(self, tree: BlockTree) -> Blockchain:
        return ScoreMaximizingSelection(WeightScore())(tree)


@dataclass(frozen=True)
class GHOSTSelection:
    """The GHOST rule (Greedy Heaviest-Observed Sub-Tree).

    Used by the Ethereum model (Section 5.2): starting from the genesis
    block, repeatedly descend into the child whose *subtree* carries the
    most weight, until a leaf is reached.  Ties are broken
    lexicographically for determinism.
    """

    def __call__(self, tree: BlockTree) -> Blockchain:
        cursor = tree.genesis.block_id
        while True:
            children = tree.children_of(cursor)
            if not children:
                return tree.chain_to(cursor)
            best_weight = max(tree.subtree_weight(c) for c in children)
            tied = [c for c in children if tree.subtree_weight(c) == best_weight]
            cursor = _lexicographic_tiebreak(tied)


@dataclass(frozen=True)
class FixedTipSelection:
    """Selection that follows an externally decided tip (consensus systems).

    Red Belly, Hyperledger Fabric and the other strongly consistent
    systems of Table 1 keep a *single* chain: the "selection" is the
    trivial projection from the (fork-free) tree to its unique chain.
    When a tip has been pinned (by the consensus/ordering layer) the
    selection returns the chain to that tip; otherwise it behaves as the
    longest-chain rule over what is necessarily a path.
    """

    tip_id: Optional[str] = None

    def __call__(self, tree: BlockTree) -> Blockchain:
        if self.tip_id is not None and self.tip_id in tree:
            return tree.chain_to(self.tip_id)
        return LongestChain()(tree)

    def pinned_to(self, tip_id: str) -> "FixedTipSelection":
        """Return a copy pinned to ``tip_id`` (selection functions are frozen)."""
        return FixedTipSelection(tip_id=tip_id)
