"""Union prefix index and streaming monitor for the consistency criteria.

The consistency checkers of :mod:`repro.core.consistency` quantify over
*pairs* of read results: Strong Prefix asks whether two chains diverge,
Eventual Prefix scores their maximal common prefix (``mcps``), Local
Monotonic Read and Ever Growing Tree compare chain scores.  Evaluated
chain-by-chain, each of those questions costs O(L) in the chain length —
and the pair quantification makes the checkers O(R²·L) on a history with
R reads.

The :class:`ConsistencyIndex` below removes the O(L) factor: every chain
returned by a read is merged into one *analysis tree* keyed by block id
(the union of all read results is a tree because chains are paths from
the same genesis).  A chain is then represented by its **tip**, and the
pairwise questions become tree queries over incrementally maintained
heights and cumulative weights:

* prefix relation / divergence — an ancestor test, O(1) with the lazily
  computed DFS interval labels (or O(height gap) by climbing, which is
  what the streaming monitor uses while the tree is still growing);
* ``mcps`` — the score of the lowest common ancestor, read directly off
  the cached height (length score) or cumulative weight (weight score);
* chain score — the tip's cached height / cumulative weight.

Ingesting a history is near-linear: each distinct block is inserted once
(O(1) amortized per block), and a read whose chain is already indexed
costs O(1) — the merge walks the chain *tip-first* and stops at the first
known block.

Cumulative weights are accumulated root-first exactly like
:class:`~repro.core.blocktree.BlockTree` maintains them, so the floats
are bit-identical to :class:`~repro.core.score.WeightScore` summing a
materialized chain — which is what lets the indexed checkers reproduce
the brute-force verdicts byte-for-byte.

Assumption (same as everywhere else in this reproduction): block
identifiers uniquely identify block *content* within one history, as
with hash-identified blocks.  The merge verifies the block it stops at
matches the stored block and raises :class:`InconsistentChainError` on a
mismatch, so a history violating the assumption fails loudly instead of
being analysed wrongly.

The :class:`ConsistencyMonitor` at the bottom keeps the index online: it
subscribes to a :class:`~repro.core.history.HistoryRecorder` and
maintains the verdict of every consistency property as events stream in,
O(1) amortized per read, without ever retaining the materialized chains.
Its verdicts match the post-hoc checkers evaluated on the recorded
history at any prefix of the execution.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.block import Block, Blockchain
from repro.core.history import Event, History, HistoryRecorder
from repro.core.score import LengthScore, ScoreFunction, WeightScore, mcps

__all__ = ["ConsistencyIndex", "ConsistencyMonitor", "InconsistentChainError"]


class InconsistentChainError(ValueError):
    """Two read results disagree about the content of one block id."""


class ConsistencyIndex:
    """All read results of a history merged into one analysis tree.

    The index is append-only (like the BlockTree it mirrors): chains are
    merged with :meth:`add_chain`, whole histories with :meth:`ingest`.
    Queries never mutate the logical content; the DFS interval labels
    used for O(1) ancestor tests are recomputed lazily after mutations.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, Block] = {}
        self._parent: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._height: Dict[str, int] = {}
        self._cum_weight: Dict[str, float] = {}
        self._root: Optional[str] = None
        # Per-read bookkeeping: read eid -> tip block id, and per block the
        # eid of the first read whose chain introduced it (reads are
        # ingested in eid order, so "introduced it" = "first returned it").
        self._read_tips: Dict[int, str] = {}
        self._first_seen_read: Dict[str, int] = {}
        # Earliest append-invocation eid per block id (built by ingest()).
        self._first_append: Dict[str, int] = {}
        # Lazily recomputed DFS interval labels for O(1) ancestor tests.
        self._mutations = 0
        self._labels_at = -1
        self._tin: Dict[str, int] = {}
        self._tout: Dict[str, int] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_history(cls, history: History) -> "ConsistencyIndex":
        """Build and return the index of ``history`` (reads + append map)."""
        return cls().ingest(history)

    def ingest(self, history: History) -> "ConsistencyIndex":
        """Merge every read result of ``history`` and its append map."""
        for inv in history.append_invocations():
            block = inv.argument
            if isinstance(block, Block):
                self._first_append.setdefault(block.block_id, inv.eid)
        for read in history.read_responses():
            if isinstance(read.output, Blockchain):
                self.add_chain(read.chain, read_eid=read.eid)
        return self

    def add_chain(
        self, chain: Blockchain, read_eid: Optional[int] = None
    ) -> List[Block]:
        """Merge ``chain`` into the analysis tree; return the new blocks.

        Walks the chain tip-first and stops at the first block already
        indexed, so a fully known chain costs O(1) and the total merge
        cost over a history is O(distinct blocks + reads).  The block at
        the stop point is compared against the stored block, enforcing
        the id-uniqueness assumption documented in the module docstring.
        """
        blocks = chain.blocks
        if self._root is None:
            genesis = blocks[0]
            self._root = genesis.block_id
            self._blocks[genesis.block_id] = genesis
            self._parent[genesis.block_id] = None
            self._children[genesis.block_id] = []
            self._height[genesis.block_id] = 0
            self._cum_weight[genesis.block_id] = 0.0

        known = self._blocks
        i = len(blocks) - 1
        while i >= 0 and blocks[i].block_id not in known:
            i -= 1
        if i < 0:
            raise InconsistentChainError(
                f"chain rooted at {blocks[0].block_id!r} does not share the "
                f"index genesis {self._root!r}"
            )
        stop = blocks[i]
        if known[stop.block_id] != stop:
            raise InconsistentChainError(
                f"block id {stop.block_id!r} carries different content in "
                "different read results"
            )

        new_blocks = blocks[i + 1 :]
        for block in new_blocks:
            parent_id = block.parent_id
            assert parent_id is not None  # genesis is always the stop block
            bid = block.block_id
            known[bid] = block
            self._parent[bid] = parent_id
            self._children[bid] = []
            self._children[parent_id].append(bid)
            self._height[bid] = self._height[parent_id] + 1
            self._cum_weight[bid] = self._cum_weight[parent_id] + block.weight
            if read_eid is not None:
                self._first_seen_read[bid] = read_eid
        if new_blocks:
            self._mutations += 1
        if read_eid is not None:
            self._read_tips[read_eid] = blocks[-1].block_id
        return list(new_blocks)

    # -- basic accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: object) -> bool:
        return block_id in self._blocks

    def block(self, block_id: str) -> Block:
        return self._blocks[block_id]

    def block_ids(self) -> Tuple[str, ...]:
        """Identifiers in insertion (parents-first) order."""
        return tuple(self._blocks)

    def parent_of(self, block_id: str) -> Optional[str]:
        return self._parent[block_id]

    def height_of(self, block_id: str) -> int:
        return self._height[block_id]

    def cumulative_weight(self, block_id: str) -> float:
        """Root-first accumulated non-genesis weight up to ``block_id``."""
        return self._cum_weight[block_id]

    def read_tip(self, read_eid: int) -> str:
        """Tip block id of the chain returned by the read with ``read_eid``."""
        return self._read_tips[read_eid]

    def first_seen_read(self, block_id: str) -> Optional[int]:
        """Eid of the earliest read whose chain contains ``block_id``."""
        return self._first_seen_read.get(block_id)

    def first_append(self, block_id: str) -> Optional[int]:
        """Eid of the earliest append invocation for ``block_id``."""
        return self._first_append.get(block_id)

    def note_append(self, block_id: str, eid: int) -> None:
        """Record an append invocation (streaming counterpart of ingest)."""
        self._first_append.setdefault(block_id, eid)

    # -- ancestry -------------------------------------------------------------

    def _ensure_labels(self) -> None:
        if self._labels_at == self._mutations or self._root is None:
            return
        tin: Dict[str, int] = {}
        tout: Dict[str, int] = {}
        clock = 0
        # Iterative DFS (histories can hold chains deeper than the
        # interpreter's recursion limit).
        stack: List[Tuple[str, bool]] = [(self._root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                tout[node] = clock
                clock += 1
                continue
            tin[node] = clock
            clock += 1
            stack.append((node, True))
            stack.extend((child, False) for child in self._children[node])
        self._tin, self._tout = tin, tout
        self._labels_at = self._mutations

    def is_prefix(self, ancestor_id: str, descendant_id: str) -> bool:
        """``True`` iff the chain to ``ancestor_id`` prefixes the one to
        ``descendant_id`` (ancestor-or-equal in the analysis tree), O(1)."""
        self._ensure_labels()
        tin = self._tin
        return tin[ancestor_id] <= tin[descendant_id] <= self._tout[ancestor_id]

    def prefix_related(self, a: str, b: str) -> bool:
        """``True`` iff the chains to ``a`` and ``b`` do *not* diverge."""
        self._ensure_labels()
        tin, tout = self._tin, self._tout
        ta, tb = tin[a], tin[b]
        if ta <= tb:
            return tb <= tout[a]
        return ta <= tout[b]

    def prefix_related_climb(self, a: str, b: str) -> bool:
        """Label-free variant walking exactly the height gap.

        Used by the streaming monitor, where the tree mutates on every
        read and recomputing interval labels would be O(V) per event.
        """
        height = self._height
        ha, hb = height[a], height[b]
        if ha > hb:
            a, b, ha, hb = b, a, hb, ha
        parent = self._parent
        cursor = b
        for _ in range(hb - ha):
            cursor = parent[cursor]  # type: ignore[assignment]
        return cursor == a

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """LCA of two blocks (always exists: the shared genesis)."""
        height, parent = self._height, self._parent
        ha, hb = height[a], height[b]
        while ha > hb:
            a = parent[a]  # type: ignore[assignment]
            ha -= 1
        while hb > ha:
            b = parent[b]  # type: ignore[assignment]
            hb -= 1
        while a != b:
            a = parent[a]  # type: ignore[assignment]
            b = parent[b]  # type: ignore[assignment]
        return a

    # -- scores ---------------------------------------------------------------

    def path_score(self, block_id: str, score: ScoreFunction) -> Optional[float]:
        """Score of the chain ending at ``block_id``, off the indexes.

        Returns ``None`` for score functions that are not index-backed
        (callers fall back to scoring the materialized chain; the two
        built-in families cover every score used in this reproduction).
        """
        if isinstance(score, LengthScore):
            return float(self._height[block_id])
        if isinstance(score, WeightScore):
            base = self._cum_weight[block_id]
            return float(base + score.min_increment * self._height[block_id])
        return None

    def score_of_read(self, read: Event, score: ScoreFunction) -> float:
        """Score of the chain returned by ``read`` (index-backed when possible)."""
        value = self.path_score(self._read_tips[read.eid], score)
        if value is not None:
            return value
        return score(read.chain)

    def mcps_of_tips(
        self,
        a: str,
        b: str,
        score: ScoreFunction,
        chains: Optional[Tuple[Blockchain, Blockchain]] = None,
    ) -> float:
        """``mcps`` of the chains ending at tips ``a`` and ``b``.

        For the index-backed score families this is the cached score of
        the LCA; for generic scores the caller must supply the two
        materialized ``chains`` and the computation defers to
        :func:`repro.core.score.mcps` for byte-identical results.
        """
        if isinstance(score, (LengthScore, WeightScore)):
            lca = self.lowest_common_ancestor(a, b)
            value = self.path_score(lca, score)
            assert value is not None
            return value
        if chains is None:
            raise ValueError(
                "mcps over a custom score function needs the materialized chains"
            )
        return mcps(chains[0], chains[1], score)

    def tips_totally_ordered(self, tips: List[str]) -> bool:
        """``True`` iff every pair of ``tips`` is ancestry-comparable.

        This is the Strong Prefix fast path: dedupe, sort by height and
        verify consecutive ancestry (ancestry is transitive along a
        height-sorted sequence, so consecutive checks imply all pairs).
        """
        distinct = sorted(set(tips), key=lambda t: (self._height[t], t))
        return all(
            self.is_prefix(distinct[k], distinct[k + 1])
            for k in range(len(distinct) - 1)
        )


# ---------------------------------------------------------------------------
# Streaming monitor
# ---------------------------------------------------------------------------


class ConsistencyMonitor:
    """Online consistency verdicts over a stream of history events.

    Subscribe the monitor to a live :class:`HistoryRecorder` with
    :meth:`attach` (or feed it a recorded history with :meth:`replay`);
    it maintains, per consistency property, the verdict the post-hoc
    checkers of :mod:`repro.core.consistency` would return on the
    history recorded *so far* — evaluated against the raw event stream,
    i.e. the same history ``recorder.history()`` snapshots.

    State is O(distinct blocks + processes): the union
    :class:`ConsistencyIndex`, one score per process, the Ever Growing
    Tree stall deque and the Eventual Prefix limit views.  No
    materialized chain is retained, which is what makes the monitor
    suitable for long-duration sweeps whose histories would otherwise
    hold O(R·L) chain snapshots alive during analysis.

    ``require_all_pairs`` (a test-only diagnostic of the post-hoc
    Eventual Prefix checker) is not supported.
    """

    def __init__(
        self,
        score: Optional[ScoreFunction] = None,
        validator: Optional[Callable[[Block], bool]] = None,
        stall_threshold: Optional[int] = None,
    ) -> None:
        self.score = score if score is not None else LengthScore()
        self.validator = validator
        self.stall_threshold = stall_threshold
        self.index = ConsistencyIndex()
        self.reads_seen = 0
        self.events_seen = 0
        # block-validity
        self._validity_ok = True
        self._validator_memo: Dict[str, bool] = {}
        # local-monotonic-read
        self._lmr_ok = True
        self._last_score: Dict[str, float] = {}
        # strong-prefix: the deepest tip seen; sticky-false on divergence.
        self._sp_ok = True
        self._sp_max_tip: Optional[str] = None
        # ever-growing-tree: "active" reads (no later read exceeds their
        # score) as (read_index, score), scores non-increasing.
        self._egt_active: Deque[Tuple[int, float]] = deque()
        # eventual-prefix: per process the last read (eid, tip), plus the
        # running prefix-maximum of read scores stored at its increase
        # points (eid, new_max) for binary search.
        self._ep_limit: Dict[str, Tuple[int, str]] = {}
        self._ep_prefix_max: List[Tuple[int, float]] = []
        self._ep_pair_memo: Dict[Tuple[str, str], float] = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, recorder: HistoryRecorder) -> "ConsistencyMonitor":
        """Subscribe to every event ``recorder`` will record."""
        recorder.subscribe(self.observe)
        return self

    def replay(self, history: History) -> "ConsistencyMonitor":
        """Feed an already recorded history through the monitor."""
        for event in history:
            self.observe(event)
        return self

    # -- event intake ---------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Process one history event (non read/append events are ignored)."""
        self.events_seen += 1
        if event.is_append_invocation and isinstance(event.argument, Block):
            self.index.note_append(event.argument.block_id, event.eid)
        elif event.is_read_response and isinstance(event.output, Blockchain):
            self._observe_read(event)

    def _observe_read(self, event: Event) -> None:
        index = self.index
        chain: Blockchain = event.output
        new_blocks = index.add_chain(chain, read_eid=event.eid)
        tip = chain.tip.block_id
        value = index.path_score(tip, self.score)
        s = value if value is not None else self.score(chain)

        # Block validity: only newly indexed blocks need checking — an
        # already-indexed block either violated at its first read (the
        # verdict is sticky) or was appended before that earlier read and
        # is therefore appended before this one too.
        for block in new_blocks:
            if self.validator is not None and not self._is_valid(block):
                self._validity_ok = False
            first_append = index.first_append(block.block_id)
            if first_append is None or first_append >= event.eid:
                self._validity_ok = False

        # Local monotonic read.
        previous = self._last_score.get(event.process)
        if previous is not None and previous > s:
            self._lmr_ok = False
        self._last_score[event.process] = s

        # Strong prefix: every new tip must be comparable with the deepest
        # tip seen so far (all earlier tips lie on the root path to it, so
        # comparability with the maximum implies comparability with all).
        if self._sp_ok:
            if self._sp_max_tip is None:
                self._sp_max_tip = tip
            elif index.prefix_related_climb(tip, self._sp_max_tip):
                if index.height_of(tip) > index.height_of(self._sp_max_tip):
                    self._sp_max_tip = tip
            else:
                self._sp_ok = False

        # Ever growing tree: drop active reads this read's score exceeds;
        # equal scores do not count as growth and stay active.
        active = self._egt_active
        while active and active[-1][1] < s:
            active.pop()
        active.append((self.reads_seen, s))

        # Eventual prefix limit views and the score prefix-maximum.
        self._ep_limit[event.process] = (event.eid, tip)
        if not self._ep_prefix_max or s > self._ep_prefix_max[-1][1]:
            self._ep_prefix_max.append((event.eid, s))

        self.reads_seen += 1

    def _is_valid(self, block: Block) -> bool:
        memo = self._validator_memo
        verdict = memo.get(block.block_id)
        if verdict is None:
            assert self.validator is not None
            verdict = memo[block.block_id] = bool(self.validator(block))
        return verdict

    # -- verdicts -------------------------------------------------------------

    def block_validity_holds(self) -> bool:
        return self._validity_ok

    def local_monotonic_read_holds(self) -> bool:
        return self._lmr_ok

    def strong_prefix_holds(self) -> bool:
        return self._sp_ok

    def ever_growing_tree_holds(self) -> bool:
        if self.stall_threshold is None or not self._egt_active:
            return True
        oldest_index = self._egt_active[0][0]
        # A violating read needs at least one later read (even with a zero
        # threshold), hence the floor of 1 on the required stall count.
        required = max(self.stall_threshold, 1)
        return (self.reads_seen - 1 - oldest_index) < required

    def eventual_prefix_holds(self) -> bool:
        limits = list(self._ep_limit.values())
        index = self.index
        for x in range(len(limits)):
            eid_a, tip_a = limits[x]
            for y in range(x + 1, len(limits)):
                eid_b, tip_b = limits[y]
                if index.prefix_related_climb(tip_a, tip_b):
                    continue
                shared = self._pair_mcps(tip_a, tip_b)
                ceiling = self._max_score_before(min(eid_a, eid_b))
                if ceiling is not None and ceiling > shared:
                    return False
        return True

    def _pair_mcps(self, a: str, b: str) -> float:
        key = (a, b) if a <= b else (b, a)
        value = self._ep_pair_memo.get(key)
        if value is None:
            lca = self.index.lowest_common_ancestor(a, b)
            score = self.index.path_score(lca, self.score)
            if score is None:
                # Generic score function: score the materialized LCA chain
                # (only reachable with a custom score; both built-ins are
                # index-backed).
                score = self.score(self._materialize(lca))
            value = self._ep_pair_memo[key] = score
        return value

    def _materialize(self, block_id: str) -> Blockchain:
        path: List[Block] = []
        cursor: Optional[str] = block_id
        while cursor is not None:
            path.append(self.index.block(cursor))
            cursor = self.index.parent_of(cursor)
        path.reverse()
        return Blockchain(tuple(path))

    def _max_score_before(self, eid: int) -> Optional[float]:
        """Maximum read score among reads with ``eid`` strictly below."""
        points = self._ep_prefix_max
        lo, hi = 0, len(points)
        while lo < hi:
            mid = (lo + hi) // 2
            if points[mid][0] < eid:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return points[lo - 1][1]

    def property_verdicts(self) -> Dict[str, bool]:
        """Current verdict per property, keyed by the checker names."""
        return {
            "block-validity": self.block_validity_holds(),
            "local-monotonic-read": self.local_monotonic_read_holds(),
            "strong-prefix": self.strong_prefix_holds(),
            "ever-growing-tree": self.ever_growing_tree_holds(),
            "eventual-prefix": self.eventual_prefix_holds(),
        }

    def strong_holds(self) -> bool:
        """BT Strong Consistency verdict on the history observed so far."""
        return (
            self._validity_ok
            and self._lmr_ok
            and self._sp_ok
            and self.ever_growing_tree_holds()
        )

    def eventual_holds(self) -> bool:
        """BT Eventual Consistency verdict on the history observed so far."""
        return (
            self._validity_ok
            and self._lmr_ok
            and self.ever_growing_tree_holds()
            and self.eventual_prefix_holds()
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the verdicts and stream counters."""
        return {
            "strong": self.strong_holds(),
            "eventual": self.eventual_holds(),
            "properties": self.property_verdicts(),
            "reads": self.reads_seen,
            "events": self.events_seen,
            "blocks_indexed": len(self.index),
        }
