"""Core formalization: blocks, BlockTree, BT-ADT, histories, consistency.

This subpackage is a direct executable transcription of Sections 2 and 3
of the paper:

* :mod:`repro.core.block` — blocks and blockchains (paths to genesis).
* :mod:`repro.core.blocktree` — the append-only rooted tree ``bt``.
* :mod:`repro.core.score` — score functions and the ``mcps`` helper.
* :mod:`repro.core.selection` — selection functions ``f : BT -> BC``.
* :mod:`repro.core.validity` — validity predicates ``P``.
* :mod:`repro.core.adt` — generic Abstract Data Types (Definition 2.1).
* :mod:`repro.core.bt_adt` — the BT-ADT sequential spec (Definition 3.1).
* :mod:`repro.core.history` — concurrent histories (Definition 2.4).
* :mod:`repro.core.consistency` — SC and EC criteria (Definitions 3.2–3.4).
* :mod:`repro.core.consistency_index` — the union prefix index backing the
  criteria checkers, and the streaming :class:`ConsistencyMonitor`.
* :mod:`repro.core.hierarchy` — the refinement hierarchy (Figures 8/14).
"""

from repro.core.block import Block, Blockchain, GENESIS, genesis_block
from repro.core.blocktree import BlockTree
from repro.core.score import LengthScore, WeightScore, mcps
from repro.core.selection import LongestChain, HeaviestChain, GHOSTSelection
from repro.core.validity import AlwaysValid, ParentInTree, NoDoubleSpend
from repro.core.adt import AbstractDataType, Operation
from repro.core.bt_adt import BTADT
from repro.core.history import History, Event, EventKind, HistoryRecorder
from repro.core.consistency import (
    BTStrongConsistency,
    BTEventualConsistency,
    check_strong_consistency,
    check_eventual_consistency,
)
from repro.core.consistency_index import ConsistencyIndex, ConsistencyMonitor
from repro.core.hierarchy import Refinement, refinement_hierarchy

__all__ = [
    "Block",
    "Blockchain",
    "GENESIS",
    "genesis_block",
    "BlockTree",
    "LengthScore",
    "WeightScore",
    "mcps",
    "LongestChain",
    "HeaviestChain",
    "GHOSTSelection",
    "AlwaysValid",
    "ParentInTree",
    "NoDoubleSpend",
    "AbstractDataType",
    "Operation",
    "BTADT",
    "History",
    "Event",
    "EventKind",
    "HistoryRecorder",
    "BTStrongConsistency",
    "BTEventualConsistency",
    "check_strong_consistency",
    "check_eventual_consistency",
    "ConsistencyIndex",
    "ConsistencyMonitor",
    "Refinement",
    "refinement_hierarchy",
]
