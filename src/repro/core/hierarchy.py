"""The refinement hierarchy of Figures 8 and 14.

Section 3.4 combines the two consistency criteria (SC, EC) with the two
oracle families (Θ_P prodigal; Θ_{F,k} frugal with bound ``k``) into
refined abstract data types ``R(BT-ADT_C, Θ)`` and orders them by
inclusion of their admissible history sets:

* Theorem 3.1 — ``H_SC ⊂ H_EC`` (SC is strictly stronger than EC);
* Theorem 3.2 / 3.3 — ``Ĥ^{R(BT,Θ_F)} ⊆ Ĥ^{R(BT,Θ_P)}``;
* Theorem 3.4 — ``k1 ≤ k2 ⟹ Ĥ^{R(BT,Θ_{F,k1})} ⊆ Ĥ^{R(BT,Θ_{F,k2})}``;
* Corollary 3.4.1 — ``Ĥ^{R(BT_SC,Θ)} ⊆ Ĥ^{R(BT_EC,Θ)}``.

Section 4 then removes two vertices from the message-passing hierarchy:
``R(BT-ADT_SC, Θ_P)`` and ``R(BT-ADT_SC, Θ_{F,k>1})`` are impossible in a
message-passing system because any fork-allowing oracle lets Strong Prefix
be violated (Theorem 4.8); hence Θ_{F,k=1} — and by Theorem 4.2 Consensus —
is necessary for SC (Corollaries 4.8.1/4.8.2).

This module provides a small declarative model of that hierarchy:
:class:`Refinement` descriptors, the strength partial order, and the edge
lists that the Figure 8 / Figure 14 benches render.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "Consistency",
    "OracleKind",
    "Refinement",
    "refinement_hierarchy",
    "message_passing_hierarchy",
    "is_weaker_or_equal",
    "consensus_number",
]


class Consistency:
    """Names of the two consistency criteria."""

    STRONG = "SC"
    EVENTUAL = "EC"

    ALL = (STRONG, EVENTUAL)


class OracleKind:
    """Names of the two oracle families."""

    FRUGAL = "frugal"
    PRODIGAL = "prodigal"

    ALL = (FRUGAL, PRODIGAL)


@dataclass(frozen=True, order=True)
class Refinement:
    """A vertex of the hierarchy: ``R(BT-ADT_consistency, Θ_oracle)``.

    ``k`` is the frugal bound (``math.inf`` for the prodigal oracle, which
    the paper defines as "Θ_F with k = ∞").
    """

    consistency: str
    oracle: str
    k: float = math.inf

    def __post_init__(self) -> None:
        if self.consistency not in Consistency.ALL:
            raise ValueError(f"unknown consistency {self.consistency!r}")
        if self.oracle not in OracleKind.ALL:
            raise ValueError(f"unknown oracle kind {self.oracle!r}")
        if self.oracle == OracleKind.FRUGAL:
            if not (self.k == math.inf or (isinstance(self.k, (int, float)) and self.k >= 1)):
                raise ValueError("frugal oracle requires k >= 1")
        if self.oracle == OracleKind.PRODIGAL and self.k != math.inf:
            raise ValueError("prodigal oracle has k = ∞ by definition")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def sc_frugal(cls, k: float = 1) -> "Refinement":
        return cls(Consistency.STRONG, OracleKind.FRUGAL, k)

    @classmethod
    def ec_frugal(cls, k: float = 1) -> "Refinement":
        return cls(Consistency.EVENTUAL, OracleKind.FRUGAL, k)

    @classmethod
    def sc_prodigal(cls) -> "Refinement":
        return cls(Consistency.STRONG, OracleKind.PRODIGAL)

    @classmethod
    def ec_prodigal(cls) -> "Refinement":
        return cls(Consistency.EVENTUAL, OracleKind.PRODIGAL)

    # -- properties ---------------------------------------------------------------

    @property
    def allows_forks(self) -> bool:
        """``True`` iff the oracle may validate >1 block per parent."""
        return self.oracle == OracleKind.PRODIGAL or self.k > 1

    @property
    def message_passing_implementable(self) -> bool:
        """Theorem 4.8: SC cannot be implemented with a fork-allowing oracle."""
        return not (self.consistency == Consistency.STRONG and self.allows_forks)

    def label(self) -> str:
        """Human-readable label matching the paper's notation."""
        if self.oracle == OracleKind.PRODIGAL:
            oracle = "Θ_P"
        elif self.k == math.inf:
            oracle = "Θ_F,k=∞"
        else:
            k = int(self.k) if float(self.k).is_integer() else self.k
            oracle = f"Θ_F,k={k}"
        return f"R(BT-ADT_{self.consistency}, {oracle})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


def is_weaker_or_equal(weaker: Refinement, stronger: Refinement) -> bool:
    """``True`` iff every history of ``stronger`` is admissible for ``weaker``.

    i.e. ``Ĥ(stronger) ⊆ Ĥ(weaker)`` — "weaker admits at least as many
    histories".  The relation combines Theorem 3.1 (SC ⇒ EC), Theorems
    3.3/3.4 (oracle bound monotonicity) and Corollary 3.4.1.
    """
    consistency_ok = (
        weaker.consistency == stronger.consistency
        or (weaker.consistency == Consistency.EVENTUAL and stronger.consistency == Consistency.STRONG)
    )
    k_weaker = weaker.k if weaker.oracle == OracleKind.FRUGAL else math.inf
    k_stronger = stronger.k if stronger.oracle == OracleKind.FRUGAL else math.inf
    oracle_ok = k_stronger <= k_weaker
    return consistency_ok and oracle_ok


def consensus_number(refinement_or_oracle: "Refinement | str", k: float = math.inf) -> float:
    """Consensus number of the oracle (Theorems 4.2 and 4.3).

    ``Θ_{F,k=1}`` has consensus number ∞ (it wait-free implements
    Compare&Swap, hence Consensus for any number of processes);
    ``Θ_P`` (and any fork-allowing frugal oracle, which the paper treats
    through the same snapshot construction) has consensus number 1.
    """
    if isinstance(refinement_or_oracle, Refinement):
        oracle = refinement_or_oracle.oracle
        k = refinement_or_oracle.k
    else:
        oracle = refinement_or_oracle
    if oracle == OracleKind.FRUGAL and k == 1:
        return math.inf
    return 1


def refinement_hierarchy(k_values: Tuple[float, ...] = (1, 2)) -> Dict[Refinement, Tuple[Refinement, ...]]:
    """The full hierarchy of Figure 8 as an adjacency map.

    An edge ``a -> b`` means "``a`` is stronger than ``b``": every history
    admissible for ``a`` is admissible for ``b`` (``Ĥ(a) ⊆ Ĥ(b)``) and the
    two vertices are distinct.  ``k_values`` selects which frugal bounds to
    include (the paper's figure shows k=1 and a generic k>1; the default
    reproduces exactly that, with 2 standing for "some k>1").
    """
    vertices: List[Refinement] = []
    for consistency in Consistency.ALL:
        for k in k_values:
            vertices.append(Refinement(consistency, OracleKind.FRUGAL, k))
        vertices.append(Refinement(consistency, OracleKind.PRODIGAL))

    edges: Dict[Refinement, List[Refinement]] = {v: [] for v in vertices}
    for stronger in vertices:
        for weaker in vertices:
            if stronger == weaker:
                continue
            if is_weaker_or_equal(weaker, stronger):
                edges[stronger].append(weaker)
    return {v: tuple(sorted(targets, key=lambda r: r.label())) for v, targets in edges.items()}


def message_passing_hierarchy(
    k_values: Tuple[float, ...] = (1, 2)
) -> Dict[Refinement, Tuple[Refinement, ...]]:
    """The Figure 14 hierarchy: Figure 8 minus the impossible vertices.

    The vertices ``R(BT-ADT_SC, Θ_P)`` and ``R(BT-ADT_SC, Θ_{F,k>1})`` are
    removed (greyed out in the paper) because Theorem 4.8 shows they cannot
    be implemented in a message-passing system.
    """
    full = refinement_hierarchy(k_values)
    feasible = {v for v in full if v.message_passing_implementable}
    return {
        v: tuple(t for t in targets if t in feasible)
        for v, targets in full.items()
        if v in feasible
    }
