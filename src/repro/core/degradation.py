"""Online degradation tracking for adversarial runs.

The :class:`~repro.core.consistency_index.ConsistencyMonitor` maintains
*verdicts* (does a consistency criterion hold) over a streaming history;
adversarial scenarios — healing partitions, churn, eclipse windows —
need the quantitative counterpart: *how far* did the correct replicas'
views diverge, and how quickly did they re-agree once the adversary
stopped interfering.

:class:`DegradationMonitor` subscribes to a
:class:`~repro.core.history.HistoryRecorder` exactly like the
consistency monitor does and folds every read response into one
:class:`~repro.core.consistency_index.ConsistencyIndex`.  After each
read it recomputes the **divergence depth** over the correct replicas'
latest tips: for each tip pair the depth of the shallower branch past
their lowest common ancestor,

    ``min(height(a), height(b)) - height(lca(a, b))``

which is 0 iff the pair is prefix-related — two replicas holding
different-length prefixes of one chain agree; only a genuine fork
counts.  The monitor records a ``(virtual time, depth)`` sample at every
change, and — when the fault announces a heal time — the first post-heal
instant at which the depth returns to 0, i.e. when correct-replica
prefix agreement is restored.  ``time_to_heal`` is that instant minus
the heal time.

The monitor is observation-only: it never mutates replicas or schedules
events, so attaching it cannot perturb the recorded history.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.block import Blockchain
from repro.core.consistency_index import ConsistencyIndex
from repro.core.history import Event, HistoryRecorder

__all__ = ["DegradationMonitor"]


class DegradationMonitor:
    """Divergence depth over time, and time-to-heal, from streamed reads.

    Parameters
    ----------
    heal_at:
        The adversary's announced heal time (see
        :meth:`~repro.network.faults.FaultModel.heal_time`); ``None``
        disables the time-to-heal measurement.
    clock:
        Zero-argument callable returning the current virtual time
        (``lambda: simulator.now``).  Without one, samples are stamped
        with the event id — still monotone, but not in virtual time.
    correct:
        Predicate over pids deciding whose tips count toward divergence
        (defaults to everyone); the run harness wires it to
        ``replica.is_correct`` so crashed and Byzantine views are
        excluded at sample time.
    """

    def __init__(
        self,
        heal_at: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        correct: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.heal_at = heal_at
        self.clock = clock
        self.correct = correct
        self.index = ConsistencyIndex()
        self.reads_seen = 0
        self.max_divergence_depth = 0
        self.current_divergence_depth = 0
        self.healed_at: Optional[float] = None
        #: ``(time, depth)`` at every depth change (plus the first read).
        self.samples: List[Tuple[float, int]] = []
        self._tips: Dict[str, str] = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, recorder: HistoryRecorder) -> "DegradationMonitor":
        """Subscribe to every event ``recorder`` will record."""
        recorder.subscribe(self.observe)
        return self

    # -- event intake ---------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Fold one history event in (only read responses matter here)."""
        if not event.is_read_response or not isinstance(event.output, Blockchain):
            return
        chain: Blockchain = event.output
        self.index.add_chain(chain, read_eid=event.eid)
        self._tips[event.process] = chain.tip.block_id
        now = self.clock() if self.clock is not None else float(event.eid)
        depth = self._divergence_depth()
        if not self.samples or depth != self.current_divergence_depth:
            self.samples.append((now, depth))
        self.current_divergence_depth = depth
        if depth > self.max_divergence_depth:
            self.max_divergence_depth = depth
        if (
            self.healed_at is None
            and self.heal_at is not None
            and now >= self.heal_at
            and depth == 0
        ):
            self.healed_at = now
        self.reads_seen += 1

    def _divergence_depth(self) -> int:
        """Worst pairwise fork depth among the correct replicas' tips."""
        if self.correct is None:
            tips = self._tips.values()
        else:
            tips = [tip for pid, tip in self._tips.items() if self.correct(pid)]
        distinct = sorted(set(tips))
        if len(distinct) < 2:
            return 0
        index = self.index
        height = index.height_of
        lca = index.lowest_common_ancestor
        worst = 0
        for i, a in enumerate(distinct):
            for b in distinct[i + 1 :]:
                depth = min(height(a), height(b)) - height(lca(a, b))
                if depth > worst:
                    worst = depth
        return worst

    # -- results --------------------------------------------------------------

    @property
    def time_to_heal(self) -> Optional[float]:
        """Virtual time from the heal to restored prefix agreement."""
        if self.heal_at is None or self.healed_at is None:
            return None
        return self.healed_at - self.heal_at

    def summary(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the degradation trajectory."""
        return {
            "reads": self.reads_seen,
            "max_divergence_depth": self.max_divergence_depth,
            "final_divergence_depth": self.current_divergence_depth,
            "heal_at": self.heal_at,
            "healed_at": self.healed_at,
            "time_to_heal": self.time_to_heal,
            "samples": len(self.samples),
        }
