"""The BlockTree: the append-only rooted tree maintained by blockchains.

Section 3.1 of the paper formalizes the data structure implemented by
blockchain-like systems as a directed rooted tree ``bt = (V_bt, E_bt)``
whose root is the genesis block ``b0`` and in which every edge points back
towards the root.  A *blockchain* is a path from a leaf (or, more
generally, any vertex) back to ``b0``.

:class:`BlockTree` below is the mutable store underneath both the
sequential BT-ADT (:mod:`repro.core.bt_adt`) and every replica of the
message-passing protocol models (:mod:`repro.protocols`).  It supports:

* appending a block under an existing parent (forks are allowed — that is
  the whole point of the tree formulation);
* height / depth queries, leaves and branch enumeration;
* extraction of the chain leading to any block (``chain_to``);
* subtree weights, which the GHOST selection function needs;
* structural merge (used when a replica receives updates out of order).

Because the selection function ``f(bt)`` is evaluated on virtually every
delivery/mining event of a protocol run, the tree also maintains the
*per-leaf score indexes* the selection rules in
:mod:`repro.core.selection` read: every block's height (chain length
score) and cumulative root-to-block weight (chain weight score) are
updated incrementally in ``append`` — and therefore by ``merge`` and
``copy``, which funnel through or duplicate them — so selecting a tip
never rematerializes chains.  A monotone ``version`` counter, bumped on
every mutation, backs a small selection memo (``cached_selection`` /
``cache_selection``) that makes repeated reads between mutations O(1).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.block import GENESIS_ID, Block, Blockchain, genesis_block
from repro.network._hotpath import tree_append_index

__all__ = ["BlockTree", "UnknownParentError", "DuplicateBlockError", "DEFAULT_INDEX"]

#: Default score-index backend for new trees.  ``"columns"`` keeps the
#: per-block height / cumulative-weight / subtree-weight indexes on
#: preallocated numpy columns maintained by the compiled callback plane
#: (:func:`repro.network._hotpath.tree_append_index`); ``"reference"``
#: keeps the pre-PR10 per-block dicts verbatim — the equivalence oracle
#: the bench's pure/scalar legs and the column tests run against.
DEFAULT_INDEX = "columns"

_INDEX_MODES = ("columns", "reference")


class _TreeColumns:
    """Columnar score index of one :class:`BlockTree`.

    Blocks are numbered by insertion order (``slots``); ``parents`` maps
    each slot to its parent slot (-1 for genesis) so ancestor walks are
    int hops, and the three numpy columns carry the per-block height,
    cumulative root-to-block weight and subtree weight that the
    selection rules read.  Arrays are preallocated and doubled on
    demand; pickling trims them to the filled prefix.
    """

    __slots__ = ("slots", "ids", "parents", "height", "cum_weight",
                 "subtree_weight", "size")

    def __init__(self, root: Block, capacity: int = 256) -> None:
        self.slots: Dict[str, int] = {root.block_id: 0}
        self.ids: List[str] = [root.block_id]
        self.parents: List[int] = [-1]
        self.height = np.zeros(capacity, dtype=np.int64)
        self.cum_weight = np.zeros(capacity, dtype=np.float64)
        self.subtree_weight = np.zeros(capacity, dtype=np.float64)
        self.subtree_weight[0] = root.weight
        self.size = 1

    def grow(self) -> None:
        capacity = max(64, 2 * len(self.height))
        size = self.size
        for name in ("height", "cum_weight", "subtree_weight"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[:size] = old[:size]
            setattr(self, name, grown)

    def copy(self) -> "_TreeColumns":
        clone = object.__new__(_TreeColumns)
        clone.slots = dict(self.slots)
        clone.ids = list(self.ids)
        clone.parents = list(self.parents)
        clone.height = self.height[: self.size].copy()
        clone.cum_weight = self.cum_weight[: self.size].copy()
        clone.subtree_weight = self.subtree_weight[: self.size].copy()
        clone.size = self.size
        return clone

    # Checkpoint support: trim the preallocated tails (a restored column
    # set regrows on the next append).
    def __getstate__(self):
        return (
            self.slots,
            self.ids,
            self.parents,
            self.height[: self.size].copy(),
            self.cum_weight[: self.size].copy(),
            self.subtree_weight[: self.size].copy(),
            self.size,
        )

    def __setstate__(self, state):
        (
            self.slots,
            self.ids,
            self.parents,
            self.height,
            self.cum_weight,
            self.subtree_weight,
            self.size,
        ) = state


class UnknownParentError(KeyError):
    """Raised when appending a block whose parent is not in the tree."""


class DuplicateBlockError(ValueError):
    """Raised when appending a block identifier already present in the tree."""


class BlockTree:
    """Append-only rooted tree of blocks.

    The tree always contains the genesis block.  Blocks can only be added
    under a parent that is already present; removing blocks is not
    supported (the structure is append-only by construction, mirroring the
    ADT whose transition function never deletes vertices).

    The class is deliberately *not* thread-safe: concurrency in this
    reproduction is modelled explicitly (cooperative scheduler, discrete-
    event simulator), never via preemptive threads.
    """

    def __init__(
        self, genesis: Optional[Block] = None, *, index: Optional[str] = None
    ) -> None:
        root = genesis if genesis is not None else genesis_block()
        if not root.is_genesis:
            raise ValueError("BlockTree must be rooted at a genesis block")
        if index is None:
            index = DEFAULT_INDEX
        if index not in _INDEX_MODES:
            raise ValueError(
                f"unknown BlockTree index mode {index!r}; expected one of {_INDEX_MODES}"
            )
        self._blocks: Dict[str, Block] = {root.block_id: root}
        self._children: Dict[str, List[str]] = {root.block_id: []}
        # Score indexes: either the columnar store maintained by the
        # compiled callback plane, or the pre-PR10 per-block dicts
        # (``index="reference"``, the equivalence oracle).
        if index == "columns":
            self._columns: Optional[_TreeColumns] = _TreeColumns(root)
            self._heights: Optional[Dict[str, int]] = None
            self._subtree_weight: Optional[Dict[str, float]] = None
        else:
            self._columns = None
            self._heights = {root.block_id: 0}
            self._subtree_weight = {root.block_id: root.weight}
        # (leaf ids, height column, cum-weight column) memo for the
        # vectorized tip selection, tagged with the version it was built
        # at (see ``leaf_index``).
        self._leaf_index_cache: Optional[Tuple[int, Any]] = None
        self._genesis = root
        # Incremental caches, maintained by ``append`` (and therefore by
        # ``merge``, which funnels through ``append``): the tree height and
        # the current leaves in block-insertion order.  ``_leaves`` is a dict
        # used as an ordered set, so ``leaves()`` stays O(#leaves) instead of
        # scanning every block.
        self._height: int = 0
        self._leaves: Dict[str, None] = {root.block_id: None}
        # Fork bookkeeping, also maintained by ``append``: blocks with two
        # or more children (in the order they *became* fork points), the
        # maximal child count seen so far, and a height → block ids index
        # (ids in insertion order, as the former full scan returned them).
        # ``analysis/forks.py`` queries all three once per replica per run.
        self._fork_points: Dict[str, None] = {}
        self._max_fork_degree: int = 0
        self._by_height: Dict[int, List[str]] = {0: [root.block_id]}
        # Per-leaf score index: cumulative *non-genesis* weight along the
        # root-to-block path, accumulated root-first so it is bit-identical
        # to ``WeightScore`` summing the materialized chain.  Together with
        # ``_heights`` (the length score) this is what the selection rules
        # read instead of rebuilding every chain.
        self._cum_weight: Optional[Dict[str, float]] = (
            {root.block_id: 0.0} if self._columns is None else None
        )
        # Monotone mutation counter plus a keyed memo of selection results.
        # ``version`` never decreases and is bumped by every ``append``, so
        # a memo entry tagged with the current version is still valid.
        self._version: int = 0
        self._selection_memo: Dict[Hashable, Tuple[int, Any]] = {}

    # -- basic introspection ------------------------------------------------

    @property
    def genesis(self) -> Block:
        """The root ``b0`` of the tree."""
        return self._genesis

    def __len__(self) -> int:
        """Number of blocks in the tree, genesis included."""
        return len(self._blocks)

    def __contains__(self, block_id: object) -> bool:
        if isinstance(block_id, Block):
            return block_id.block_id in self._blocks
        return block_id in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def get(self, block_id: str) -> Block:
        """Return the block with identifier ``block_id``.

        Raises
        ------
        KeyError
            if no such block is in the tree.
        """
        return self._blocks[block_id]

    def height_of(self, block_id: str) -> int:
        """Distance from ``block_id`` to the root (genesis has height 0)."""
        cols = self._columns
        if cols is not None:
            return int(cols.height[cols.slots[block_id]])
        return self._heights[block_id]

    def cumulative_weight(self, block_id: str) -> float:
        """Total non-genesis weight on the path from genesis to ``block_id``.

        This is the incrementally maintained ``WeightScore`` of the chain
        ending at ``block_id``: the weights are accumulated root-first at
        append time, so the float is identical to summing the materialized
        chain block by block.
        """
        cols = self._columns
        if cols is not None:
            return float(cols.cum_weight[cols.slots[block_id]])
        return self._cum_weight[block_id]

    @property
    def height(self) -> int:
        """Height of the tree: the maximal block height (cached, O(1))."""
        return self._height

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumped by every successful append."""
        return self._version

    # -- selection memo -------------------------------------------------------

    def cached_selection(self, key: Hashable) -> Optional[Any]:
        """Return the memoized selection result for ``key``, if still valid.

        A memo entry is valid iff it was stored at the current ``version``;
        any append invalidates (and clears) every entry, so the memo only
        ever holds current-version results.  The version tag is kept as a
        second guard for copies.  Unhashable keys simply miss.
        """
        try:
            entry = self._selection_memo.get(key)
        except TypeError:  # unhashable selection (custom user score object)
            return None
        if entry is not None and entry[0] == self._version:
            return entry[1]
        return None

    def cache_selection(self, key: Hashable, value: Any) -> None:
        """Memoize a selection result for ``key`` at the current version."""
        try:
            self._selection_memo[key] = (self._version, value)
        except TypeError:  # unhashable selection: silently skip the memo
            pass

    def children_of(self, block_id: str) -> Tuple[str, ...]:
        """Identifiers of the direct children of ``block_id``."""
        return tuple(self._children[block_id])

    def parent_of(self, block_id: str) -> Optional[str]:
        """Identifier of the parent of ``block_id`` (``None`` for genesis)."""
        return self._blocks[block_id].parent_id

    def block_ids(self) -> Tuple[str, ...]:
        """All block identifiers currently in the tree (insertion order)."""
        return tuple(self._blocks)

    # -- mutation -------------------------------------------------------------

    def append(self, block: Block) -> Block:
        """Insert ``block`` under its declared parent.

        This is the side-effect of the BT-ADT ``append`` operation *after*
        validity has been established; validity checking itself lives in
        :mod:`repro.core.validity` / :mod:`repro.core.bt_adt`.

        Returns the inserted block (handy for chaining in tests).

        Raises
        ------
        DuplicateBlockError
            if a block with the same identifier is already present.
        UnknownParentError
            if the declared parent is not in the tree.
        ValueError
            if ``block`` is a second genesis block.
        """
        if block.is_genesis:
            raise ValueError("cannot append a second genesis block")
        if block.block_id in self._blocks:
            raise DuplicateBlockError(block.block_id)
        assert block.parent_id is not None  # guaranteed by Block invariants
        if block.parent_id not in self._blocks:
            raise UnknownParentError(block.parent_id)

        self._blocks[block.block_id] = block
        self._children[block.block_id] = []
        siblings = self._children[block.parent_id]
        siblings.append(block.block_id)
        if len(siblings) == 2:
            self._fork_points[block.parent_id] = None
        if len(siblings) > self._max_fork_degree:
            self._max_fork_degree = len(siblings)
        cols = self._columns
        if cols is not None:
            height = tree_append_index(
                cols, block.parent_id, block.block_id, block.weight
            )
            self._by_height.setdefault(height, []).append(block.block_id)
            if height > self._height:
                self._height = height
            self._leaves.pop(block.parent_id, None)
            self._leaves[block.block_id] = None
            self._version += 1
            if self._selection_memo:
                self._selection_memo.clear()
            return block
        # Reference index maintenance (pre-PR10 body, kept verbatim as
        # the equivalence oracle for ``tree_append_index``).
        height = self._heights[block.parent_id] + 1
        self._heights[block.block_id] = height
        self._by_height.setdefault(height, []).append(block.block_id)
        self._subtree_weight[block.block_id] = block.weight
        self._cum_weight[block.block_id] = self._cum_weight[block.parent_id] + block.weight
        if height > self._height:
            self._height = height
        self._leaves.pop(block.parent_id, None)
        self._leaves[block.block_id] = None
        self._version += 1
        # Every memo entry is now stale (it was tagged with the previous
        # version), so drop them eagerly: otherwise per-call selection keys
        # (e.g. a freshly pinned FixedTipSelection per commit) would
        # accumulate dead entries for the lifetime of the tree.
        if self._selection_memo:
            self._selection_memo.clear()
        # Propagate the new weight to every ancestor so GHOST queries are O(1).
        cursor: Optional[str] = block.parent_id
        while cursor is not None:
            self._subtree_weight[cursor] += block.weight
            cursor = self._blocks[cursor].parent_id
        return block

    def merge(self, other: "BlockTree") -> int:
        """Insert every block of ``other`` not yet present, parents first.

        Used by replicas that reconcile state snapshots.  Returns the
        number of blocks actually inserted.
        """
        inserted = 0
        pending = [b for b in other if not b.is_genesis and b.block_id not in self]
        # Repeatedly sweep until no progress: parents may arrive after children.
        while pending:
            progressed = False
            remaining: List[Block] = []
            for block in pending:
                if block.parent_id in self:
                    self.append(block)
                    inserted += 1
                    progressed = True
                else:
                    remaining.append(block)
            if not progressed:
                missing = sorted({b.parent_id for b in remaining if b.parent_id})
                raise UnknownParentError(
                    f"cannot merge: missing ancestors {missing}"
                )
            pending = remaining
        return inserted

    # -- tree queries -------------------------------------------------------

    def leaves(self) -> Tuple[str, ...]:
        """Identifiers of all leaves (blocks without children), cached."""
        return tuple(self._leaves)

    def chain_to(self, block_id: str) -> Blockchain:
        """Return the blockchain from genesis up to ``block_id`` inclusive."""
        if block_id not in self._blocks:
            raise KeyError(block_id)
        path: List[Block] = []
        cursor: Optional[str] = block_id
        while cursor is not None:
            block = self._blocks[cursor]
            path.append(block)
            cursor = block.parent_id
        path.reverse()
        return Blockchain(tuple(path))

    def all_chains(self) -> Tuple[Blockchain, ...]:
        """Every maximal blockchain (one per leaf), in insertion order."""
        return tuple(self.chain_to(leaf) for leaf in self.leaves())

    def ancestors(self, block_id: str) -> Tuple[str, ...]:
        """Identifiers of the proper ancestors of ``block_id``, child-to-root."""
        result: List[str] = []
        cursor = self.parent_of(block_id)
        while cursor is not None:
            result.append(cursor)
            cursor = self.parent_of(cursor)
        return tuple(result)

    def is_ancestor(self, ancestor_id: str, descendant_id: str) -> bool:
        """``True`` iff ``ancestor_id`` lies on the path from ``descendant_id`` to genesis."""
        cols = self._columns
        if cols is not None:
            slots = cols.slots
            ancestor = slots.get(ancestor_id)
            descendant = slots.get(descendant_id)
            if ancestor is None or descendant is None:
                return False
            height = cols.height
            gap = int(height[descendant]) - int(height[ancestor])
            if gap < 0:
                return False
            # Walk exactly the height gap, as int hops over parent slots.
            parents = cols.parents
            cursor = descendant
            for _ in range(gap):
                cursor = parents[cursor]
            return cursor == ancestor
        heights = self._heights
        ancestor_height = heights.get(ancestor_id)
        descendant_height = heights.get(descendant_id)
        if ancestor_height is None or descendant_height is None:
            return False
        if ancestor_height > descendant_height:
            return False
        # Walk exactly the height gap: the cached heights tell us how many
        # parent hops separate the two blocks, so no per-step membership or
        # height re-checks are needed.
        blocks = self._blocks
        cursor = descendant_id
        for _ in range(descendant_height - ancestor_height):
            cursor = blocks[cursor].parent_id  # type: ignore[assignment]
        return cursor == ancestor_id

    def common_ancestor(self, a: str, b: str) -> str:
        """Lowest common ancestor of two blocks (always exists: genesis)."""
        cols = self._columns
        if cols is not None:
            slots = cols.slots
            parents = cols.parents
            height = cols.height
            sa, sb = slots[a], slots[b]
            ha, hb = int(height[sa]), int(height[sb])
            while ha > hb:
                sa = parents[sa]
                ha -= 1
            while hb > ha:
                sb = parents[sb]
                hb -= 1
            while sa != sb:
                sa = parents[sa]
                sb = parents[sb]
            return cols.ids[sa]
        blocks = self._blocks
        height_a, height_b = self._heights[a], self._heights[b]
        # Equalize levels by walking exactly the height gap, then climb in
        # lockstep; heights are tracked locally so each step is one dict hit.
        while height_a > height_b:
            a = blocks[a].parent_id  # type: ignore[assignment]
            height_a -= 1
        while height_b > height_a:
            b = blocks[b].parent_id  # type: ignore[assignment]
            height_b -= 1
        while a != b:
            a = blocks[a].parent_id  # type: ignore[assignment]
            b = blocks[b].parent_id  # type: ignore[assignment]
        return a

    def subtree_weight(self, block_id: str) -> float:
        """Total weight of the subtree rooted at ``block_id`` (incl. itself).

        This is the quantity GHOST greedily maximizes when descending the
        tree (Sompolinsky & Zohar; used by the Ethereum model).
        """
        cols = self._columns
        if cols is not None:
            return float(cols.subtree_weight[cols.slots[block_id]])
        return self._subtree_weight[block_id]

    def leaf_index(self) -> Optional[Tuple[List[str], Any, Any]]:
        """(leaf ids, height column, cum-weight column) over current leaves.

        The vectorized tip-selection input, cached per tree version;
        ``None`` in reference-index mode (whose scalar loop is the
        oracle the vectorized path is tested against).
        """
        cols = self._columns
        if cols is None:
            return None
        cache = self._leaf_index_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        leaf_ids = list(self._leaves)
        slots = cols.slots
        if len(leaf_ids) <= 32:
            # Fork trees carry a handful of live leaves; scalar column
            # reads beat the fixed cost of building index arrays there.
            height = cols.height
            cum = cols.cum_weight
            heights: List[int] = []
            cums: List[float] = []
            for leaf in leaf_ids:
                slot = slots[leaf]
                heights.append(int(height[slot]))
                cums.append(float(cum[slot]))
            value = (leaf_ids, heights, cums)
        else:
            idx = np.fromiter(
                (slots[leaf] for leaf in leaf_ids), dtype=np.int64, count=len(leaf_ids)
            )
            value = (leaf_ids, cols.height[idx], cols.cum_weight[idx])
        self._leaf_index_cache = (self._version, value)
        return value

    def ghost_tip(self) -> Optional[str]:
        """GHOST's greedy heaviest-subtree descent on the columnar index.

        Returns the tip block id, or ``None`` in reference-index mode
        (the selection rule then runs its retained scalar descent).
        Single-child levels skip the weight read entirely; ties break to
        the larger block id, exactly as the scalar ``max`` over
        ``(weight, child)`` keys does.
        """
        cols = self._columns
        if cols is None:
            return None
        children = self._children
        slots = cols.slots
        sub = cols.subtree_weight
        cursor = self._genesis.block_id
        while True:
            kids = children[cursor]
            if not kids:
                return cursor
            if len(kids) == 1:
                cursor = kids[0]
                continue
            best = kids[0]
            best_weight = sub[slots[best]]
            for kid in kids[1:]:
                weight = sub[slots[kid]]
                if weight > best_weight or (weight == best_weight and kid > best):
                    best = kid
                    best_weight = weight
            cursor = best

    def fork_points(self) -> Tuple[str, ...]:
        """Blocks with two or more children, i.e. where forks occurred.

        Maintained incrementally by ``append`` (a parent enters the tuple
        the moment its second child arrives), so the query is O(#forks)
        instead of a scan over every block.
        """
        return tuple(self._fork_points)

    def fork_degree(self, block_id: str) -> int:
        """Number of children of ``block_id`` — the paper's per-block fork count."""
        return len(self._children[block_id])

    def max_fork_degree(self) -> int:
        """Maximum number of children over all blocks (0 for a bare genesis).

        Cached: ``append`` bumps the maximum whenever a parent's child
        count exceeds it (the count never decreases — the tree is
        append-only).
        """
        return self._max_fork_degree

    def blocks_at_height(self, height: int) -> Tuple[str, ...]:
        """All block identifiers at the given height (insertion order), cached."""
        return tuple(self._by_height.get(height, ()))

    def copy(self) -> "BlockTree":
        """Deep-enough copy sharing immutable blocks but not the indices."""
        if self._columns is not None:
            clone = BlockTree(self._genesis, index="columns")
            clone._columns = self._columns.copy()
        else:
            clone = BlockTree(self._genesis, index="reference")
            clone._heights = dict(self._heights)
            clone._subtree_weight = dict(self._subtree_weight)
            clone._cum_weight = dict(self._cum_weight)
        clone._blocks = dict(self._blocks)
        clone._children = {k: list(v) for k, v in self._children.items()}
        clone._height = self._height
        clone._leaves = dict(self._leaves)
        # The leaf-index memo's arrays are per-version copies, safe to
        # share between content-identical trees.
        clone._leaf_index_cache = self._leaf_index_cache
        clone._fork_points = dict(self._fork_points)
        clone._max_fork_degree = self._max_fork_degree
        clone._by_height = {k: list(v) for k, v in self._by_height.items()}
        # The clone is content-identical at this version, so the memoized
        # selection results (immutable Blockchain values) stay valid for it;
        # any divergent append bumps the respective tree's own counter.
        clone._version = self._version
        clone._selection_memo = dict(self._selection_memo)
        return clone

    def __setstate__(self, state):
        # Trees checkpointed before the columnar index existed restore in
        # reference mode (their dict indexes are the state).
        self.__dict__.update(state)
        if "_columns" not in state:
            self._columns = None
        if "_leaf_index_cache" not in state:
            self._leaf_index_cache = None

    # -- presentation ---------------------------------------------------------

    def to_ascii(self) -> str:
        """Render the tree as indented ASCII (for examples and debugging)."""
        lines: List[str] = []

        def walk(node: str, depth: int) -> None:
            prefix = "  " * depth + ("└─ " if depth else "")
            lines.append(f"{prefix}{node}")
            for child in self._children[node]:
                walk(child, depth + 1)

        walk(GENESIS_ID if GENESIS_ID in self._blocks else self._genesis.block_id, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockTree(blocks={len(self)}, height={self.height}, "
            f"leaves={len(self.leaves())})"
        )
