"""Concurrent histories (Definition 2.4) and their event vocabulary.

A concurrent history is ``H = ⟨Σ, E, Λ, ↦, ≺, ↗⟩``:

* ``E`` — a countable set of events: operation *invocations* and
  *responses* and, for the message-passing analysis of Section 4, the
  ``send``, ``receive`` and ``update`` events of the replicated object;
* ``Λ : E -> Σ`` — the labelling of events by operations;
* ``↦`` — the *process order*: events of the same process, in program
  text order;
* ``≺`` — the *operation order*: an invocation precedes its own response,
  and a response at real time ``t`` precedes any invocation at ``t' > t``;
* ``↗`` — the *program order*: the union of the two.

Events are recorded with a globally unique, strictly increasing logical
timestamp (the recorder's clock).  That timestamp induces a total order
that *refines* ``↗`` — whenever ``e ↗ e'`` then ``time(e) < time(e')`` —
which is what the consistency checkers rely on: all the paper's criteria
quantify over events ordered by ``↗``, and evaluating them over the finer
total order is equivalent because the recorded executions come from a
single run (the paper's fictional global clock).
"""

from __future__ import annotations

import enum
import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.block import Blockchain

#: Module toggle read at :class:`HistoryRecorder` construction: when
#: True (see :func:`reference_recording`) the recorder keeps routing its
#: replication events through the retained pure-Python
#: ``_reference_replication`` body instead of the compiled callback
#: plane's fast path — the oracle leg of the bench and the equivalence
#: tests.
_REFERENCE_RECORDING = False


@contextmanager
def reference_recording():
    """Recorders constructed in this scope use the pure replication path."""
    global _REFERENCE_RECORDING
    previous = _REFERENCE_RECORDING
    _REFERENCE_RECORDING = True
    try:
        yield
    finally:
        _REFERENCE_RECORDING = previous

__all__ = [
    "EventKind",
    "Event",
    "OperationToken",
    "History",
    "HistoryRecorder",
]


class EventKind(enum.Enum):
    """The kinds of events a history may contain."""

    INVOCATION = "inv"
    RESPONSE = "rsp"
    SEND = "send"
    RECEIVE = "receive"
    UPDATE = "update"


@dataclass(frozen=True, slots=True)
class Event:
    """A single event of a concurrent history.

    Attributes
    ----------
    eid:
        Globally unique event identifier (also its logical timestamp; the
        recorder assigns identifiers from a strictly increasing clock).
    kind:
        Invocation, response, or one of the replication events.
    process:
        Identifier of the process at which the event occurs.
    operation:
        The operation name (``"append"``, ``"read"``, ``"getToken"``,
        ``"consumeToken"``, or the replication pseudo-operations
        ``"send"``/``"receive"``/``"update"``).
    argument:
        The operation argument (the block being appended, the pair
        ``(parent_id, block_id)`` for replication events, ...).
    output:
        For responses, the returned value (``bool`` for appends, a
        :class:`~repro.core.block.Blockchain` for reads).
    op_id:
        Identifier shared by an invocation and its matching response.
    seq:
        Per-process sequence number, defining the process order ``↦``.
    """

    eid: int
    kind: EventKind
    process: str
    operation: str
    argument: Any = None
    output: Any = None
    op_id: int = -1
    seq: int = -1

    @property
    def time(self) -> int:
        """Logical timestamp (alias of :attr:`eid`)."""
        return self.eid

    @property
    def is_read_response(self) -> bool:
        return self.kind is EventKind.RESPONSE and self.operation == "read"

    @property
    def is_append_invocation(self) -> bool:
        return self.kind is EventKind.INVOCATION and self.operation == "append"

    @property
    def is_append_response(self) -> bool:
        return self.kind is EventKind.RESPONSE and self.operation == "append"

    @property
    def chain(self) -> Blockchain:
        """The blockchain returned by a read response.

        Raises
        ------
        TypeError
            if the event is not a read response carrying a chain.
        """
        if not self.is_read_response or not isinstance(self.output, Blockchain):
            raise TypeError(f"event {self} carries no blockchain output")
        return self.output

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arg = "" if self.argument is None else str(self.argument)
        out = f" -> {self.output}" if self.kind is EventKind.RESPONSE else ""
        return f"[{self.eid}] {self.process}.{self.operation}({arg}).{self.kind.value}{out}"


@dataclass(frozen=True, slots=True)
class OperationToken:
    """Handle returned by :meth:`HistoryRecorder.invoke`, consumed by ``respond``."""

    op_id: int
    process: str
    operation: str
    argument: Any
    invocation_eid: int


class History:
    """An immutable-ish concurrent history: a sequence of events plus orders.

    The event list is kept in timestamp order.  All accessors return
    tuples; the mutating entry point is the :class:`HistoryRecorder`.
    """

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: List[Event] = sorted(events, key=lambda e: e.eid)
        self._by_process: Dict[str, List[Event]] = {}
        for event in self._events:
            self._by_process.setdefault(event.process, []).append(event)
        # Memo for the filtered event selectors below.  A History never
        # mutates after construction, but one report invokes the selectors
        # many times (every consistency checker starts from
        # ``read_responses()``), so the filtered tuples are computed once.
        self._selector_memo: Dict[Tuple[str, Optional[str]], Tuple[Event, ...]] = {}

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._events)

    @property
    def processes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_process))

    def events_of(self, process: str) -> Tuple[Event, ...]:
        """All events of ``process`` in process order ``↦``."""
        return tuple(self._by_process.get(process, ()))

    # -- event selectors -------------------------------------------------------

    def read_responses(self, process: Optional[str] = None) -> Tuple[Event, ...]:
        """All ``read`` response events (optionally of a single process).

        Cached per process argument: the consistency checkers call this
        several times per report on the same immutable history.
        """
        key = ("read_responses", process)
        cached = self._selector_memo.get(key)
        if cached is None:
            pool = self._events if process is None else self._by_process.get(process, [])
            cached = tuple(e for e in pool if e.is_read_response)
            self._selector_memo[key] = cached
        return cached

    def read_invocations(self, process: Optional[str] = None) -> Tuple[Event, ...]:
        pool = self._events if process is None else self._by_process.get(process, [])
        return tuple(
            e for e in pool if e.kind is EventKind.INVOCATION and e.operation == "read"
        )

    def append_invocations(self, process: Optional[str] = None) -> Tuple[Event, ...]:
        """All ``append`` invocation events (cached, like ``read_responses``)."""
        key = ("append_invocations", process)
        cached = self._selector_memo.get(key)
        if cached is None:
            pool = self._events if process is None else self._by_process.get(process, [])
            cached = tuple(e for e in pool if e.is_append_invocation)
            self._selector_memo[key] = cached
        return cached

    def append_responses(
        self, process: Optional[str] = None, successful_only: bool = False
    ) -> Tuple[Event, ...]:
        pool = self._events if process is None else self._by_process.get(process, [])
        events = (e for e in pool if e.is_append_response)
        if successful_only:
            events = (e for e in events if bool(e.output))
        return tuple(events)

    def replication_events(self, kind: EventKind) -> Tuple[Event, ...]:
        """All ``send``/``receive``/``update`` events of the given kind."""
        if kind not in (EventKind.SEND, EventKind.RECEIVE, EventKind.UPDATE):
            raise ValueError(f"{kind} is not a replication event kind")
        return tuple(e for e in self._events if e.kind is kind)

    def matching_response(self, invocation: Event) -> Optional[Event]:
        """The response event carrying the same ``op_id``, if it exists."""
        if invocation.kind is not EventKind.INVOCATION:
            raise ValueError("matching_response expects an invocation event")
        for event in self._by_process.get(invocation.process, ()):  # same process
            if event.kind is EventKind.RESPONSE and event.op_id == invocation.op_id:
                return event
        return None

    def matching_invocation(self, response: Event) -> Optional[Event]:
        """The invocation event carrying the same ``op_id``, if it exists."""
        if response.kind is not EventKind.RESPONSE:
            raise ValueError("matching_invocation expects a response event")
        for event in self._by_process.get(response.process, ()):
            if event.kind is EventKind.INVOCATION and event.op_id == response.op_id:
                return event
        return None

    # -- the three orders of Definition 2.4 ------------------------------------

    def process_order(self, e: Event, e_prime: Event) -> bool:
        """``e ↦ e'``: same process and ``e`` occurs earlier."""
        return e.process == e_prime.process and e.eid < e_prime.eid

    def operation_order(self, e: Event, e_prime: Event) -> bool:
        """``e ≺ e'`` per Definition 2.4.

        Either ``e`` is an invocation and ``e'`` the response of the same
        operation, or ``e`` is a response that occurs (in real time) before
        the invocation ``e'`` of another operation.
        """
        if (
            e.kind is EventKind.INVOCATION
            and e_prime.kind is EventKind.RESPONSE
            and e.op_id == e_prime.op_id
            and e.process == e_prime.process
        ):
            return True
        if (
            e.kind is EventKind.RESPONSE
            and e_prime.kind is EventKind.INVOCATION
            and e.eid < e_prime.eid
        ):
            return True
        return False

    def program_order(self, e: Event, e_prime: Event) -> bool:
        """``e ↗ e'``: the union of process order and operation order."""
        if e.eid == e_prime.eid:
            return False
        return self.process_order(e, e_prime) or self.operation_order(e, e_prime)

    def precedes(self, e: Event, e_prime: Event) -> bool:
        """Total-order refinement of ``↗`` used by the checkers.

        The recorder's clock totally orders events and refines ``↗``
        (see the module docstring), so ``time(e) < time(e')`` is the
        practical "``e`` before ``e'``" test for recorded executions.
        """
        return e.eid < e_prime.eid

    # -- composition ------------------------------------------------------------

    def restricted_to(self, processes: Iterable[str]) -> "History":
        """Sub-history containing only events of the given processes."""
        keep = set(processes)
        return History(e for e in self._events if e.process in keep)

    def correct_restriction(self, correct_processes: Iterable[str]) -> "History":
        """The event restriction of Definition 4.2 (Byzantine failure model).

        Keeps (i) the ``read`` invocation/response events of the *correct*
        processes, (ii) **all** ``append`` invocation events (a valid block
        proposed by a faulty process still counts — that is the paper's
        Validity convention), and (iii) the send/receive/update replication
        events of the correct processes.  This is the history against which
        the consistency criteria are evaluated when some processes are
        crashed or Byzantine.
        """
        keep = set(correct_processes)

        def admitted(event: Event) -> bool:
            if event.operation == "append":
                return True
            return event.process in keep

        return History(e for e in self._events if admitted(e))

    def without_failed_appends(self) -> "History":
        """Purge unsuccessful append response events (and their invocations).

        Mirrors the paper's convention before the hierarchy comparison:
        "let us consider only the set of histories purged from the
        unsuccessful append() response events".
        """
        failed_ops = {
            (e.process, e.op_id)
            for e in self._events
            if e.is_append_response and not bool(e.output)
        }
        return History(
            e
            for e in self._events
            if not (
                e.operation == "append" and (e.process, e.op_id) in failed_ops
            )
        )

    def merge(self, other: "History") -> "History":
        """Union of two histories (event ids must not collide)."""
        own = {e.eid for e in self._events}
        clash = own.intersection(e.eid for e in other._events)
        if clash:
            raise ValueError(f"cannot merge histories with colliding event ids {sorted(clash)[:5]}")
        return History(list(self._events) + list(other._events))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"History(events={len(self._events)}, processes={len(self._by_process)}, "
            f"reads={len(self.read_responses())}, appends={len(self.append_invocations())})"
        )


class HistoryRecorder:
    """Builds a :class:`History` from live operation calls.

    A single recorder is shared by every process of an execution (the
    sequential ADT object, scheduler threads, or simulator replicas); it
    owns the global logical clock that timestamps events.

    The recorder is intentionally forgiving about interleavings: callers
    invoke, possibly interleave with other processes, then respond.  For
    replication events (:meth:`send`, :meth:`receive`, :meth:`update`) a
    single event is recorded (the paper treats them as atomic).
    """

    def __init__(self) -> None:
        self._clock = itertools.count(1)
        self._op_ids = itertools.count(1)
        self._seq: Dict[str, int] = {}
        self._events: List[Event] = []
        # Pre-bound append: the recorder sits on the simulation hot path
        # (every replication event of every delivery lands here), so the
        # fast path below avoids re-resolving the bound method per event.
        self._append: Callable[[Event], None] = self._events.append
        self._listeners: List[Callable[[Event], None]] = []
        # Replication-event fast path (the dominant recorder call in
        # block workloads): the monomorphic body in
        # ``repro.network._hotpath`` — compiled when the extension built —
        # unless this recorder was created under ``reference_recording()``.
        if _REFERENCE_RECORDING:
            self._hot_record = None
        else:
            from repro.network._hotpath import record_replication

            self._hot_record = record_replication

    def __setstate__(self, state):
        # Recorders checkpointed before the fast path existed restore
        # onto the current default.
        self.__dict__.update(state)
        if "_hot_record" not in state:
            from repro.network._hotpath import record_replication

            self._hot_record = None if _REFERENCE_RECORDING else record_replication

    # -- streaming subscribers ---------------------------------------------------

    def subscribe(self, listener: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register ``listener`` to be called with every recorded event.

        This is the hook the streaming analyses use (e.g.
        :class:`repro.core.consistency_index.ConsistencyMonitor`): events
        are delivered in recording order, synchronously, right after they
        are appended to the event list.  Returns the listener for
        decorator-style use.
        """
        self._listeners.append(listener)
        return listener

    def _record(self, event: Event) -> Event:
        self._append(event)
        listeners = self._listeners
        if listeners:
            for listener in listeners:
                listener(event)
        return event

    # -- clocks ----------------------------------------------------------------

    def _next_time(self) -> int:
        return next(self._clock)

    def _next_seq(self, process: str) -> int:
        seq = self._seq.get(process, 0) + 1
        self._seq[process] = seq
        return seq

    # -- operation events --------------------------------------------------------

    def invoke(self, process: str, operation: str, argument: Any = None) -> OperationToken:
        """Record an invocation event and return its token."""
        op_id = next(self._op_ids)
        eid = self._next_time()
        event = Event(
            eid=eid,
            kind=EventKind.INVOCATION,
            process=process,
            operation=operation,
            argument=argument,
            op_id=op_id,
            seq=self._next_seq(process),
        )
        self._record(event)
        return OperationToken(
            op_id=op_id,
            process=process,
            operation=operation,
            argument=argument,
            invocation_eid=eid,
        )

    def respond(self, token: OperationToken, output: Any = None) -> Event:
        """Record the response event matching ``token``."""
        event = Event(
            eid=self._next_time(),
            kind=EventKind.RESPONSE,
            process=token.process,
            operation=token.operation,
            argument=token.argument,
            output=output,
            op_id=token.op_id,
            seq=self._next_seq(token.process),
        )
        return self._record(event)

    def complete(self, process: str, operation: str, argument: Any, output: Any) -> Event:
        """Record an invocation immediately followed by its response."""
        token = self.invoke(process, operation, argument)
        return self.respond(token, output)

    # -- replication events (Section 4.2) ----------------------------------------

    def send(self, process: str, parent_id: str, block_id: str) -> Event:
        """Record ``send_i(b_g, b)``."""
        return self._replication(EventKind.SEND, process, parent_id, block_id)

    def receive(self, process: str, parent_id: str, block_id: str) -> Event:
        """Record ``receive_i(b_g, b)``."""
        return self._replication(EventKind.RECEIVE, process, parent_id, block_id)

    def update(self, process: str, parent_id: str, block_id: str) -> Event:
        """Record ``update_i(b_g, b)``."""
        return self._replication(EventKind.UPDATE, process, parent_id, block_id)

    def _replication(
        self, kind: EventKind, process: str, parent_id: str, block_id: str
    ) -> Event:
        hot = self._hot_record
        if hot is not None:
            return hot(self, kind, process, parent_id, block_id)
        return self._reference_replication(kind, process, parent_id, block_id)

    def _reference_replication(
        self, kind: EventKind, process: str, parent_id: str, block_id: str
    ) -> Event:
        # Pre-PR10 body, kept verbatim as the equivalence oracle for the
        # compiled ``record_replication`` fast path.
        event = Event(
            eid=self._next_time(),
            kind=kind,
            process=process,
            operation=kind.value,
            argument=(parent_id, block_id),
            seq=self._next_seq(process),
        )
        return self._record(event)

    # -- extraction ----------------------------------------------------------------

    def history(self) -> History:
        """Snapshot the recorded events as a :class:`History`."""
        return History(self._events)

    def __len__(self) -> int:
        return len(self._events)
