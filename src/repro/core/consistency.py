"""BT consistency criteria (Definitions 3.2–3.4).

The paper defines two consistency criteria over concurrent histories of
the BT-ADT, each a conjunction of properties:

* **BT Strong Consistency (SC)** = Block Validity ∧ Local Monotonic Read ∧
  Strong Prefix ∧ Ever Growing Tree.
* **BT Eventual Consistency (EC)** = Block Validity ∧ Local Monotonic Read ∧
  Ever Growing Tree ∧ Eventual Prefix.

Every property checker below returns a :class:`PropertyResult` carrying a
boolean verdict *and* the witnesses of any violation (the offending events
and chains), because the theorem-level benches and the examples want to
show *why* a history fails, not merely that it does.

Finite-prefix interpretation
----------------------------

Ever Growing Tree and Eventual Prefix quantify over infinite histories
("the set of later reads ... is finite").  A finite recorded execution is
always a *prefix* of such a history, so literal evaluation would accept
everything.  We follow the standard prefix interpretation (documented in
DESIGN.md §5):

* *Ever Growing Tree* — a violation is reported only when a read of score
  ``s`` is followed by at least ``stall_threshold`` later reads, **all** of
  score ``≤ s`` (i.e. growth visibly stalled within the trace).  With the
  default ``stall_threshold=None`` the property is treated as
  non-falsifiable on finite traces (it always passes, but the result still
  reports the stalled reads so analyses can inspect them).

* *Eventual Prefix* — for each read of score ``s`` we look at the *final*
  read of every process that reads afterwards: those limit reads must
  pairwise share a common prefix of score ``≥ s``.  This captures "the
  divergent interval is finite" on a finite trace: by the end of the trace
  the replicas' latest views agree at least up to ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.block import Block, Blockchain
from repro.core.history import Event, EventKind, History
from repro.core.score import LengthScore, ScoreFunction, mcps

__all__ = [
    "PropertyResult",
    "ConsistencyReport",
    "BlockValidityChecker",
    "LocalMonotonicReadChecker",
    "StrongPrefixChecker",
    "EverGrowingTreeChecker",
    "EventualPrefixChecker",
    "BTStrongConsistency",
    "BTEventualConsistency",
    "check_strong_consistency",
    "check_eventual_consistency",
]

BlockValidator = Callable[[Block], bool]


@dataclass(frozen=True)
class PropertyResult:
    """Verdict of a single consistency property on a history."""

    name: str
    holds: bool
    violations: Tuple[str, ...] = ()
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        status = "OK" if self.holds else "VIOLATED"
        lines = [f"{self.name}: {status}"]
        lines.extend(f"  - {v}" for v in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class ConsistencyReport:
    """Aggregate verdict of a criterion (conjunction of properties)."""

    criterion: str
    results: Tuple[PropertyResult, ...]

    @property
    def holds(self) -> bool:
        return all(r.holds for r in self.results)

    def __bool__(self) -> bool:
        return self.holds

    def result_for(self, name: str) -> PropertyResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    def describe(self) -> str:
        header = f"{self.criterion}: {'SATISFIED' if self.holds else 'NOT SATISFIED'}"
        return "\n".join([header] + [r.describe() for r in self.results])


# ---------------------------------------------------------------------------
# Individual properties
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockValidityChecker:
    """Block validity (Definition 3.2, first bullet).

    Every block of every chain returned by a read must (i) be valid and
    (ii) have been introduced by an ``append`` invocation that precedes the
    read response in program order.

    ``validator`` decides membership in ``B'``; the default accepts every
    block (matching executions driven by :class:`~repro.core.validity.AlwaysValid`),
    and callers that stage invalid blocks pass an explicit validator.
    The genesis block is exempt (it is valid by assumption and never
    appended).
    """

    validator: Optional[BlockValidator] = None

    name: str = "block-validity"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        appended: Dict[str, int] = {}
        for inv in history.append_invocations():
            block = inv.argument
            if isinstance(block, Block):
                # Earliest append invocation time for each block id.
                appended.setdefault(block.block_id, inv.eid)

        for read in history.read_responses():
            chain = read.chain
            for block in chain:
                if block.is_genesis:
                    continue
                if self.validator is not None and not self.validator(block):
                    violations.append(
                        f"read {read.eid} at {read.process} returned invalid "
                        f"block {block.block_id}"
                    )
                first_append = appended.get(block.block_id)
                if first_append is None:
                    violations.append(
                        f"read {read.eid} at {read.process} returned block "
                        f"{block.block_id} that was never appended"
                    )
                elif first_append >= read.eid:
                    violations.append(
                        f"read {read.eid} at {read.process} returned block "
                        f"{block.block_id} appended only later (event {first_append})"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class LocalMonotonicReadChecker:
    """Local Monotonic Read: per-process read scores never decrease."""

    score: ScoreFunction = field(default_factory=LengthScore)

    name: str = "local-monotonic-read"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        for process in history.processes:
            reads = history.read_responses(process)
            for earlier, later in zip(reads, reads[1:]):
                s_earlier = self.score(earlier.chain)
                s_later = self.score(later.chain)
                if s_earlier > s_later:
                    violations.append(
                        f"process {process}: read {earlier.eid} scored {s_earlier} "
                        f"but later read {later.eid} scored {s_later}"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class StrongPrefixChecker:
    """Strong Prefix: every pair of read results is prefix-related."""

    name: str = "strong-prefix"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        reads = history.read_responses()
        for i in range(len(reads)):
            chain_i = reads[i].chain
            for j in range(i + 1, len(reads)):
                chain_j = reads[j].chain
                if chain_i.diverges_from(chain_j):
                    violations.append(
                        f"reads {reads[i].eid} ({reads[i].process}) and "
                        f"{reads[j].eid} ({reads[j].process}) returned diverging "
                        f"chains {chain_i} vs {chain_j}"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class EverGrowingTreeChecker:
    """Ever Growing Tree, under the finite-prefix interpretation.

    ``stall_threshold=None`` (default): the property is reported as
    holding, with the stalled-read statistics placed in ``details`` for
    inspection.  With an integer threshold ``n``, a violation is reported
    for a read of score ``s`` whenever at least ``n`` later reads exist and
    *none* of the later reads exceeds ``s``.
    """

    score: ScoreFunction = field(default_factory=LengthScore)
    stall_threshold: Optional[int] = None

    name: str = "ever-growing-tree"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        stalled: Dict[int, int] = {}
        reads = history.read_responses()
        scores = [self.score(r.chain) for r in reads]
        for i, read in enumerate(reads):
            s = scores[i]
            later = [
                (other, scores[j])
                for j, other in enumerate(reads)
                if history.precedes(read, other)
            ]
            if not later:
                continue
            not_growing = [o for o, sc in later if sc <= s]
            grew = any(sc > s for _, sc in later)
            if not grew:
                stalled[read.eid] = len(not_growing)
                if (
                    self.stall_threshold is not None
                    and len(not_growing) >= self.stall_threshold
                ):
                    violations.append(
                        f"read {read.eid} at {read.process} (score {s}) is followed "
                        f"by {len(not_growing)} reads none of which exceeds its score"
                    )
        return PropertyResult(
            self.name,
            not violations,
            tuple(violations),
            details={"stalled_reads": stalled},
        )


@dataclass(frozen=True)
class EventualPrefixChecker:
    """Eventual Prefix (Definition 3.3), finite-prefix interpretation.

    For every read response ``r`` of score ``s``: consider, among the reads
    whose response follows ``r``, the *last* read of each process.  Those
    limit reads must pairwise share a maximal common prefix of score
    ``≥ s`` **or** be prefix-related.  (On the paper's infinite histories
    the criterion says "only finitely many later pairs diverge below
    ``s``"; a finite trace witnesses a violation when its final views hold
    *conflicting branches* below ``s``.  A pair where one chain simply lags
    behind the other is not counted as divergent: under Ever Growing Tree
    the lag is transient, and exempting it is what keeps the finite-prefix
    interpretation consistent with Theorem 3.1, ``H_SC ⊆ H_EC``.)

    Setting ``require_all_pairs=True`` strengthens the check to *every*
    pair of later reads (not just the limit reads); that stricter variant
    rejects any history with a transient fork and is used in tests to
    discriminate the two interpretations.
    """

    score: ScoreFunction = field(default_factory=LengthScore)
    require_all_pairs: bool = False

    name: str = "eventual-prefix"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        reads = history.read_responses()
        scores = {r.eid: self.score(r.chain) for r in reads}

        for read in reads:
            s = scores[read.eid]
            later = [r for r in reads if history.precedes(read, r)]
            if not later:
                continue
            if self.require_all_pairs:
                candidates = later
            else:
                last_per_process: Dict[str, Event] = {}
                for r in later:
                    last_per_process[r.process] = r  # later reads are time-ordered
                candidates = list(last_per_process.values())
            for i in range(len(candidates)):
                for j in range(i + 1, len(candidates)):
                    a, b = candidates[i], candidates[j]
                    if not a.chain.diverges_from(b.chain):
                        continue
                    shared = mcps(a.chain, b.chain, self.score)
                    if shared < s:
                        violations.append(
                            f"after read {read.eid} (score {s}), reads {a.eid} "
                            f"({a.process}) and {b.eid} ({b.process}) share a prefix "
                            f"of score only {shared}"
                        )
        return PropertyResult(self.name, not violations, tuple(violations))


# ---------------------------------------------------------------------------
# Criteria (conjunctions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BTStrongConsistency:
    """The BT Strong Consistency criterion (Definition 3.2)."""

    score: ScoreFunction = field(default_factory=LengthScore)
    validator: Optional[BlockValidator] = None
    stall_threshold: Optional[int] = None

    def check(self, history: History) -> ConsistencyReport:
        results = (
            BlockValidityChecker(self.validator).check(history),
            LocalMonotonicReadChecker(self.score).check(history),
            StrongPrefixChecker().check(history),
            EverGrowingTreeChecker(self.score, self.stall_threshold).check(history),
        )
        return ConsistencyReport("BT Strong Consistency", results)


@dataclass(frozen=True)
class BTEventualConsistency:
    """The BT Eventual Consistency criterion (Definition 3.4)."""

    score: ScoreFunction = field(default_factory=LengthScore)
    validator: Optional[BlockValidator] = None
    stall_threshold: Optional[int] = None
    require_all_pairs: bool = False

    def check(self, history: History) -> ConsistencyReport:
        results = (
            BlockValidityChecker(self.validator).check(history),
            LocalMonotonicReadChecker(self.score).check(history),
            EverGrowingTreeChecker(self.score, self.stall_threshold).check(history),
            EventualPrefixChecker(self.score, self.require_all_pairs).check(history),
        )
        return ConsistencyReport("BT Eventual Consistency", results)


def check_strong_consistency(
    history: History,
    score: Optional[ScoreFunction] = None,
    validator: Optional[BlockValidator] = None,
) -> ConsistencyReport:
    """Convenience wrapper: evaluate SC with default parameters."""
    return BTStrongConsistency(
        score=score if score is not None else LengthScore(),
        validator=validator,
    ).check(history)


def check_eventual_consistency(
    history: History,
    score: Optional[ScoreFunction] = None,
    validator: Optional[BlockValidator] = None,
) -> ConsistencyReport:
    """Convenience wrapper: evaluate EC with default parameters."""
    return BTEventualConsistency(
        score=score if score is not None else LengthScore(),
        validator=validator,
    ).check(history)
