"""BT consistency criteria (Definitions 3.2–3.4).

The paper defines two consistency criteria over concurrent histories of
the BT-ADT, each a conjunction of properties:

* **BT Strong Consistency (SC)** = Block Validity ∧ Local Monotonic Read ∧
  Strong Prefix ∧ Ever Growing Tree.
* **BT Eventual Consistency (EC)** = Block Validity ∧ Local Monotonic Read ∧
  Ever Growing Tree ∧ Eventual Prefix.

Every property checker below returns a :class:`PropertyResult` carrying a
boolean verdict *and* the witnesses of any violation (the offending events
and chains), because the theorem-level benches and the examples want to
show *why* a history fails, not merely that it does.

Performance
-----------

The checkers are evaluated on every classified run, and the original
implementations compared chains element-by-element for every pair of
reads — O(R²·L) on a history with R reads of chain length L, which made
analysing a long run cost far more than simulating it.  They now share a
:class:`~repro.core.consistency_index.ConsistencyIndex`: all read results
are merged into one analysis tree, chains are represented by their tips,
and divergence / ``mcps`` / chain scores become O(1) index queries — so a
criterion check is near-linear in the history size (plus the size of the
violation report itself, which both implementations must materialize).
The pre-index implementations are kept verbatim as the ``_Reference*``
oracles below: the randomized equivalence tests assert the rewritten
checkers reproduce their verdicts, violation strings and ``details``
byte-for-byte, and the perf bench (``python -m repro bench``) times them
as the in-run baseline.

Finite-prefix interpretation
----------------------------

Ever Growing Tree and Eventual Prefix quantify over infinite histories
("the set of later reads ... is finite").  A finite recorded execution is
always a *prefix* of such a history, so literal evaluation would accept
everything.  We follow the standard prefix interpretation (documented in
DESIGN.md §5):

* *Ever Growing Tree* — a violation is reported only when a read of score
  ``s`` is followed by at least ``stall_threshold`` later reads, **all** of
  score ``≤ s`` (i.e. growth visibly stalled within the trace).  With the
  default ``stall_threshold=None`` the property is treated as
  non-falsifiable on finite traces (it always passes, but the result still
  reports the stalled reads so analyses can inspect them).

* *Eventual Prefix* — for each read of score ``s`` we look at the *final*
  read of every process that reads afterwards: those limit reads must
  pairwise share a common prefix of score ``≥ s``.  This captures "the
  divergent interval is finite" on a finite trace: by the end of the trace
  the replicas' latest views agree at least up to ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.block import Block, Blockchain
from repro.core.consistency_index import ConsistencyIndex
from repro.core.history import Event, History
from repro.core.score import LengthScore, ScoreFunction, mcps

__all__ = [
    "PropertyResult",
    "ConsistencyReport",
    "BlockValidityChecker",
    "LocalMonotonicReadChecker",
    "StrongPrefixChecker",
    "EverGrowingTreeChecker",
    "EventualPrefixChecker",
    "BTStrongConsistency",
    "BTEventualConsistency",
    "check_strong_consistency",
    "check_eventual_consistency",
]

BlockValidator = Callable[[Block], bool]


@dataclass(frozen=True)
class PropertyResult:
    """Verdict of a single consistency property on a history."""

    name: str
    holds: bool
    violations: Tuple[str, ...] = ()
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        status = "OK" if self.holds else "VIOLATED"
        lines = [f"{self.name}: {status}"]
        lines.extend(f"  - {v}" for v in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class ConsistencyReport:
    """Aggregate verdict of a criterion (conjunction of properties)."""

    criterion: str
    results: Tuple[PropertyResult, ...]

    @property
    def holds(self) -> bool:
        return all(r.holds for r in self.results)

    def __bool__(self) -> bool:
        return self.holds

    def result_for(self, name: str) -> PropertyResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    def describe(self) -> str:
        header = f"{self.criterion}: {'SATISFIED' if self.holds else 'NOT SATISFIED'}"
        return "\n".join([header] + [r.describe() for r in self.results])


def _shared_index(history: History, index: Optional[ConsistencyIndex]) -> ConsistencyIndex:
    """The union index backing a check: reuse the caller's or build one."""
    return index if index is not None else ConsistencyIndex.from_history(history)


# ---------------------------------------------------------------------------
# Individual properties
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockValidityChecker:
    """Block validity (Definition 3.2, first bullet).

    Every block of every chain returned by a read must (i) be valid and
    (ii) have been introduced by an ``append`` invocation that precedes the
    read response in program order.

    ``validator`` decides membership in ``B'``; the default accepts every
    block (matching executions driven by :class:`~repro.core.validity.AlwaysValid`),
    and callers that stage invalid blocks pass an explicit validator.
    The genesis block is exempt (it is valid by assumption and never
    appended).

    The check is index-backed: the validator verdict is memoized per
    block id (instead of revalidating a block once per read returning
    it), the earliest-append map comes off the shared index (built once
    per history), and reads whose chains contain no *possibly bad* block
    — decided by a per-block flag pushed down the analysis tree — are
    skipped without walking their chains at all.
    """

    validator: Optional[BlockValidator] = None

    name: str = "block-validity"

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> PropertyResult:
        index = _shared_index(history, index)
        validator = self.validator
        verdict_memo: Dict[str, bool] = {}

        def is_valid(block: Block) -> bool:
            verdict = verdict_memo.get(block.block_id)
            if verdict is None:
                assert validator is not None
                verdict = verdict_memo[block.block_id] = bool(validator(block))
            return verdict

        # A block is *possibly bad* if it is invalid, never appended, or
        # appended no earlier than the first read returning it (any later
        # read can only have a larger eid, so a block that is clean for
        # its first read is clean for every read).  ``path_bad`` counts
        # possibly-bad blocks on the root path; insertion order is
        # parents-first, so one forward pass suffices.
        path_bad: Dict[str, int] = {}
        for block_id in index.block_ids():
            block = index.block(block_id)
            if block.is_genesis:
                path_bad[block_id] = 0
                continue
            bad = validator is not None and not is_valid(block)
            if not bad:
                first_append = index.first_append(block_id)
                first_seen = index.first_seen_read(block_id)
                bad = first_append is None or (
                    first_seen is not None and first_append >= first_seen
                )
            parent = index.parent_of(block_id)
            assert parent is not None
            path_bad[block_id] = path_bad[parent] + (1 if bad else 0)

        violations: List[str] = []
        for read in history.read_responses():
            if path_bad.get(index.read_tip(read.eid), 0) == 0:
                continue
            # Possibly-bad block on the path: walk the chain and apply the
            # exact per-(read, block) rules of the reference oracle.
            for block in read.chain:
                if block.is_genesis:
                    continue
                if validator is not None and not is_valid(block):
                    violations.append(
                        f"read {read.eid} at {read.process} returned invalid "
                        f"block {block.block_id}"
                    )
                first_append = index.first_append(block.block_id)
                if first_append is None:
                    violations.append(
                        f"read {read.eid} at {read.process} returned block "
                        f"{block.block_id} that was never appended"
                    )
                elif first_append >= read.eid:
                    violations.append(
                        f"read {read.eid} at {read.process} returned block "
                        f"{block.block_id} appended only later (event {first_append})"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class LocalMonotonicReadChecker:
    """Local Monotonic Read: per-process read scores never decrease."""

    score: ScoreFunction = field(default_factory=LengthScore)

    name: str = "local-monotonic-read"

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> PropertyResult:
        index = _shared_index(history, index)
        violations: List[str] = []
        for process in history.processes:
            reads = history.read_responses(process)
            scores = [index.score_of_read(r, self.score) for r in reads]
            for k in range(len(reads) - 1):
                s_earlier, s_later = scores[k], scores[k + 1]
                if s_earlier > s_later:
                    violations.append(
                        f"process {process}: read {reads[k].eid} scored {s_earlier} "
                        f"but later read {reads[k + 1].eid} scored {s_later}"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class StrongPrefixChecker:
    """Strong Prefix: every pair of read results is prefix-related.

    Fast path: the property holds iff every distinct tip lies on one root
    path of the analysis tree — verified by sorting the tips by height
    and checking consecutive ancestry (ancestry is transitive), O(R log R)
    instead of O(R²·L).  Only when that fails does the checker fall back
    to the pairwise sweep, with O(1) divergence tests, to reproduce the
    reference violation list exactly.
    """

    name: str = "strong-prefix"

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> PropertyResult:
        index = _shared_index(history, index)
        reads = history.read_responses()
        tips = [index.read_tip(r.eid) for r in reads]
        if index.tips_totally_ordered(tips):
            return PropertyResult(self.name, True, ())

        violations: List[str] = []
        for i in range(len(reads)):
            tip_i = tips[i]
            for j in range(i + 1, len(reads)):
                if not index.prefix_related(tip_i, tips[j]):
                    violations.append(
                        f"reads {reads[i].eid} ({reads[i].process}) and "
                        f"{reads[j].eid} ({reads[j].process}) returned diverging "
                        f"chains {reads[i].chain} vs {reads[j].chain}"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class EverGrowingTreeChecker:
    """Ever Growing Tree, under the finite-prefix interpretation.

    ``stall_threshold=None`` (default): the property is reported as
    holding, with the stalled-read statistics placed in ``details`` for
    inspection.  With an integer threshold ``n``, a violation is reported
    for a read of score ``s`` whenever at least ``n`` later reads exist and
    *none* of the later reads exceeds ``s``.

    One backward sweep computes the suffix maxima of the (index-backed)
    read scores; a read is stalled iff the suffix maximum of the later
    reads does not exceed its own score, in which case *every* later read
    is non-growing and the stall count is just the number of later reads.
    """

    score: ScoreFunction = field(default_factory=LengthScore)
    stall_threshold: Optional[int] = None

    name: str = "ever-growing-tree"

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> PropertyResult:
        index = _shared_index(history, index)
        reads = history.read_responses()
        n = len(reads)
        scores = [index.score_of_read(r, self.score) for r in reads]
        # suffix_max[i] = max score of reads[i+1:]; undefined for the last read.
        suffix_max: List[float] = [0.0] * n
        running: Optional[float] = None
        for i in range(n - 1, -1, -1):
            if running is not None:
                suffix_max[i] = running
            running = scores[i] if running is None or scores[i] > running else running

        violations: List[str] = []
        stalled: Dict[int, int] = {}
        for i, read in enumerate(reads):
            if i == n - 1:
                continue  # no later reads
            s = scores[i]
            if suffix_max[i] > s:
                continue  # the tree visibly grew past this read
            count = n - 1 - i
            stalled[read.eid] = count
            if self.stall_threshold is not None and count >= self.stall_threshold:
                violations.append(
                    f"read {read.eid} at {read.process} (score {s}) is followed "
                    f"by {count} reads none of which exceeds its score"
                )
        return PropertyResult(
            self.name,
            not violations,
            tuple(violations),
            details={"stalled_reads": stalled},
        )


@dataclass(frozen=True)
class EventualPrefixChecker:
    """Eventual Prefix (Definition 3.3), finite-prefix interpretation.

    For every read response ``r`` of score ``s``: consider, among the reads
    whose response follows ``r``, the *last* read of each process.  Those
    limit reads must pairwise share a maximal common prefix of score
    ``≥ s`` **or** be prefix-related.  (On the paper's infinite histories
    the criterion says "only finitely many later pairs diverge below
    ``s``"; a finite trace witnesses a violation when its final views hold
    *conflicting branches* below ``s``.  A pair where one chain simply lags
    behind the other is not counted as divergent: under Ever Growing Tree
    the lag is transient, and exempting it is what keeps the finite-prefix
    interpretation consistent with Theorem 3.1, ``H_SC ⊆ H_EC``.)

    Setting ``require_all_pairs=True`` strengthens the check to *every*
    pair of later reads (not just the limit reads); that stricter variant
    rejects any history with a transient fork and is used in tests to
    discriminate the two interpretations.

    The default mode runs as one backward sweep maintaining the limit
    views: each process's limit read is fixed the first time the sweep
    meets it, and the candidate *order* (first occurrence of each process
    among the later reads, matching the reference oracle's insertion
    order) is a move-to-front list.  Divergence tests are O(1) and the
    shared-prefix scores come off the LCA indexes, memoized per tip pair.
    """

    score: ScoreFunction = field(default_factory=LengthScore)
    require_all_pairs: bool = False

    name: str = "eventual-prefix"

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> PropertyResult:
        index = _shared_index(history, index)
        reads = history.read_responses()
        n = len(reads)
        scores = [index.score_of_read(r, self.score) for r in reads]
        tips = {r.eid: index.read_tip(r.eid) for r in reads}
        pair_memo: Dict[Tuple[str, str], float] = {}

        def pair_mcps(a: Event, b: Event) -> float:
            tip_a, tip_b = tips[a.eid], tips[b.eid]
            key = (tip_a, tip_b) if tip_a <= tip_b else (tip_b, tip_a)
            value = pair_memo.get(key)
            if value is None:
                value = pair_memo[key] = index.mcps_of_tips(
                    tip_a, tip_b, self.score, chains=(a.chain, b.chain)
                )
            return value

        if self.require_all_pairs:
            candidates_for = None  # sliced lazily below: every later read
        else:
            # Backward sweep: limit[p] is p's last read in the suffix (set
            # once), ``order`` tracks processes by first occurrence in the
            # suffix (move-to-front on prepend).
            limit: Dict[str, Event] = {}
            order: List[str] = []
            candidates_for = [()] * n
            for i in range(n - 1, -1, -1):
                candidates_for[i] = tuple(limit[p] for p in order)
                prepended = reads[i]
                process = prepended.process
                if process not in limit:
                    limit[process] = prepended
                    order.insert(0, process)
                elif order[0] != process:
                    order.remove(process)
                    order.insert(0, process)

        violations: List[str] = []
        for i, read in enumerate(reads):
            candidates = reads[i + 1 :] if candidates_for is None else candidates_for[i]
            if not candidates:
                continue
            s = scores[i]
            for x in range(len(candidates)):
                tip_x = tips[candidates[x].eid]
                for y in range(x + 1, len(candidates)):
                    a, b = candidates[x], candidates[y]
                    if index.prefix_related(tip_x, tips[b.eid]):
                        continue
                    shared = pair_mcps(a, b)
                    if shared < s:
                        violations.append(
                            f"after read {read.eid} (score {s}), reads {a.eid} "
                            f"({a.process}) and {b.eid} ({b.process}) share a prefix "
                            f"of score only {shared}"
                        )
        return PropertyResult(self.name, not violations, tuple(violations))


# ---------------------------------------------------------------------------
# Criteria (conjunctions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BTStrongConsistency:
    """The BT Strong Consistency criterion (Definition 3.2).

    The four property checkers share one union index built from the
    history (callers holding an index already — e.g. the classifier
    evaluating both criteria — pass it in to skip the rebuild).
    """

    score: ScoreFunction = field(default_factory=LengthScore)
    validator: Optional[BlockValidator] = None
    stall_threshold: Optional[int] = None

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> ConsistencyReport:
        index = _shared_index(history, index)
        results = (
            BlockValidityChecker(self.validator).check(history, index),
            LocalMonotonicReadChecker(self.score).check(history, index),
            StrongPrefixChecker().check(history, index),
            EverGrowingTreeChecker(self.score, self.stall_threshold).check(history, index),
        )
        return ConsistencyReport("BT Strong Consistency", results)


@dataclass(frozen=True)
class BTEventualConsistency:
    """The BT Eventual Consistency criterion (Definition 3.4)."""

    score: ScoreFunction = field(default_factory=LengthScore)
    validator: Optional[BlockValidator] = None
    stall_threshold: Optional[int] = None
    require_all_pairs: bool = False

    def check(
        self, history: History, index: Optional[ConsistencyIndex] = None
    ) -> ConsistencyReport:
        index = _shared_index(history, index)
        results = (
            BlockValidityChecker(self.validator).check(history, index),
            LocalMonotonicReadChecker(self.score).check(history, index),
            EverGrowingTreeChecker(self.score, self.stall_threshold).check(history, index),
            EventualPrefixChecker(self.score, self.require_all_pairs).check(history, index),
        )
        return ConsistencyReport("BT Eventual Consistency", results)


def check_strong_consistency(
    history: History,
    score: Optional[ScoreFunction] = None,
    validator: Optional[BlockValidator] = None,
) -> ConsistencyReport:
    """Convenience wrapper: evaluate SC with default parameters."""
    return BTStrongConsistency(
        score=score if score is not None else LengthScore(),
        validator=validator,
    ).check(history)


def check_eventual_consistency(
    history: History,
    score: Optional[ScoreFunction] = None,
    validator: Optional[BlockValidator] = None,
) -> ConsistencyReport:
    """Convenience wrapper: evaluate EC with default parameters."""
    return BTEventualConsistency(
        score=score if score is not None else LengthScore(),
        validator=validator,
    ).check(history)


# ---------------------------------------------------------------------------
# Reference oracles — the pre-index brute-force implementations
# ---------------------------------------------------------------------------
#
# These reproduce, verbatim, the original O(R²·L) checker code that
# compared materialized chains pair by pair.  They exist for two consumers
# only: the randomized equivalence tests use them as oracles for the
# indexed checkers above (verdicts, violation strings and ``details`` must
# match byte-for-byte), and the perf bench harness (repro.engine.bench)
# times them as the in-run baseline.  Do not "optimize" them.


@dataclass(frozen=True)
class _ReferenceBlockValidityChecker:
    """Brute-force oracle: revalidate every block of every read."""

    validator: Optional[BlockValidator] = None

    name: str = "block-validity"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        appended: Dict[str, int] = {}
        for inv in history.append_invocations():
            block = inv.argument
            if isinstance(block, Block):
                # Earliest append invocation time for each block id.
                appended.setdefault(block.block_id, inv.eid)

        for read in history.read_responses():
            chain = read.chain
            for block in chain:
                if block.is_genesis:
                    continue
                if self.validator is not None and not self.validator(block):
                    violations.append(
                        f"read {read.eid} at {read.process} returned invalid "
                        f"block {block.block_id}"
                    )
                first_append = appended.get(block.block_id)
                if first_append is None:
                    violations.append(
                        f"read {read.eid} at {read.process} returned block "
                        f"{block.block_id} that was never appended"
                    )
                elif first_append >= read.eid:
                    violations.append(
                        f"read {read.eid} at {read.process} returned block "
                        f"{block.block_id} appended only later (event {first_append})"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class _ReferenceLocalMonotonicReadChecker:
    """Brute-force oracle: rescore both chains of every consecutive pair."""

    score: ScoreFunction = field(default_factory=LengthScore)

    name: str = "local-monotonic-read"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        for process in history.processes:
            reads = history.read_responses(process)
            for earlier, later in zip(reads, reads[1:]):
                s_earlier = self.score(earlier.chain)
                s_later = self.score(later.chain)
                if s_earlier > s_later:
                    violations.append(
                        f"process {process}: read {earlier.eid} scored {s_earlier} "
                        f"but later read {later.eid} scored {s_later}"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class _ReferenceStrongPrefixChecker:
    """Brute-force oracle: element-wise chain comparison per read pair."""

    name: str = "strong-prefix"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        reads = history.read_responses()
        for i in range(len(reads)):
            chain_i = reads[i].chain
            for j in range(i + 1, len(reads)):
                chain_j = reads[j].chain
                if chain_i.diverges_from(chain_j):
                    violations.append(
                        f"reads {reads[i].eid} ({reads[i].process}) and "
                        f"{reads[j].eid} ({reads[j].process}) returned diverging "
                        f"chains {chain_i} vs {chain_j}"
                    )
        return PropertyResult(self.name, not violations, tuple(violations))


@dataclass(frozen=True)
class _ReferenceEverGrowingTreeChecker:
    """Brute-force oracle: rescan the whole read list per read."""

    score: ScoreFunction = field(default_factory=LengthScore)
    stall_threshold: Optional[int] = None

    name: str = "ever-growing-tree"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        stalled: Dict[int, int] = {}
        reads = history.read_responses()
        scores = [self.score(r.chain) for r in reads]
        for i, read in enumerate(reads):
            s = scores[i]
            later = [
                (other, scores[j])
                for j, other in enumerate(reads)
                if history.precedes(read, other)
            ]
            if not later:
                continue
            not_growing = [o for o, sc in later if sc <= s]
            grew = any(sc > s for _, sc in later)
            if not grew:
                stalled[read.eid] = len(not_growing)
                if (
                    self.stall_threshold is not None
                    and len(not_growing) >= self.stall_threshold
                ):
                    violations.append(
                        f"read {read.eid} at {read.process} (score {s}) is followed "
                        f"by {len(not_growing)} reads none of which exceeds its score"
                    )
        return PropertyResult(
            self.name,
            not violations,
            tuple(violations),
            details={"stalled_reads": stalled},
        )


@dataclass(frozen=True)
class _ReferenceEventualPrefixChecker:
    """Brute-force oracle: rebuild limit views and mcps per read."""

    score: ScoreFunction = field(default_factory=LengthScore)
    require_all_pairs: bool = False

    name: str = "eventual-prefix"

    def check(self, history: History) -> PropertyResult:
        violations: List[str] = []
        reads = history.read_responses()
        scores = {r.eid: self.score(r.chain) for r in reads}

        for read in reads:
            s = scores[read.eid]
            later = [r for r in reads if history.precedes(read, r)]
            if not later:
                continue
            if self.require_all_pairs:
                candidates = later
            else:
                last_per_process: Dict[str, Event] = {}
                for r in later:
                    last_per_process[r.process] = r  # later reads are time-ordered
                candidates = list(last_per_process.values())
            for i in range(len(candidates)):
                for j in range(i + 1, len(candidates)):
                    a, b = candidates[i], candidates[j]
                    if not a.chain.diverges_from(b.chain):
                        continue
                    shared = mcps(a.chain, b.chain, self.score)
                    if shared < s:
                        violations.append(
                            f"after read {read.eid} (score {s}), reads {a.eid} "
                            f"({a.process}) and {b.eid} ({b.process}) share a prefix "
                            f"of score only {shared}"
                        )
        return PropertyResult(self.name, not violations, tuple(violations))


def _reference_strong_consistency(
    history: History,
    score: Optional[ScoreFunction] = None,
    validator: Optional[BlockValidator] = None,
    stall_threshold: Optional[int] = None,
) -> ConsistencyReport:
    """SC through the brute-force oracles (equivalence tests and bench)."""
    scorer = score if score is not None else LengthScore()
    results = (
        _ReferenceBlockValidityChecker(validator).check(history),
        _ReferenceLocalMonotonicReadChecker(scorer).check(history),
        _ReferenceStrongPrefixChecker().check(history),
        _ReferenceEverGrowingTreeChecker(scorer, stall_threshold).check(history),
    )
    return ConsistencyReport("BT Strong Consistency", results)


def _reference_eventual_consistency(
    history: History,
    score: Optional[ScoreFunction] = None,
    validator: Optional[BlockValidator] = None,
    stall_threshold: Optional[int] = None,
    require_all_pairs: bool = False,
) -> ConsistencyReport:
    """EC through the brute-force oracles (equivalence tests and bench)."""
    scorer = score if score is not None else LengthScore()
    results = (
        _ReferenceBlockValidityChecker(validator).check(history),
        _ReferenceLocalMonotonicReadChecker(scorer).check(history),
        _ReferenceEverGrowingTreeChecker(scorer, stall_threshold).check(history),
        _ReferenceEventualPrefixChecker(scorer, require_all_pairs).check(history),
    )
    return ConsistencyReport("BT Eventual Consistency", results)
