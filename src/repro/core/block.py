"""Blocks and blockchains.

A *block* is a vertex of the BlockTree (Section 3.1 of the paper).  The
paper treats blocks as opaque elements of a countable set ``B`` with a
distinguished subset ``B'`` of *valid* blocks; validity is evaluated by an
application-dependent predicate ``P`` (see :mod:`repro.core.validity`).

A *blockchain* ``bc`` is a path from a leaf of the BlockTree back to the
genesis block ``b0``.  We represent it root-first (genesis at index ``0``)
because every notation in the paper — ``{b0}^⌢ f(bt)``, prefix relations,
the ``mcps`` score — reads naturally in that direction.

Both types are immutable: blocks are frozen dataclasses and blockchains
are thin wrappers over tuples of blocks.  Immutability is what lets the
consistency checkers in :mod:`repro.core.consistency` compare thousands of
read results cheaply (hash-consed identifier tuples, cached heights).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Block",
    "Blockchain",
    "GENESIS_ID",
    "GENESIS",
    "genesis_block",
    "BlockIdFactory",
    "chains_consistent",
]

#: Identifier of the genesis block ``b0``.  Every BlockTree is rooted here.
GENESIS_ID = "b0"


@dataclass(frozen=True)
class Block:
    """An element of the block set ``B``.

    Parameters
    ----------
    block_id:
        Globally unique identifier of the block.  The paper indexes blocks
        abstractly (``b_k`` is *some* block at height ``k``); we use opaque
        string identifiers and recover heights from the tree structure.
    parent_id:
        Identifier of the block this block extends.  ``None`` only for the
        genesis block.
    payload:
        Application content (e.g. transaction identifiers).  Kept as a
        tuple so blocks remain hashable.
    creator:
        Identifier of the process that produced the block (used by the
        protocol models and by fairness-style analyses).
    weight:
        Work/weight contributed by this block, used by weight-based score
        and selection functions (``heaviest chain'', GHOST).  The default
        of ``1.0`` makes weight-based and length-based scores coincide.
    token:
        Identifier of the oracle token consumed to append the block, when
        the block was produced through a refined append
        (:class:`repro.oracle.refinement.RefinedBTADT`).  ``None`` for
        blocks appended directly on the plain BT-ADT.
    round:
        Logical time (simulator round or scheduler step) at which the
        block was created.  Only used by analyses; never by the ADT
        semantics themselves.
    """

    block_id: str
    parent_id: Optional[str]
    payload: Tuple[Any, ...] = ()
    creator: Optional[str] = None
    weight: float = 1.0
    token: Optional[str] = None
    round: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.block_id, str) or not self.block_id:
            raise ValueError("block_id must be a non-empty string")
        if self.parent_id is None and self.block_id != GENESIS_ID:
            raise ValueError(
                f"only the genesis block {GENESIS_ID!r} may have no parent "
                f"(got block {self.block_id!r})"
            )
        if self.block_id == self.parent_id:
            raise ValueError(f"block {self.block_id!r} cannot be its own parent")
        if self.weight < 0:
            raise ValueError("block weight must be non-negative")

    @property
    def is_genesis(self) -> bool:
        """``True`` iff this block is the genesis block ``b0``."""
        return self.parent_id is None

    def with_parent(self, parent_id: str) -> "Block":
        """Return a copy of this block re-attached under ``parent_id``.

        Used by the refined append (Definition 3.7) where the oracle
        decides the parent (``last_block(f(bt))``) on behalf of the caller.
        """
        return replace(self, parent_id=parent_id)

    def with_token(self, token: str) -> "Block":
        """Return a copy of this block carrying oracle ``token``.

        This models the paper's ``b_ℓ^{tkn_h}`` notation: a block made
        valid by obtaining token ``tkn_h`` for parent ``b_h``.
        """
        return replace(self, token=token)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.block_id


def genesis_block(payload: Tuple[Any, ...] = ()) -> Block:
    """Return a fresh genesis block ``b0``.

    By assumption in the paper ``b0 ∈ B'`` (the genesis block is always
    valid); every :class:`repro.core.blocktree.BlockTree` is created
    already containing it.
    """
    return Block(block_id=GENESIS_ID, parent_id=None, payload=payload, weight=0.0)


#: A shared default genesis block.  Safe to share because blocks are frozen.
GENESIS = genesis_block()


class BlockIdFactory:
    """Deterministic generator of unique block identifiers.

    The paper's set ``B`` is countable; this factory enumerates it.  Each
    factory owns an independent counter so concurrent components (e.g.
    different protocol replicas) can create blocks without coordination as
    long as they use distinct prefixes.
    """

    def __init__(self, prefix: str = "b") -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self._prefix = prefix
        self._counter = itertools.count(1)

    def __call__(self) -> str:
        return f"{self._prefix}{next(self._counter)}"

    def make_block(
        self,
        parent_id: str,
        *,
        payload: Tuple[Any, ...] = (),
        creator: Optional[str] = None,
        weight: float = 1.0,
        round: Optional[int] = None,
    ) -> Block:
        """Create a new :class:`Block` with a fresh identifier."""
        return Block(
            block_id=self(),
            parent_id=parent_id,
            payload=payload,
            creator=creator,
            weight=weight,
            round=round,
        )


@dataclass(frozen=True)
class Blockchain:
    """A blockchain ``bc``: a path from the genesis block to some block.

    The paper defines ``BC`` as the set of paths from a leaf of ``bt`` to
    ``b0`` and writes ``{b0}^⌢ f(bt)`` for the chain returned by a read.
    We store the path root-first: ``blocks[0]`` is genesis, ``blocks[-1]``
    is the tip.

    Instances are immutable and cache their identifier tuple, so prefix
    comparisons (`issubclass` of paths) and the ``mcps`` computation in
    :mod:`repro.core.score` are tuple comparisons, not tree walks.
    """

    blocks: Tuple[Block, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a blockchain contains at least the genesis block")
        if not self.blocks[0].is_genesis:
            raise ValueError("a blockchain must start at the genesis block")
        for parent, child in zip(self.blocks, self.blocks[1:]):
            if child.parent_id != parent.block_id:
                raise ValueError(
                    f"broken chain: {child.block_id!r} does not extend "
                    f"{parent.block_id!r} (its parent is {child.parent_id!r})"
                )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_blocks(cls, blocks: Iterable[Block]) -> "Blockchain":
        """Build a chain from an iterable of blocks ordered root-first."""
        return cls(tuple(blocks))

    @classmethod
    def genesis_only(cls, genesis: Block = GENESIS) -> "Blockchain":
        """The trivial chain ``{b0}`` returned by a read on an empty tree."""
        return cls((genesis,))

    # -- basic accessors -------------------------------------------------

    @cached_property
    def ids(self) -> Tuple[str, ...]:
        """Tuple of block identifiers, root-first (computed once per chain).

        Prefix comparisons and the ``mcps`` computation hammer this tuple,
        so it is cached on first access (safe: chains are immutable; the
        cache bypasses the frozen-dataclass ``__setattr__``).
        """
        return tuple(b.block_id for b in self.blocks)

    @property
    def tip(self) -> Block:
        """The last (leaf-most) block of the chain."""
        return self.blocks[-1]

    @property
    def genesis(self) -> Block:
        """The genesis block ``b0``."""
        return self.blocks[0]

    @property
    def length(self) -> int:
        """Number of non-genesis blocks (the paper's height/length score)."""
        return len(self.blocks) - 1

    @property
    def total_weight(self) -> float:
        """Sum of block weights; used by weight-based scores."""
        return sum(b.weight for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __getitem__(self, index: int) -> Block:
        return self.blocks[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Block):
            return item in self.blocks
        if isinstance(item, str):
            return any(b.block_id == item for b in self.blocks)
        return False

    # -- structural relations ---------------------------------------------

    def extend(self, block: Block) -> "Blockchain":
        """Return the chain ``self ⌢ {block}``.

        Raises
        ------
        ValueError
            if ``block`` does not name the current tip as its parent, i.e.
            the concatenation would not be a path of the BlockTree.
        """
        if block.parent_id != self.tip.block_id:
            raise ValueError(
                f"cannot extend chain ending at {self.tip.block_id!r} with "
                f"block {block.block_id!r} whose parent is {block.parent_id!r}"
            )
        return Blockchain(self.blocks + (block,))

    def prefix(self, length: int) -> "Blockchain":
        """Return the prefix containing ``length`` non-genesis blocks."""
        if length < 0 or length > self.length:
            raise ValueError(
                f"prefix length {length} out of range [0, {self.length}]"
            )
        return Blockchain(self.blocks[: length + 1])

    def is_prefix_of(self, other: "Blockchain") -> bool:
        """The paper's ``bc ⊑ bc'`` relation (``self`` prefixes ``other``)."""
        if len(self.blocks) > len(other.blocks):
            return False
        return self.ids == other.ids[: len(self.ids)]

    def common_prefix(self, other: "Blockchain") -> "Blockchain":
        """Return the maximal common prefix of the two chains.

        Both chains share at least the genesis block, so the result is
        never empty.
        """
        shared = 0
        for a, b in zip(self.ids, other.ids):
            if a != b:
                break
            shared += 1
        return Blockchain(self.blocks[:shared])

    def diverges_from(self, other: "Blockchain") -> bool:
        """``True`` iff neither chain is a prefix of the other."""
        return not (self.is_prefix_of(other) or other.is_prefix_of(self))

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "⌢".join(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Blockchain({'->'.join(self.ids)})"


def chains_consistent(chains: Sequence[Blockchain]) -> bool:
    """Return ``True`` iff every pair of chains is prefix-related.

    Convenience used by tests and by the Strong Prefix checker: a set of
    read results is "strongly consistent" iff it is totally ordered by the
    prefix relation ``⊑``.
    """
    ordered = sorted(chains, key=len)
    return all(
        ordered[i].is_prefix_of(ordered[i + 1]) for i in range(len(ordered) - 1)
    )
