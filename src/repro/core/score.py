"""Score functions, the ``mcps`` helper and prefix utilities.

Section 3.1.2 of the paper introduces:

* ``score : BC -> N`` — a *monotonically increasing* deterministic function
  mapping a blockchain to a natural number (its length, its cumulative
  work, ...).  Monotonicity means ``score(bc ⌢ {b}) > score(bc)``.
* ``s0 = score({b0})`` — the score of the genesis-only chain.
* ``mcps : BC × BC -> N`` — the score of the *maximal common prefix* of two
  chains, the quantity the Eventual Prefix property constrains.

Scores drive three of the four consistency properties (Local Monotonic
Read, Ever Growing Tree, Eventual Prefix), so they get their own module
with small, well-tested implementations and a vectorized helper for the
pairwise computations the checkers perform on long histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.block import Blockchain

__all__ = [
    "ScoreFunction",
    "LengthScore",
    "WeightScore",
    "mcps",
    "common_prefix_length",
    "pairwise_mcps_matrix",
    "is_monotonic_score",
]


@runtime_checkable
class ScoreFunction(Protocol):
    """Protocol for the paper's ``score`` functions.

    Implementations must be *deterministic* and *strictly increasing under
    extension*: ``score(bc.extend(b)) > score(bc)`` for every valid
    extension.  :func:`is_monotonic_score` checks this property on sample
    data and is used by the property-based tests.
    """

    def __call__(self, chain: Blockchain) -> float:
        """Return the score of ``chain``."""
        ...


@dataclass(frozen=True)
class LengthScore:
    """Score = number of non-genesis blocks (the paper's running example).

    ``score({b0}) = 0``, and each appended block increases the score by 1.
    """

    def __call__(self, chain: Blockchain) -> float:
        return float(chain.length)

    @property
    def genesis_score(self) -> float:
        """The paper's ``s0``."""
        return 0.0


@dataclass(frozen=True)
class WeightScore:
    """Score = cumulative weight of the chain ("most work", "heaviest").

    With all block weights equal to 1 this coincides with
    :class:`LengthScore`; with proof-of-work difficulty as weight it models
    Bitcoin's "most accumulated work" rule.  A strictly positive
    ``min_increment`` keeps the function monotonic even when individual
    blocks carry zero weight.
    """

    min_increment: float = 0.0

    def __call__(self, chain: Blockchain) -> float:
        base = sum(b.weight for b in chain.blocks if not b.is_genesis)
        return float(base + self.min_increment * chain.length)

    @property
    def genesis_score(self) -> float:
        return 0.0


def common_prefix_length(a: Blockchain, b: Blockchain) -> int:
    """Number of *non-genesis* blocks shared by the maximal common prefix.

    Both chains share at least the genesis block, so the underlying common
    prefix always exists; this helper returns its length score directly
    because that is what every caller needs.
    """
    shared = 0
    for x, y in zip(a.ids, b.ids):
        if x != y:
            break
        shared += 1
    # ``shared`` counts genesis too; the length score ignores genesis.
    return shared - 1


def mcps(a: Blockchain, b: Blockchain, score: ScoreFunction | None = None) -> float:
    """The paper's ``mcps(bc, bc')``: score of the maximal common prefix.

    Parameters
    ----------
    a, b:
        The two chains (typically two read results).
    score:
        The score function to apply to the common prefix.  Defaults to
        :class:`LengthScore`, the convention used in Figures 2–4.
    """
    scorer = score if score is not None else LengthScore()
    if isinstance(scorer, LengthScore):
        # Length of the common prefix is known from the id tuples alone;
        # skip materializing (and re-validating) the prefix chain.
        return float(common_prefix_length(a, b))
    return scorer(a.common_prefix(b))


def is_monotonic_score(score: ScoreFunction, chains: Sequence[Blockchain]) -> bool:
    """Check the strict-increase-under-extension contract on sample chains.

    For every chain with at least one non-genesis block, the score of the
    chain must strictly exceed the score of the chain with its tip removed.
    """
    for chain in chains:
        if chain.length == 0:
            continue
        if not score(chain) > score(chain.prefix(chain.length - 1)):
            return False
    return True


def pairwise_mcps_matrix(
    chains: Sequence[Blockchain], score: ScoreFunction | None = None
) -> np.ndarray:
    """Matrix ``M[i, j] = mcps(chains[i], chains[j])`` for all pairs.

    The Eventual Prefix checker compares every pair of "later" reads; for
    histories with hundreds of reads doing this chain-by-chain in Python
    is the hot path, so we encode chains as integer id arrays once and let
    NumPy find the first mismatch per pair.

    Only the length score can be fully vectorized this way; for other
    score functions we fall back to evaluating the score of the common
    prefix pairwise (still reusing the integer encoding to find the split
    point).
    """
    n = len(chains)
    result = np.zeros((n, n), dtype=float)
    if n == 0:
        return result

    # Encode block ids as small integers, padding with -1 (distinct pads
    # per row index parity would break prefix detection, so use a single
    # sentinel and rely on genuine ids never colliding with it).
    id_map: dict[str, int] = {}
    encoded: list[np.ndarray] = []
    for chain in chains:
        row = np.empty(len(chain.ids), dtype=np.int64)
        for k, bid in enumerate(chain.ids):
            row[k] = id_map.setdefault(bid, len(id_map))
        encoded.append(row)

    length_score = score is None or isinstance(score, LengthScore)
    scorer = score if score is not None else LengthScore()

    for i in range(n):
        for j in range(i, n):
            a, b = encoded[i], encoded[j]
            limit = min(a.shape[0], b.shape[0])
            if limit == 0:
                shared = 0
            else:
                neq = np.nonzero(a[:limit] != b[:limit])[0]
                shared = int(neq[0]) if neq.size else limit
            if length_score:
                value = float(shared - 1)
            else:
                value = scorer(chains[i].prefix(shared - 1))
            result[i, j] = value
            result[j, i] = value
    return result
