"""Shared error types for the registered spec vocabularies.

The engine's declarative layer resolves several *names* into
implementations: protocol names (``@register_protocol``), channel kinds
(:class:`~repro.engine.spec.ChannelSpec`), topology kinds
(:class:`~repro.network.topology.Topology` / ``@register_topology``),
selection functions, score functions and merit distributions.  Before
this module each lookup raised its own flavour of ``KeyError`` or
``ValueError`` with its own message shape; a typo in a spec therefore
failed differently depending on *which* field was wrong.

:class:`UnknownVocabularyError` is the single error every vocabulary
lookup raises: it names the vocabulary, the unknown value, and the full
sorted list of registered names, so the fix is always in the message.  It
subclasses both :class:`KeyError` (what registry lookups historically
raised) and :class:`ValueError` (what spec builders historically raised),
so existing ``except``/``pytest.raises`` clauses keep matching.

This lives in :mod:`repro.core` — the bottom of the layering — because
both the network substrate (topology registry) and the engine (protocol /
channel / selection vocabularies) raise it.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["UnknownVocabularyError"]


class UnknownVocabularyError(KeyError, ValueError):
    """An unregistered name was used where a spec vocabulary is expected.

    Attributes
    ----------
    vocabulary:
        Human-readable vocabulary name (``"protocol"``, ``"channel kind"``,
        ``"topology"``, ...).
    name:
        The unknown value as supplied.
    registered:
        Sorted tuple of the names that *are* registered.
    """

    def __init__(self, vocabulary: str, name: object, registered: Iterable[str]) -> None:
        self.vocabulary = vocabulary
        self.name = name
        self.registered = tuple(sorted(registered))
        listing = ", ".join(repr(n) for n in self.registered) or "(none)"
        self.message = f"unknown {vocabulary} {name!r}; registered: {listing}"
        super().__init__(self.message)

    def __str__(self) -> str:
        # KeyError.__str__ would wrap the message in quotes (it reprs its
        # sole argument); the plain message is what belongs in tracebacks.
        return self.message
