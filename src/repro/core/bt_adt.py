"""The BlockTree ADT (Definition 3.1).

``BT-ADT = ⟨A = {append(b), read()}, B = BC ∪ {true, false},
Z = BT × F × (B -> {true,false}), ξ0 = (bt0, f, P), τ, δ⟩`` where

* ``τ((bt, f, P), append(b)) = ({b0}⌢ f(bt) ⌢ {b}, f, P)`` if ``b ∈ B'``
  (the block is attached to the tip of the currently selected chain),
  and leaves the state unchanged otherwise;
* ``τ((bt, f, P), read()) = (bt, f, P)``;
* ``δ((bt, f, P), append(b)) = true`` iff ``b ∈ B'``;
* ``δ((bt, f, P), read()) = {b0}⌢ f(bt)`` (just ``b0`` on the initial tree).

Two views are provided:

* :class:`BTADT` — the pure :class:`~repro.core.adt.AbstractDataType`
  subclass operating on immutable-ish :class:`BTState` values, used by the
  sequential-specification tests;
* :class:`BlockTreeObject` — the stateful convenience object with
  ``append``/``read`` methods that the rest of the library (recorder,
  replicas, examples) calls, optionally recording events into a
  :class:`repro.core.history.HistoryRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.core.adt import AbstractDataType, InputSymbol
from repro.core.block import Block, Blockchain
from repro.core.blocktree import BlockTree
from repro.core.history import HistoryRecorder
from repro.core.selection import LongestChain, SelectionFunction
from repro.core.validity import AlwaysValid, ValidityPredicate

__all__ = ["BTState", "BTADT", "BlockTreeObject"]

APPEND = "append"
READ = "read"


@dataclass(frozen=True)
class BTState:
    """The abstract state ``(bt, f, P)`` of the BT-ADT.

    The selection function ``f`` and the predicate ``P`` "are parameters of
    the ADT which are encoded in the state and do not change over the
    computation"; only the tree evolves.  The tree itself is mutable, so
    *mutating* transitions copy it before appending; transitions that do
    not mutate the tree (``read()`` and a rejected ``append``) return the
    incoming state unchanged — same object, same tree, zero copies.  The
    selection results memoized on the tree survive the copy (the copy is
    content-identical at the same version), so replaying a history does
    not re-evaluate ``f`` from scratch at every step.
    """

    tree: BlockTree
    selection: SelectionFunction
    predicate: ValidityPredicate

    def selected_chain(self) -> Blockchain:
        """``{b0}⌢ f(bt)`` — what a read returns in this state."""
        return self.selection(self.tree)


class BTADT(AbstractDataType[BTState]):
    """Pure transducer view of the BlockTree ADT (Definition 3.1)."""

    def __init__(
        self,
        selection: Optional[SelectionFunction] = None,
        predicate: Optional[ValidityPredicate] = None,
        genesis: Optional[Block] = None,
    ) -> None:
        self._selection = selection if selection is not None else LongestChain()
        self._predicate = predicate if predicate is not None else AlwaysValid()
        self._genesis = genesis

    # -- AbstractDataType interface -----------------------------------------

    def initial_state(self) -> BTState:
        return BTState(
            tree=BlockTree(self._genesis),
            selection=self._selection,
            predicate=self._predicate,
        )

    def transition(self, state: BTState, symbol: InputSymbol) -> BTState:
        # Copy-discipline audit: only the accepted-append branch below may
        # copy the tree.  ``read()`` and a rejected ``append`` are identity
        # transitions and must return ``state`` itself (shared tree, no
        # copy) — tests pin this down via object identity.
        if symbol.name == READ:
            return state
        if symbol.name == APPEND:
            block = _as_block(symbol.argument)
            attached = self._attach_to_selected(state, block)
            if attached is None:
                return state
            new_tree = state.tree.copy()
            new_tree.append(attached)
            return replace(state, tree=new_tree)
        raise ValueError(f"unknown BT-ADT input symbol {symbol.name!r}")

    def output(self, state: BTState, symbol: InputSymbol) -> Any:
        if symbol.name == READ:
            return state.selected_chain()
        if symbol.name == APPEND:
            block = _as_block(symbol.argument)
            return self._attach_to_selected(state, block) is not None
        raise ValueError(f"unknown BT-ADT input symbol {symbol.name!r}")

    # -- helpers -------------------------------------------------------------

    def _attach_to_selected(self, state: BTState, block: Block) -> Optional[Block]:
        """Re-parent ``block`` under the tip of ``f(bt)`` and validate it.

        Returns the re-parented block when it is valid (``∈ B'``) with
        respect to the current tree, and ``None`` otherwise.  The append
        semantics of Definition 3.1 concatenate the new block to the
        *selected* chain, not to whatever parent the caller proposed.
        """
        tip = state.selected_chain().tip
        candidate = block.with_parent(tip.block_id)
        if state.predicate(candidate, state.tree):
            return candidate
        return None


class BlockTreeObject:
    """Stateful BT-ADT instance: the object programs actually use.

    Parameters
    ----------
    selection, predicate, genesis:
        The ADT parameters ``f``, ``P`` and the genesis block.
    recorder, process:
        When a :class:`repro.core.history.HistoryRecorder` and a process
        identifier are supplied, every ``append``/``read`` call is logged
        as an invocation/response event pair, which is how the concurrent
        histories consumed by :mod:`repro.core.consistency` are produced.
    """

    def __init__(
        self,
        selection: Optional[SelectionFunction] = None,
        predicate: Optional[ValidityPredicate] = None,
        genesis: Optional[Block] = None,
        recorder: Optional["HistoryRecorder"] = None,
        process: Optional[str] = None,
    ) -> None:
        self.selection = selection if selection is not None else LongestChain()
        self.predicate = predicate if predicate is not None else AlwaysValid()
        self.tree = BlockTree(genesis)
        self._recorder = recorder
        self._process = process

    # -- BT-ADT operations ---------------------------------------------------

    def append(self, block: Block) -> bool:
        """The ``append(b)`` operation: attach ``b`` to the selected chain.

        Returns ``True`` (and mutates the tree) iff the re-parented block
        satisfies the validity predicate.
        """
        op = self._invoke(APPEND, block)
        tip = self.read_quiet().tip
        candidate = block.with_parent(tip.block_id)
        ok = bool(self.predicate(candidate, self.tree))
        if ok:
            self.tree.append(candidate)
        self._respond(op, ok)
        return ok

    def read(self) -> Blockchain:
        """The ``read()`` operation: return ``{b0}⌢ f(bt)``."""
        op = self._invoke(READ, None)
        chain = self.read_quiet()
        self._respond(op, chain)
        return chain

    def read_quiet(self) -> Blockchain:
        """Evaluate the selection function without recording an event."""
        return self.selection(self.tree)

    # -- recording helpers ----------------------------------------------------

    def _invoke(self, name: str, argument: Any):
        if self._recorder is None:
            return None
        return self._recorder.invoke(self._process or "p?", name, argument)

    def _respond(self, op, output: Any) -> None:
        if self._recorder is not None and op is not None:
            self._recorder.respond(op, output)


def _as_block(argument: Any) -> Block:
    if isinstance(argument, Block):
        return argument
    raise TypeError(f"append expects a Block argument, got {type(argument)!r}")
