"""Validity predicates ``P : B -> {true, false}``.

The BT-ADT is parameterized by an application-dependent predicate ``P``
that singles out the valid blocks ``B' ⊆ B`` (Section 3.1).  The paper's
running example is Bitcoin's rule — "a block is considered valid if it can
be connected to the current blockchain and does not contain transactions
that double spend a previous transaction" — and the creation process that
*produces* valid blocks is abstracted away into the token oracle
(Section 3.2).

This module provides the predicate combinators the rest of the library
uses.  Predicates are plain callables ``(block, tree) -> bool``: passing
the tree lets structural predicates (parent linkage, height limits) be
expressed without a global registry, while content predicates simply
ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, Optional, Protocol, Set, Tuple, runtime_checkable

from repro.core.block import Block
from repro.core.blocktree import BlockTree

__all__ = [
    "ValidityPredicate",
    "AlwaysValid",
    "NeverValid",
    "ParentInTree",
    "MembershipValidity",
    "NoDoubleSpend",
    "TokenRequired",
    "CompositeValidity",
    "PredicateFromCallable",
    "bitcoin_validity",
]


@runtime_checkable
class ValidityPredicate(Protocol):
    """Protocol for the paper's predicate ``P``.

    ``predicate(block, tree)`` returns ``True`` iff ``block ∈ B'`` with
    respect to the current tree (some predicates are purely intrinsic and
    ignore ``tree``; passing it uniformly keeps the BT-ADT code simple).
    """

    def __call__(self, block: Block, tree: BlockTree) -> bool:
        """Decide whether ``block`` is valid."""
        ...


@dataclass(frozen=True)
class AlwaysValid:
    """``P(b) = ⊤`` for every block — the permissive baseline.

    Useful for exercising the raw BT-ADT semantics where, as the paper
    notes, "histories with no append operations are trivially admitted"
    and any block may enter the tree.
    """

    def __call__(self, block: Block, tree: BlockTree) -> bool:  # noqa: ARG002
        return True


@dataclass(frozen=True)
class NeverValid:
    """``P(b) = ⊥`` for every non-genesis block — for negative tests."""

    def __call__(self, block: Block, tree: BlockTree) -> bool:  # noqa: ARG002
        return block.is_genesis


@dataclass(frozen=True)
class ParentInTree:
    """Valid iff the block's parent is already a vertex of the tree.

    This is the structural half of the Bitcoin rule ("can be connected to
    the current blockchain").
    """

    def __call__(self, block: Block, tree: BlockTree) -> bool:
        if block.is_genesis:
            return True
        return block.parent_id in tree


@dataclass(frozen=True)
class MembershipValidity:
    """Valid iff the block identifier belongs to a fixed whitelist ``B'``.

    This is the most literal reading of the paper's countable set of valid
    blocks and is what the figure-level scenarios and several unit tests
    use to stage "invalid block" append attempts.
    """

    valid_ids: FrozenSet[str]

    @classmethod
    def of(cls, ids: Iterable[str]) -> "MembershipValidity":
        return cls(frozenset(ids))

    def __call__(self, block: Block, tree: BlockTree) -> bool:  # noqa: ARG002
        return block.is_genesis or block.block_id in self.valid_ids


@dataclass(frozen=True)
class NoDoubleSpend:
    """Valid iff the block spends no transaction already spent on its branch.

    Block payloads are interpreted as tuples of transaction identifiers;
    a block is invalid if any of its transactions already appears in one
    of its ancestors.  This is the content half of the Bitcoin rule.
    Transactions appearing on *other* branches do not invalidate the block
    (forks may temporarily double spend across branches — that is exactly
    the behaviour eventual consistency tolerates).
    """

    def __call__(self, block: Block, tree: BlockTree) -> bool:
        if block.is_genesis or not block.payload:
            return True
        if block.parent_id not in tree:
            # Cannot even locate the branch: defer to structural predicates.
            return True
        spent: Set[object] = set()
        cursor: Optional[str] = block.parent_id
        while cursor is not None:
            ancestor = tree.get(cursor)
            spent.update(ancestor.payload)
            cursor = ancestor.parent_id
        return not any(tx in spent for tx in block.payload)


@dataclass(frozen=True)
class TokenRequired:
    """Valid iff the block carries an oracle token.

    The refinement of Section 3.3 only ever appends blocks returned by
    ``getToken`` (which are valid by construction, ``b^{tkn_h} ∈ B'``).
    This predicate lets the plain BT-ADT enforce the same discipline when
    it is driven by a protocol model that uses the oracle.
    """

    def __call__(self, block: Block, tree: BlockTree) -> bool:  # noqa: ARG002
        return block.is_genesis or block.token is not None


@dataclass(frozen=True)
class PredicateFromCallable:
    """Adapter turning a bare callable into a named predicate object."""

    fn: Callable[[Block, BlockTree], bool]
    name: str = "custom"

    def __call__(self, block: Block, tree: BlockTree) -> bool:
        return self.fn(block, tree)


@dataclass(frozen=True)
class CompositeValidity:
    """Conjunction of several predicates (all must accept the block)."""

    predicates: Tuple[ValidityPredicate, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, *predicates: ValidityPredicate) -> "CompositeValidity":
        return cls(tuple(predicates))

    def __call__(self, block: Block, tree: BlockTree) -> bool:
        return all(p(block, tree) for p in self.predicates)


def bitcoin_validity() -> CompositeValidity:
    """The paper's Bitcoin example: connectable and double-spend free."""
    return CompositeValidity.of(ParentInTree(), NoDoubleSpend())
