"""Unit tests for the replica framework and run harness."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.core.history import EventKind
from repro.network.channels import SynchronousChannel
from repro.network.simulator import Network, Simulator
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import ProdigalOracle
from repro.protocols.base import BlockchainReplica, ReplicaConfig, RunResult, run_protocol
from repro.oracle.theta import ValidatedBlock


def _attached_replica(read_interval: float = 0.0) -> tuple[Network, BlockchainReplica]:
    network = Network(Simulator(), SynchronousChannel(seed=1))
    oracle = ProdigalOracle(tapes=TapeFamily())
    replica = BlockchainReplica("p0", oracle, ReplicaConfig(read_interval=read_interval))
    network.register(replica)
    return network, replica


class TestReplicaBasics:
    def test_local_read_records_event_and_returns_chain(self):
        network, replica = _attached_replica()
        chain = replica.local_read()
        assert chain.ids == (GENESIS_ID,)
        assert len(network.history().read_responses("p0")) == 1

    def test_make_candidate_extends_current_tip(self):
        _, replica = _attached_replica()
        candidate = replica.make_candidate(payload=("tx1",))
        assert candidate.parent_id == GENESIS_ID
        assert candidate.creator == "p0"

    def test_commit_local_block_updates_tree_and_records_events(self):
        network, replica = _attached_replica()
        block = replica.make_candidate()
        validated = ValidatedBlock(block=block.with_token("tkn_b0"), token="tkn_b0", parent_id=GENESIS_ID)
        assert replica.commit_local_block(validated)
        history = network.history()
        assert len(history.append_responses("p0", successful_only=True)) == 1
        assert len(history.replication_events(EventKind.UPDATE)) == 1
        assert len(history.replication_events(EventKind.SEND)) == 1
        assert replica.blocks_created == 1

    def test_adopt_block_with_known_parent(self):
        network, replica = _attached_replica()
        foreign = Block("f1", GENESIS_ID, creator="p9")
        assert replica.adopt_block(foreign)
        assert replica.blocks_adopted == 1
        assert len(network.history().replication_events(EventKind.UPDATE)) == 1

    def test_adopt_block_twice_is_noop(self):
        _, replica = _attached_replica()
        foreign = Block("f1", GENESIS_ID, creator="p9")
        assert replica.adopt_block(foreign)
        assert not replica.adopt_block(foreign)

    def test_orphans_are_buffered_until_parent_arrives(self):
        _, replica = _attached_replica()
        child = Block("child", "parent", creator="p9")
        parent = Block("parent", GENESIS_ID, creator="p9")
        assert not replica.adopt_block(child)  # parked
        assert replica.adopt_block(parent)
        assert "child" in replica.tree  # flushed automatically

    def test_periodic_reads_follow_interval(self):
        network, replica = _attached_replica(read_interval=2.0)
        network.start()
        network.simulator.run(until=7.0)
        assert len(network.history().read_responses("p0")) == 3

    def test_stop_production_halts_periodic_reads(self):
        network, replica = _attached_replica(read_interval=2.0)
        network.start()
        network.simulator.run(until=3.0)
        replica.stop_production()
        network.simulator.run(until=20.0)
        assert len(network.history().read_responses("p0")) == 1


class TestRunHarness:
    def _factory(self, pid, oracle, network):  # noqa: ARG002
        return BlockchainReplica(pid, oracle, ReplicaConfig(read_interval=5.0))

    def test_run_protocol_produces_history_and_final_reads(self):
        oracle = ProdigalOracle(tapes=TapeFamily())
        result = run_protocol("noop", self._factory, oracle, n=3, duration=20.0)
        assert isinstance(result, RunResult)
        assert len(result.replicas) == 3
        # Periodic reads plus one final read per replica.
        assert len(result.history.read_responses()) >= 3
        assert set(result.final_chains()) == {"p0", "p1", "p2"}

    def test_run_without_final_reads(self):
        oracle = ProdigalOracle(tapes=TapeFamily())
        result = run_protocol(
            "noop", self._factory, oracle, n=2, duration=10.0, final_reads=False
        )
        reads_per_process = {
            pid: len(result.history.read_responses(pid)) for pid in result.replicas
        }
        assert all(count == 2 for count in reads_per_process.values())

    def test_correct_replicas_and_creator_map(self):
        oracle = ProdigalOracle(tapes=TapeFamily())
        result = run_protocol("noop", self._factory, oracle, n=2, duration=5.0)
        assert set(result.correct_replicas) == {"p0", "p1"}
        assert result.block_creators() == {}  # nobody mined anything
