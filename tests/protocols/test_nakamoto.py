"""Unit tests for the Bitcoin / Nakamoto proof-of-work model."""

from __future__ import annotations

import math

import pytest

from repro.core.consistency import check_eventual_consistency
from repro.core.selection import LongestChain
from repro.network.channels import LossyChannel, SynchronousChannel
from repro.network.update_agreement import check_update_agreement
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.protocols.nakamoto import run_bitcoin
from repro.workload.merit import zipf_merit


@pytest.fixture(scope="module")
def bitcoin_run():
    """A moderately fork-prone Bitcoin run shared by the read-only tests."""
    return run_bitcoin(n=5, duration=150.0, token_rate=0.3, seed=11,
                       channel=SynchronousChannel(delta=2.0, seed=11))


class TestBitcoinRun:
    def test_blocks_are_produced(self, bitcoin_run):
        assert sum(r.blocks_created for r in bitcoin_run.replicas.values()) > 5

    def test_oracle_is_prodigal(self, bitcoin_run):
        assert bitcoin_run.oracle.k == math.inf
        assert check_fork_coherence_from_oracle(bitcoin_run.oracle).holds

    def test_replicas_converge_after_drain(self, bitcoin_run):
        views = bitcoin_run.final_chains()
        tips = {chain.tip.block_id for chain in views.values()}
        assert len(tips) == 1

    def test_history_satisfies_eventual_consistency(self, bitcoin_run):
        history = bitcoin_run.history.without_failed_appends()
        assert check_eventual_consistency(history).holds

    def test_update_agreement_holds_under_reliable_channels(self, bitcoin_run):
        result = check_update_agreement(
            bitcoin_run.history,
            processes=bitcoin_run.correct_replicas,
            block_creators=bitcoin_run.block_creators(),
        )
        assert result.holds

    def test_read_workload_recorded(self, bitcoin_run):
        assert len(bitcoin_run.history.read_responses()) >= len(bitcoin_run.replicas)


class TestBitcoinVariants:
    def test_merit_concentration_skews_block_production(self):
        merit = zipf_merit(4, exponent=2.0)
        run = run_bitcoin(n=4, duration=150.0, token_rate=0.4, merit=merit, seed=5)
        created = {pid: r.blocks_created for pid, r in run.replicas.items()}
        # The highest-merit process (p0) should out-produce the weakest (p3).
        assert created["p0"] >= created["p3"]

    def test_longest_chain_selection_can_be_configured(self):
        run = run_bitcoin(n=3, duration=60.0, token_rate=0.3, selection=LongestChain(), seed=2)
        assert all(
            isinstance(r.config.selection, LongestChain) for r in run.replicas.values()
        )

    def test_lossy_channel_breaks_convergence(self):
        lossy = LossyChannel(SynchronousChannel(delta=1.0, seed=3), 0.9, seed=3)
        run = run_bitcoin(
            n=4, duration=150.0, token_rate=0.4, seed=3, channel=lossy, use_lrc=False
        )
        result = check_update_agreement(
            run.history,
            processes=run.correct_replicas,
            block_creators=run.block_creators(),
        )
        # With 90% loss and no relay, some update never reaches someone.
        assert not result.r3_holds

    def test_invalid_mining_interval_rejected(self):
        with pytest.raises(ValueError):
            run_bitcoin(n=2, duration=10.0, mining_interval=0.0)
