"""Fault-injection tests: crashes and silent Byzantine replicas."""

from __future__ import annotations

import pytest

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.protocols.faults import (
    run_bitcoin_with_crashes,
    run_committee_with_byzantine,
)


class TestCrashFaults:
    @pytest.fixture(scope="class")
    def crash_run(self):
        return run_bitcoin_with_crashes(
            n=5, duration=120.0, token_rate=0.3, seed=17, crash_at={"p4": 30.0}
        )

    def test_crashed_replica_is_not_correct(self, crash_run):
        assert "p4" not in crash_run.correct_replicas
        assert not crash_run.replicas["p4"].alive

    def test_crashed_replica_stops_producing(self, crash_run):
        # p4 could only mine during its first 30 time units.
        survivors = [r.blocks_created for pid, r in crash_run.replicas.items() if pid != "p4"]
        assert crash_run.replicas["p4"].blocks_created <= max(survivors)

    def test_correct_replicas_still_eventually_consistent(self, crash_run):
        history = crash_run.history.correct_restriction(crash_run.correct_replicas)
        assert check_eventual_consistency(history.without_failed_appends()).holds

    def test_correct_replicas_converge(self, crash_run):
        views = {
            pid: chain
            for pid, chain in crash_run.final_chains().items()
            if pid in crash_run.correct_replicas
        }
        tips = {chain.tip.block_id for chain in views.values()}
        assert len(tips) == 1

    def test_crash_time_validation(self):
        with pytest.raises(ValueError):
            run_bitcoin_with_crashes(n=3, duration=10.0, crash_at={"p0": -1.0})


class TestByzantineFaults:
    @pytest.fixture(scope="class")
    def byzantine_run(self):
        # n = 7, f = 2 silent members: quorum (floor(14/3)+1 = 5) still reachable.
        return run_committee_with_byzantine(
            n=7, duration=120.0, seed=19, byzantine=("p5", "p6")
        )

    def test_byzantine_replicas_flagged(self, byzantine_run):
        assert set(byzantine_run.correct_replicas) == {f"p{i}" for i in range(5)}
        assert byzantine_run.replicas["p5"].byzantine

    def test_blocks_are_still_committed(self, byzantine_run):
        committed = sum(
            byzantine_run.replicas[pid].blocks_committed
            for pid in byzantine_run.correct_replicas
        )
        assert committed > 0

    def test_correct_replicas_remain_strongly_consistent(self, byzantine_run):
        history = byzantine_run.history.correct_restriction(byzantine_run.correct_replicas)
        assert check_strong_consistency(history.without_failed_appends()).holds

    def test_no_block_is_created_by_a_byzantine_member(self, byzantine_run):
        creators = {
            b.creator
            for pid in byzantine_run.correct_replicas
            for b in byzantine_run.replicas[pid].tree
            if not b.is_genesis
        }
        assert creators.isdisjoint({"p5", "p6"})

    def test_too_many_byzantine_members_halt_progress(self):
        # f = 4 of 7 silent members: the 5-vote quorum can never be formed.
        run = run_committee_with_byzantine(
            n=7, duration=80.0, seed=20, byzantine=("p3", "p4", "p5", "p6")
        )
        committed = sum(r.blocks_committed for r in run.replicas.values())
        assert committed == 0

    def test_unknown_byzantine_name_rejected(self):
        with pytest.raises(ValueError):
            run_committee_with_byzantine(n=3, duration=10.0, byzantine=("ghost",))
