"""Tests for the five strongly consistent system models of Table 1."""

from __future__ import annotations

import pytest

from repro.core.consistency import check_strong_consistency
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.protocols.algorand import default_stake, run_algorand
from repro.protocols.byzcoin import run_byzcoin
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.peercensus import run_peercensus
from repro.protocols.redbelly import run_redbelly

RUNNERS = {
    "byzcoin": run_byzcoin,
    "algorand": run_algorand,
    "peercensus": run_peercensus,
    "redbelly": run_redbelly,
    "hyperledger": run_hyperledger,
}


@pytest.fixture(scope="module")
def system_runs():
    """One modest run per system, shared by the read-only assertions."""
    return {name: runner(n=5, duration=80.0, seed=13) for name, runner in RUNNERS.items()}


@pytest.mark.parametrize("name", sorted(RUNNERS))
class TestStrongSystems:
    def test_run_produces_blocks(self, system_runs, name):
        run = system_runs[name]
        total = sum(r.blocks_committed for r in run.replicas.values())
        assert total > 0

    def test_oracle_is_frugal_k1_and_fork_coherent(self, system_runs, name):
        run = system_runs[name]
        assert run.oracle.k == 1
        assert check_fork_coherence_from_oracle(run.oracle).holds

    def test_history_is_strongly_consistent(self, system_runs, name):
        run = system_runs[name]
        assert check_strong_consistency(run.history.without_failed_appends()).holds

    def test_replicas_agree_on_a_single_chain(self, system_runs, name):
        run = system_runs[name]
        views = run.final_chains()
        reference = next(iter(views.values()))
        for view in views.values():
            assert view.is_prefix_of(reference) or reference.is_prefix_of(view)

    def test_trees_are_fork_free(self, system_runs, name):
        run = system_runs[name]
        for replica in run.replicas.values():
            assert replica.tree.max_fork_degree() <= 1


class TestSystemSpecifics:
    def test_hyperledger_blocks_come_from_the_orderer(self, system_runs):
        run = system_runs["hyperledger"]
        creators = {
            b.creator
            for r in run.replicas.values()
            for b in r.tree
            if not b.is_genesis
        }
        assert creators == {"p0"}

    def test_redbelly_writers_are_a_strict_subset(self, system_runs):
        run = system_runs["redbelly"]
        creators = {
            b.creator
            for r in run.replicas.values()
            for b in r.tree
            if not b.is_genesis
        }
        assert creators and creators < set(run.replicas)

    def test_algorand_default_stake_is_normalized_and_skewed(self):
        stake = default_stake(5)
        merits = [stake.merit_of(f"p{i}") for i in range(5)]
        assert sum(merits) == pytest.approx(1.0)
        assert merits[4] > merits[0]

    def test_byzcoin_and_peercensus_rotate_proposers(self, system_runs):
        # PoW-lottery proposers: over a run, more than one process creates blocks.
        for name in ("byzcoin", "peercensus"):
            run = system_runs[name]
            creators = {
                b.creator
                for r in run.replicas.values()
                for b in r.tree
                if not b.is_genesis
            }
            assert len(creators) >= 2

    def test_hyperledger_payloads_respect_block_size(self, system_runs):
        run = system_runs["hyperledger"]
        sizes = {
            len(b.payload)
            for r in run.replicas.values()
            for b in r.tree
            if not b.is_genesis
        }
        assert sizes == {6}
