"""Tests for the run classifier and the Table 1 reproduction."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import Consistency, OracleKind, Refinement
from repro.protocols.classification import (
    PAPER_TABLE1,
    classify_run,
    reproduce_table1,
)
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.nakamoto import run_bitcoin
from repro.network.channels import SynchronousChannel
from repro.analysis.report import render_classification_table


class TestClassifyRun:
    def test_hyperledger_classifies_as_sc_frugal1(self):
        run = run_hyperledger(n=5, duration=80.0, seed=21)
        result = classify_run(run)
        assert result.refinement == Refinement.sc_frugal(1)
        assert result.matches_paper is True

    def test_bitcoin_in_fork_prone_regime_classifies_as_ec_prodigal(self):
        run = run_bitcoin(
            n=5, duration=150.0, token_rate=0.4, seed=21,
            channel=SynchronousChannel(delta=3.0, min_delay=0.5, seed=21),
        )
        result = classify_run(run)
        assert result.consistency == Consistency.EVENTUAL
        assert result.oracle_kind == OracleKind.PRODIGAL
        assert result.matches_paper is True

    def test_describe_mentions_refinement_and_expectation(self):
        run = run_hyperledger(n=4, duration=60.0, seed=5)
        text = classify_run(run).describe()
        assert "R(BT-ADT_SC" in text
        assert "matches paper" in text

    def test_expected_defaults_to_paper_table(self):
        run = run_hyperledger(n=4, duration=60.0, seed=5)
        result = classify_run(run)
        assert result.expected == PAPER_TABLE1["hyperledger"]

    def test_unknown_system_has_no_expectation(self):
        run = run_hyperledger(n=4, duration=60.0, seed=5)
        run.name = "my-new-chain"
        result = classify_run(run)
        assert result.expected is None
        assert result.matches_paper is None


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return reproduce_table1(n=5, duration=100.0, seed=7)

    def test_all_seven_systems_are_classified(self, table):
        assert set(table) == set(PAPER_TABLE1)

    def test_every_system_matches_the_paper(self, table):
        mismatches = {name: r for name, r in table.items() if r.matches_paper is not True}
        assert not mismatches, f"classification mismatches: {list(mismatches)}"

    def test_pow_systems_are_ec_and_consensus_systems_are_sc(self, table):
        assert table["bitcoin"].consistency == Consistency.EVENTUAL
        assert table["ethereum"].consistency == Consistency.EVENTUAL
        for name in ("byzcoin", "algorand", "peercensus", "redbelly", "hyperledger"):
            assert table[name].consistency == Consistency.STRONG

    def test_rendered_table_lists_every_system(self, table):
        text = render_classification_table(table)
        for name in PAPER_TABLE1:
            assert name in text
        assert "Table 1" in text
