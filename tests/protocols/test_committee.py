"""Unit tests for the committee/consensus engine."""

from __future__ import annotations

import pytest

from repro.core.consistency import check_strong_consistency
from repro.protocols.committee import (
    CommitteeConfig,
    fixed_proposer,
    round_robin_proposer,
    run_committee_protocol,
    weighted_lottery_proposer,
)
from repro.oracle.theta import ProdigalOracle
from repro.protocols.base import ReplicaConfig
from repro.protocols.committee import CommitteeReplica
from repro.workload.merit import permissioned_merit, uniform_merit


class TestProposerStrategies:
    def test_round_robin_cycles_through_committee(self):
        strategy = round_robin_proposer(("a", "b", "c"))
        assert [strategy(r) for r in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_round_robin_requires_members(self):
        with pytest.raises(ValueError):
            round_robin_proposer(())

    def test_fixed_proposer_is_constant(self):
        strategy = fixed_proposer("leader")
        assert {strategy(r) for r in range(10)} == {"leader"}

    def test_weighted_lottery_is_deterministic_per_round(self):
        merit = uniform_merit(4)
        s1 = weighted_lottery_proposer(merit, seed=3)
        s2 = weighted_lottery_proposer(merit, seed=3)
        assert [s1(r) for r in range(20)] == [s2(r) for r in range(20)]

    def test_weighted_lottery_prefers_high_merit(self):
        merit = permissioned_merit(["whale"], readers=["minnow"])
        strategy = weighted_lottery_proposer(merit, seed=1, committee=("whale", "minnow"))
        picks = [strategy(r) for r in range(50)]
        assert picks.count("whale") > picks.count("minnow")

    def test_weighted_lottery_requires_candidates(self):
        with pytest.raises(ValueError):
            weighted_lottery_proposer(uniform_merit(2), committee=())


class TestCommitteeConfig:
    def test_quorum_is_a_two_thirds_majority(self):
        config = CommitteeConfig(committee=tuple(f"p{i}" for i in range(7)),
                                 proposer_strategy=fixed_proposer("p0"))
        assert config.quorum() == 5

    def test_quorum_for_small_committee(self):
        config = CommitteeConfig(committee=("a",), proposer_strategy=fixed_proposer("a"))
        assert config.quorum() == 1


class TestCommitteeReplica:
    def test_requires_fork_free_oracle(self):
        config = CommitteeConfig(committee=("p0",), proposer_strategy=fixed_proposer("p0"))
        with pytest.raises(ValueError):
            CommitteeReplica("p0", ProdigalOracle(), ReplicaConfig(), config)


class TestCommitteeRuns:
    def test_round_robin_run_is_strongly_consistent(self):
        result = run_committee_protocol("generic-bft", n=5, duration=80.0, seed=4)
        history = result.history.without_failed_appends()
        assert check_strong_consistency(history).holds

    def test_all_replicas_commit_the_same_chain(self):
        result = run_committee_protocol("generic-bft", n=5, duration=80.0, seed=4)
        views = result.final_chains()
        reference = next(iter(views.values()))
        assert all(v.ids == reference.ids for v in views.values())

    def test_single_chain_no_forks(self):
        result = run_committee_protocol("generic-bft", n=5, duration=80.0, seed=4)
        for replica in result.replicas.values():
            assert replica.tree.max_fork_degree() <= 1

    def test_committee_subset_restricts_block_creators(self):
        committee = ("p0", "p1")
        result = run_committee_protocol(
            "consortium", n=5, duration=80.0, committee=committee, seed=4
        )
        creators = {b.creator for r in result.replicas.values() for b in r.tree if not b.is_genesis}
        assert creators <= set(committee)

    def test_blocks_carry_transaction_payloads(self):
        result = run_committee_protocol("generic-bft", n=4, duration=60.0, seed=9,
                                        transactions_per_block=3)
        payloads = [
            b.payload
            for r in result.replicas.values()
            for b in r.tree
            if not b.is_genesis
        ]
        assert payloads and all(len(p) == 3 for p in payloads)
