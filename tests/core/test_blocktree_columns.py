"""Columnar block index vs the retained dict index (PR 10 oracle).

``BlockTree`` now maintains its score indexes (heights, cumulative and
subtree weights) on preallocated numpy columns maintained by the
compiled callback plane's ``tree_append_index`` hot path; the pre-PR10
per-block dicts are retained verbatim behind ``index="reference"``.
These tests pin the two modes to each other on randomized fork-heavy
trees — every query, every selection rule, bit-identical floats — and
pin the new columns through the checkpoint boundary (pickle) and
``copy()``.
"""

from __future__ import annotations

import pickle
import random

import pytest

import repro.core.blocktree as blocktree_module
from repro.core.block import GENESIS_ID, Block
from repro.core.blocktree import BlockTree
from repro.core.selection import GHOSTSelection, HeaviestChain, LongestChain

RULES = (LongestChain(), HeaviestChain(), GHOSTSelection())


def _grow_pair(seed: int, blocks: int = 120):
    """Grow one random fork-heavy tree under both index modes."""
    rng = random.Random(seed)
    columns = BlockTree(index="columns")
    reference = BlockTree(index="reference")
    ids = [GENESIS_ID]
    for i in range(blocks):
        parent = rng.choice(ids[-8:] if rng.random() < 0.7 else ids)
        block_id = f"x{i}"
        weight = rng.choice((0.5, 1.0, 1.0, 2.5))
        columns.append(Block(block_id, parent, weight=weight))
        reference.append(Block(block_id, parent, weight=weight))
        ids.append(block_id)
    return columns, reference, ids


@pytest.mark.parametrize("seed", (1, 7, 23))
def test_columns_match_reference_queries(seed: int):
    columns, reference, ids = _grow_pair(seed)
    assert columns.leaves() == reference.leaves()
    assert columns.height == reference.height
    for block_id in ids:
        assert columns.height_of(block_id) == reference.height_of(block_id)
        # Bit-identical floats: the columnar maintenance performs the
        # same IEEE additions in the same order as the dict walk.
        assert columns.cumulative_weight(block_id) == reference.cumulative_weight(block_id)
        assert columns.subtree_weight(block_id) == reference.subtree_weight(block_id)


@pytest.mark.parametrize("seed", (1, 7, 23))
def test_columns_match_reference_selection(seed: int):
    columns, reference, _ = _grow_pair(seed)
    for rule in RULES:
        assert rule(columns).ids == rule(reference).ids


def test_default_index_is_columns_and_switchable():
    assert blocktree_module.DEFAULT_INDEX == "columns"
    assert BlockTree()._columns is not None
    previous = blocktree_module.DEFAULT_INDEX
    blocktree_module.DEFAULT_INDEX = "reference"
    try:
        assert BlockTree()._columns is None
    finally:
        blocktree_module.DEFAULT_INDEX = previous
    with pytest.raises(ValueError):
        BlockTree(index="btree")


@pytest.mark.parametrize("seed", (1, 23))
def test_columns_survive_pickle_roundtrip(seed: int):
    """Checkpoints capture and restore the new index columns."""
    columns, reference, ids = _grow_pair(seed)
    restored = pickle.loads(pickle.dumps(columns))
    assert restored._columns is not None
    assert restored.leaves() == columns.leaves()
    for block_id in ids:
        assert restored.height_of(block_id) == columns.height_of(block_id)
        assert restored.cumulative_weight(block_id) == columns.cumulative_weight(block_id)
        assert restored.subtree_weight(block_id) == columns.subtree_weight(block_id)
    for rule in RULES:
        assert rule(restored).ids == rule(columns).ids
    # The restored tree keeps growing identically on both planes.
    for i, tree in enumerate((restored, columns, reference)):
        tree.append(Block("post", "x0", weight=1.5))
    assert restored.subtree_weight(GENESIS_ID) == reference.subtree_weight(GENESIS_ID)
    assert restored.cumulative_weight("post") == reference.cumulative_weight("post")


def test_copy_isolates_columns():
    columns, _, _ = _grow_pair(5, blocks=40)
    clone = columns.copy()
    clone.append(Block("only-in-clone", "x0"))
    assert "only-in-clone" in clone
    assert "only-in-clone" not in columns
    assert clone.subtree_weight("x0") != columns.subtree_weight("x0")


def test_pre_columns_checkpoint_restores_in_reference_mode():
    """Snapshots taken before the columnar index existed keep working."""
    reference = BlockTree(index="reference")
    reference.append(Block("x", GENESIS_ID))
    state = reference.__dict__.copy()
    state.pop("_columns")
    old = BlockTree.__new__(BlockTree)
    old.__setstate__(state)
    assert old._columns is None
    assert old.height_of("x") == 1
    old.append(Block("y", "x", weight=2.0))
    assert old.cumulative_weight("y") == 3.0
