"""Streaming ConsistencyMonitor vs. the post-hoc checkers.

The monitor's contract: at any prefix of an execution its verdicts equal
the post-hoc checkers evaluated on the history recorded so far.  The
tests check that contract per event on generated histories, and at
end-of-run on real protocol executions including crash faults and
drop-heavy (partition-like) channels.
"""

from __future__ import annotations

import pytest

from repro.core.consistency import BTEventualConsistency, BTStrongConsistency
from repro.core.consistency_index import ConsistencyMonitor
from repro.core.history import History, HistoryRecorder
from repro.core.score import LengthScore, WeightScore
from repro.engine import ChannelSpec, ExperimentSpec, FaultSpec
from repro.workload.scenarios import (
    figure2_history,
    figure3_history,
    figure4_history,
    generate_chain_history,
    generate_forked_history,
)

from tests.core.test_consistency_equivalence import checker_config, random_history


def _assert_agreement(monitor, history, score, validator=None, stall_threshold=None):
    strong = BTStrongConsistency(score, validator, stall_threshold).check(history)
    eventual = BTEventualConsistency(score, validator, stall_threshold).check(history)
    verdicts = monitor.property_verdicts()
    by_name = {r.name: r.holds for r in strong.results + eventual.results}
    for name, holds in by_name.items():
        assert verdicts[name] == holds, (
            f"{name}: monitor={verdicts[name]} post-hoc={holds}"
        )
    assert monitor.strong_holds() == strong.holds
    assert monitor.eventual_holds() == eventual.holds


class TestReplayAgreement:
    @pytest.mark.parametrize(
        "history_factory",
        [
            figure2_history,
            figure3_history,
            figure4_history,
            lambda: generate_chain_history(4, 18, 8, seed=11),
            lambda: generate_forked_history(7, resolve=True, seed=3),
            lambda: generate_forked_history(7, resolve=False, seed=3),
        ],
    )
    def test_scenarios(self, history_factory):
        history = history_factory()
        for score in (LengthScore(), WeightScore()):
            monitor = ConsistencyMonitor(score=score).replay(history)
            _assert_agreement(monitor, history, score)

    @pytest.mark.parametrize("seed", range(0, 200, 4))
    def test_random_histories(self, seed):
        history, bad_ids = random_history(seed)
        score, stall_threshold, _ = checker_config(seed)
        validator = (lambda block: block.block_id not in bad_ids) if bad_ids else None
        monitor = ConsistencyMonitor(score, validator, stall_threshold).replay(history)
        _assert_agreement(monitor, history, score, validator, stall_threshold)

    @pytest.mark.parametrize("seed", range(0, 60, 4))
    def test_every_prefix(self, seed):
        """The strong form: agreement after *each* event, not just at the end."""
        history, bad_ids = random_history(seed)
        score, stall_threshold, _ = checker_config(seed)
        validator = (lambda block: block.block_id not in bad_ids) if bad_ids else None
        monitor = ConsistencyMonitor(score, validator, stall_threshold)
        events = list(history)
        for k, event in enumerate(events, start=1):
            monitor.observe(event)
            prefix = History(events[:k])
            _assert_agreement(monitor, prefix, score, validator, stall_threshold)


class TestLiveRecording:
    def test_attach_sees_recorder_events(self):
        recorder = HistoryRecorder()
        monitor = ConsistencyMonitor().attach(recorder)
        reference = figure3_history()
        for event in reference:
            if event.is_append_invocation:
                recorder.complete(event.process, "append", event.argument, True)
            elif event.is_read_response:
                recorder.complete(event.process, "read", None, event.output)
        history = recorder.history()
        assert monitor.events_seen == len(history)
        _assert_agreement(monitor, history, LengthScore())


class TestProtocolRuns:
    """End-of-run agreement on real protocol executions (raw history)."""

    def _check(self, spec: ExperimentSpec):
        record = spec.with_updates(monitor=True).execute()
        assert record.consistency is not None
        run = record.run
        assert run is not None and run.monitor is not None
        _assert_agreement(run.monitor, run.history, spec.build_score())
        # The serialized summary mirrors the live monitor.
        assert record.consistency["strong"] == run.monitor.strong_holds()
        assert record.consistency["eventual"] == run.monitor.eventual_holds()

    def test_fork_prone_bitcoin(self):
        self._check(
            ExperimentSpec(
                protocol="bitcoin",
                replicas=4,
                duration=40.0,
                seed=7,
                channel=ChannelSpec(
                    kind="synchronous", params={"delta": 3.0, "min_delay": 0.5}
                ),
                params={"token_rate": 0.4},
            )
        )

    def test_strongly_consistent_hyperledger(self):
        self._check(
            ExperimentSpec(protocol="hyperledger", replicas=4, duration=40.0, seed=3)
        )

    def test_crash_fault(self):
        self._check(
            ExperimentSpec(
                protocol="bitcoin",
                replicas=4,
                duration=40.0,
                seed=5,
                fault=FaultSpec(kind="crash", crash_at={"p1": 12.0}),
                params={"token_rate": 0.3},
            )
        )

    def test_drop_heavy_partition(self):
        self._check(
            ExperimentSpec(
                protocol="bitcoin",
                replicas=4,
                duration=40.0,
                seed=9,
                channel=ChannelSpec(
                    kind="synchronous",
                    params={"delta": 1.0},
                    drop_probability=0.45,
                ),
                params={"token_rate": 0.4},
            )
        )
