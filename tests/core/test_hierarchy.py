"""Unit tests for the refinement hierarchy (Figures 8 and 14)."""

from __future__ import annotations

import math

import pytest

from repro.core.hierarchy import (
    Consistency,
    OracleKind,
    Refinement,
    consensus_number,
    is_weaker_or_equal,
    message_passing_hierarchy,
    refinement_hierarchy,
)


class TestRefinement:
    def test_constructors(self):
        assert Refinement.sc_frugal(1).k == 1
        assert Refinement.ec_prodigal().oracle == OracleKind.PRODIGAL
        assert Refinement.sc_prodigal().consistency == Consistency.STRONG

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Refinement("XX", OracleKind.FRUGAL, 1)
        with pytest.raises(ValueError):
            Refinement(Consistency.STRONG, "magic", 1)
        with pytest.raises(ValueError):
            Refinement(Consistency.STRONG, OracleKind.FRUGAL, 0)
        with pytest.raises(ValueError):
            Refinement(Consistency.STRONG, OracleKind.PRODIGAL, 3)

    def test_allows_forks(self):
        assert not Refinement.sc_frugal(1).allows_forks
        assert Refinement.sc_frugal(2).allows_forks
        assert Refinement.ec_prodigal().allows_forks

    def test_message_passing_implementability(self):
        # Theorem 4.8: SC with a fork-allowing oracle is impossible.
        assert Refinement.sc_frugal(1).message_passing_implementable
        assert not Refinement.sc_frugal(2).message_passing_implementable
        assert not Refinement.sc_prodigal().message_passing_implementable
        assert Refinement.ec_prodigal().message_passing_implementable
        assert Refinement.ec_frugal(4).message_passing_implementable

    def test_labels_match_paper_notation(self):
        assert Refinement.sc_frugal(1).label() == "R(BT-ADT_SC, Θ_F,k=1)"
        assert Refinement.ec_prodigal().label() == "R(BT-ADT_EC, Θ_P)"


class TestStrengthRelation:
    def test_sc_stronger_than_ec_same_oracle(self):
        assert is_weaker_or_equal(Refinement.ec_frugal(1), Refinement.sc_frugal(1))
        assert not is_weaker_or_equal(Refinement.sc_frugal(1), Refinement.ec_frugal(1))

    def test_smaller_k_is_stronger(self):
        assert is_weaker_or_equal(Refinement.ec_frugal(4), Refinement.ec_frugal(2))
        assert not is_weaker_or_equal(Refinement.ec_frugal(2), Refinement.ec_frugal(4))

    def test_prodigal_is_weakest_oracle(self):
        assert is_weaker_or_equal(Refinement.ec_prodigal(), Refinement.ec_frugal(3))
        assert not is_weaker_or_equal(Refinement.ec_frugal(3), Refinement.ec_prodigal())

    def test_relation_is_reflexive(self):
        for refinement in (Refinement.sc_frugal(1), Refinement.ec_prodigal()):
            assert is_weaker_or_equal(refinement, refinement)

    def test_strongest_vertex_dominates_everything(self):
        strongest = Refinement.sc_frugal(1)
        for vertex in refinement_hierarchy():
            assert is_weaker_or_equal(vertex, strongest)


class TestConsensusNumbers:
    def test_frugal_k1_has_infinite_consensus_number(self):
        assert consensus_number(Refinement.sc_frugal(1)) == math.inf
        assert consensus_number(OracleKind.FRUGAL, k=1) == math.inf

    def test_prodigal_has_consensus_number_one(self):
        assert consensus_number(Refinement.ec_prodigal()) == 1
        assert consensus_number(OracleKind.PRODIGAL) == 1

    def test_fork_allowing_frugal_is_also_one(self):
        assert consensus_number(OracleKind.FRUGAL, k=3) == 1


class TestHierarchyGraphs:
    def test_full_hierarchy_has_six_vertices(self):
        hierarchy = refinement_hierarchy()
        assert len(hierarchy) == 6

    def test_edges_follow_strength(self):
        hierarchy = refinement_hierarchy()
        for stronger, weaker_set in hierarchy.items():
            for weaker in weaker_set:
                assert is_weaker_or_equal(weaker, stronger)
                assert weaker != stronger

    def test_figure8_key_edges_present(self):
        hierarchy = refinement_hierarchy()
        strongest = Refinement.sc_frugal(1)
        assert Refinement.ec_frugal(1) in hierarchy[strongest]
        assert Refinement.sc_frugal(2) in hierarchy[strongest]
        assert Refinement.ec_prodigal() in hierarchy[strongest]

    def test_message_passing_hierarchy_removes_impossible_vertices(self):
        mp = message_passing_hierarchy()
        assert len(mp) == 4
        assert Refinement.sc_prodigal() not in mp
        assert Refinement.sc_frugal(2) not in mp
        assert Refinement.sc_frugal(1) in mp

    def test_message_passing_edges_only_point_to_feasible_vertices(self):
        mp = message_passing_hierarchy()
        for targets in mp.values():
            for target in targets:
                assert target in mp

    def test_custom_k_values(self):
        hierarchy = refinement_hierarchy(k_values=(1, 2, 4))
        assert len(hierarchy) == 8  # (2 consistencies) x (3 frugal + 1 prodigal)
