"""Unit tests for concurrent histories and the recorder (Definition 2.4)."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.core.history import Event, EventKind, History, HistoryRecorder


@pytest.fixture()
def sample_history() -> History:
    rec = HistoryRecorder()
    block = Block("x", GENESIS_ID)
    append_token = rec.invoke("i", "append", block)
    rec.respond(append_token, True)
    read_token = rec.invoke("j", "read", None)
    from repro.core.block import GENESIS, Blockchain

    rec.respond(read_token, Blockchain((GENESIS, block)))
    rec.send("i", GENESIS_ID, "x")
    rec.receive("j", GENESIS_ID, "x")
    rec.update("j", GENESIS_ID, "x")
    return rec.history()


class TestRecorder:
    def test_timestamps_strictly_increase(self, sample_history):
        eids = [e.eid for e in sample_history]
        assert eids == sorted(eids)
        assert len(set(eids)) == len(eids)

    def test_per_process_sequence_numbers(self, sample_history):
        for process in sample_history.processes:
            seqs = [e.seq for e in sample_history.events_of(process)]
            assert seqs == sorted(seqs)

    def test_complete_records_both_events(self):
        rec = HistoryRecorder()
        rec.complete("p", "read", None, "out")
        history = rec.history()
        assert len(history) == 2
        assert history[0].kind is EventKind.INVOCATION
        assert history[1].kind is EventKind.RESPONSE
        assert history[0].op_id == history[1].op_id

    def test_len_tracks_recorded_events(self):
        rec = HistoryRecorder()
        rec.send("p", "b0", "x")
        assert len(rec) == 1


class TestSelectors:
    def test_read_responses_and_invocations(self, sample_history):
        assert len(sample_history.read_responses()) == 1
        assert len(sample_history.read_invocations()) == 1
        assert len(sample_history.read_responses("i")) == 0

    def test_append_selectors(self, sample_history):
        assert len(sample_history.append_invocations()) == 1
        assert len(sample_history.append_responses(successful_only=True)) == 1

    def test_replication_event_selector(self, sample_history):
        assert len(sample_history.replication_events(EventKind.SEND)) == 1
        assert len(sample_history.replication_events(EventKind.RECEIVE)) == 1
        assert len(sample_history.replication_events(EventKind.UPDATE)) == 1
        with pytest.raises(ValueError):
            sample_history.replication_events(EventKind.RESPONSE)

    def test_chain_accessor_on_read_response(self, sample_history):
        read = sample_history.read_responses()[0]
        assert read.chain.ids == (GENESIS_ID, "x")

    def test_chain_accessor_rejects_other_events(self, sample_history):
        send = sample_history.replication_events(EventKind.SEND)[0]
        with pytest.raises(TypeError):
            _ = send.chain

    def test_matching_response_and_invocation(self, sample_history):
        inv = sample_history.append_invocations()[0]
        rsp = sample_history.matching_response(inv)
        assert rsp is not None and rsp.output is True
        assert sample_history.matching_invocation(rsp) == inv
        with pytest.raises(ValueError):
            sample_history.matching_response(rsp)
        with pytest.raises(ValueError):
            sample_history.matching_invocation(inv)


class TestOrders:
    def test_process_order_same_process_only(self, sample_history):
        events_i = sample_history.events_of("i")
        events_j = sample_history.events_of("j")
        assert sample_history.process_order(events_i[0], events_i[1])
        assert not sample_history.process_order(events_i[0], events_j[0])

    def test_operation_order_invocation_before_own_response(self, sample_history):
        inv = sample_history.append_invocations()[0]
        rsp = sample_history.matching_response(inv)
        assert sample_history.operation_order(inv, rsp)
        assert not sample_history.operation_order(rsp, inv)

    def test_operation_order_response_before_later_invocation(self, sample_history):
        append_rsp = sample_history.append_responses()[0]
        read_inv = sample_history.read_invocations()[0]
        assert sample_history.operation_order(append_rsp, read_inv)

    def test_program_order_is_union(self, sample_history):
        append_inv = sample_history.append_invocations()[0]
        append_rsp = sample_history.append_responses()[0]
        read_inv = sample_history.read_invocations()[0]
        assert sample_history.program_order(append_inv, append_rsp)
        assert sample_history.program_order(append_rsp, read_inv)
        assert not sample_history.program_order(append_inv, append_inv)

    def test_precedes_refines_program_order(self, sample_history):
        events = list(sample_history)
        for a in events:
            for b in events:
                if sample_history.program_order(a, b):
                    assert sample_history.precedes(a, b)


class TestComposition:
    def test_restricted_to(self, sample_history):
        only_i = sample_history.restricted_to(["i"])
        assert set(only_i.processes) == {"i"}

    def test_without_failed_appends(self):
        rec = HistoryRecorder()
        ok = Block("ok", GENESIS_ID)
        bad = Block("bad", GENESIS_ID)
        rec.complete("p", "append", ok, True)
        rec.complete("p", "append", bad, False)
        purged = rec.history().without_failed_appends()
        args = [e.argument.block_id for e in purged.append_invocations()]
        assert args == ["ok"]

    def test_merge_requires_distinct_event_ids(self, sample_history):
        with pytest.raises(ValueError):
            sample_history.merge(sample_history)

    def test_merge_of_disjoint_histories(self):
        rec1 = HistoryRecorder()
        rec1.complete("p", "read", None, None)
        extra = History(
            [
                Event(eid=100, kind=EventKind.SEND, process="q", operation="send", argument=("b0", "x")),
                Event(eid=101, kind=EventKind.SEND, process="q", operation="send", argument=("b0", "y")),
            ]
        )
        merged = rec1.history().merge(extra)
        assert len(merged) == 4
        assert set(merged.processes) == {"p", "q"}

    def test_empty_history(self):
        history = History()
        assert len(history) == 0
        assert history.processes == ()
        assert history.read_responses() == ()


class TestSelectorCaching:
    """read_responses / append_invocations are memoized on the History."""

    def test_cached_tuples_are_the_same_object(self, sample_history):
        assert sample_history.read_responses() is sample_history.read_responses()
        assert sample_history.append_invocations() is sample_history.append_invocations()
        assert sample_history.read_responses("j") is sample_history.read_responses("j")

    def test_cache_is_per_process_argument(self, sample_history):
        assert sample_history.read_responses() != sample_history.read_responses("i")
        assert sample_history.read_responses("i") == ()
        assert len(sample_history.read_responses("j")) == 1

    def test_cached_results_match_fresh_filtering(self, sample_history):
        expected_reads = tuple(e for e in sample_history if e.is_read_response)
        expected_appends = tuple(e for e in sample_history if e.is_append_invocation)
        assert sample_history.read_responses() == expected_reads
        assert sample_history.append_invocations() == expected_appends


class TestRecorderSubscription:
    def test_listener_sees_every_event_in_order(self):
        rec = HistoryRecorder()
        seen = []
        rec.subscribe(seen.append)
        block = Block("x", GENESIS_ID)
        rec.complete("i", "append", block, True)
        rec.send("i", GENESIS_ID, "x")
        token = rec.invoke("j", "read", None)
        rec.respond(token, None)
        assert [e.eid for e in seen] == [e.eid for e in rec.history()]
        assert [e.kind for e in seen] == [
            EventKind.INVOCATION,
            EventKind.RESPONSE,
            EventKind.SEND,
            EventKind.INVOCATION,
            EventKind.RESPONSE,
        ]

    def test_multiple_listeners(self):
        rec = HistoryRecorder()
        first, second = [], []
        rec.subscribe(first.append)
        rec.complete("i", "read", None, None)
        rec.subscribe(second.append)
        rec.complete("i", "read", None, None)
        assert len(first) == 4
        assert len(second) == 2


class TestSlottedEvents:
    """PR 4: the hot-path envelopes are slotted — no per-event __dict__."""

    def test_event_and_token_have_no_dict(self, sample_history):
        event = sample_history[0]
        assert not hasattr(event, "__dict__")
        recorder = HistoryRecorder()
        token = recorder.invoke("i", "read", None)
        assert not hasattr(token, "__dict__")

    def test_events_pickle_round_trip(self, sample_history):
        # Sweep workers ship results across process boundaries; slotted
        # frozen dataclasses must survive the trip.
        import pickle

        for event in sample_history:
            clone = pickle.loads(pickle.dumps(event))
            assert clone == event

    def test_message_is_slotted_too(self):
        from repro.network.simulator import Message

        message = Message("a", "b", "ping", None, 0.0)
        assert not hasattr(message, "__dict__")
        import pickle

        assert pickle.loads(pickle.dumps(message)) == message
