"""Randomized equivalence: index-backed selections vs. brute-force oracles.

The selection rules in :mod:`repro.core.selection` read incrementally
maintained per-leaf indexes instead of rematerializing every root-to-leaf
chain.  These tests pin down that the optimization is *behaviour-
preserving*: on hundreds of random trees — including tie-heavy trees,
where every branch has the same score and only the lexicographic
tie-break decides — each rule must return exactly the chain the original
brute-force implementation (kept as ``_reference_*`` oracles) returns,
and the version-guarded memo must never leak a stale chain across
mutations or copies.
"""

from __future__ import annotations

import random

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.core.blocktree import BlockTree
from repro.core.score import LengthScore, WeightScore
from repro.core.selection import (
    GHOSTSelection,
    HeaviestChain,
    LongestChain,
    ScoreMaximizingSelection,
    _ReferenceGHOSTSelection,
    _ReferenceHeaviestChain,
    _ReferenceLongestChain,
    _ReferenceScoreMaximizingSelection,
)

#: (indexed rule, brute-force oracle) pairs under test.
RULES = [
    pytest.param(LongestChain(), _ReferenceLongestChain(), id="longest"),
    pytest.param(HeaviestChain(), _ReferenceHeaviestChain(), id="heaviest"),
    pytest.param(GHOSTSelection(), _ReferenceGHOSTSelection(), id="ghost"),
    pytest.param(
        ScoreMaximizingSelection(WeightScore(min_increment=0.25)),
        _ReferenceScoreMaximizingSelection(WeightScore(min_increment=0.25)),
        id="weight-with-increment",
    ),
]

TREES_PER_RULE = 200


def _random_tree(rng: random.Random) -> BlockTree:
    """A random tree; roughly half the samples are deliberately tie-heavy.

    Tie-heavy trees use a single unit weight and frequent forking, so many
    leaves share the maximal score and the winner is decided purely by the
    lexicographic tie-break — the branch most likely to diverge between
    two implementations.
    """
    tree = BlockTree()
    tie_heavy = rng.random() < 0.5
    n_blocks = rng.randrange(1, 40)
    ids = [GENESIS_ID]
    for index in range(n_blocks):
        if tie_heavy:
            parent = rng.choice(ids)
            weight = 1.0
        else:
            # Bias towards recent blocks for depth, with occasional forks.
            parent = rng.choice(ids[-6:]) if rng.random() < 0.7 else rng.choice(ids)
            weight = rng.choice((0.0, 0.5, 1.0, 1.0, 2.0))
        block_id = f"n{index:03d}_{rng.randrange(1000):03d}"
        tree.append(Block(block_id, parent, weight=weight))
        ids.append(block_id)
    return tree


@pytest.mark.parametrize("indexed, reference", RULES)
def test_indexed_selection_matches_reference_on_random_trees(indexed, reference):
    rng = random.Random(f"equivalence:{indexed!r}")  # stable per-rule stream
    for case in range(TREES_PER_RULE):
        tree = _random_tree(rng)
        got = indexed(tree)
        expected = reference(tree)
        assert got.ids == expected.ids, (
            f"case {case}: {indexed!r} selected {got.ids[-1]}, "
            f"reference selected {expected.ids[-1]}\n{tree.to_ascii()}"
        )


@pytest.mark.parametrize("indexed, reference", RULES)
def test_memoized_reads_stay_correct_across_mutations(indexed, reference):
    """Interleave appends with repeated reads: the version-guarded memo
    must serve only results computed at the current tree version."""
    rng = random.Random(1234)
    tree = BlockTree()
    ids = [GENESIS_ID]
    for index in range(60):
        parent = rng.choice(ids[-8:])
        block_id = f"m{index:03d}_{rng.randrange(100):02d}"
        tree.append(Block(block_id, parent, weight=rng.choice((1.0, 1.0, 2.0))))
        ids.append(block_id)
        first = indexed(tree)
        second = indexed(tree)  # memo hit — must be the same chain
        assert second.ids == first.ids
        assert first.ids == reference(tree).ids


def test_copies_do_not_share_stale_memo_entries():
    tree = BlockTree()
    tree.append(Block("a1", GENESIS_ID))
    rule = LongestChain()
    assert rule(tree).tip.block_id == "a1"  # memoized at this version

    clone = tree.copy()
    assert rule(clone).tip.block_id == "a1"  # valid: content-identical copy

    clone.append(Block("z1", "a1"))
    tree.append(Block("b1", "a1"))
    tree.append(Block("b2", "b1"))
    assert rule(clone).tip.block_id == "z1"
    assert rule(tree).tip.block_id == "b2"
    assert rule(clone).ids == _ReferenceLongestChain()(clone).ids
    assert rule(tree).ids == _ReferenceLongestChain()(tree).ids


def test_unhashable_score_functions_fall_back_without_memo():
    class ListScore:
        """Deliberately unhashable selection key (defines __eq__ only)."""

        def __eq__(self, other):  # pragma: no cover - never compared
            return self is other

        __hash__ = None  # type: ignore[assignment]

        def __call__(self, chain):
            return float(chain.length)

    tree = BlockTree()
    tree.append(Block("a1", GENESIS_ID))
    tree.append(Block("a2", "a1"))
    rule = ScoreMaximizingSelection(ListScore())
    assert rule(tree).tip.block_id == "a2"
    tree.append(Block("a3", "a2"))
    assert rule(tree).tip.block_id == "a3"


def test_generic_score_fallback_matches_reference():
    """A custom (hashable) score falls back to scoring chains — still
    equivalent to the brute-force oracle, and still memoizable."""

    class PayloadScore:
        def __call__(self, chain):
            return float(sum(len(b.payload) for b in chain.blocks))

        def __hash__(self):
            return hash(type(self))

        def __eq__(self, other):
            return type(other) is type(self)

    rng = random.Random(99)
    tree = BlockTree()
    ids = [GENESIS_ID]
    for index in range(30):
        parent = rng.choice(ids)
        block_id = f"p{index:03d}"
        payload = tuple(f"tx{j}" for j in range(rng.randrange(4)))
        tree.append(Block(block_id, parent, payload=payload))
        ids.append(block_id)
    indexed = ScoreMaximizingSelection(PayloadScore())
    reference = _ReferenceScoreMaximizingSelection(PayloadScore())
    assert indexed(tree).ids == reference(tree).ids
    assert indexed(tree).ids == indexed(tree).ids
