"""Unit tests for score functions, mcps and prefix utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.block import GENESIS, Block, Blockchain
from repro.core.score import (
    LengthScore,
    WeightScore,
    common_prefix_length,
    is_monotonic_score,
    mcps,
    pairwise_mcps_matrix,
)


class TestLengthScore:
    def test_genesis_chain_scores_zero(self):
        assert LengthScore()(Blockchain.genesis_only()) == 0.0
        assert LengthScore().genesis_score == 0.0

    def test_score_counts_non_genesis_blocks(self, chain_factory):
        assert LengthScore()(chain_factory("a", "b", "c")) == 3.0

    def test_monotonic_under_extension(self, chain_factory):
        chains = [chain_factory(*[f"x{i}" for i in range(1, n + 1)]) for n in range(5)]
        assert is_monotonic_score(LengthScore(), chains)


class TestWeightScore:
    def test_weight_score_sums_block_weights(self):
        b1 = Block("a", "b0", weight=1.5)
        b2 = Block("b", "a", weight=2.5)
        chain = Blockchain((GENESIS, b1, b2))
        assert WeightScore()(chain) == pytest.approx(4.0)

    def test_min_increment_restores_monotonicity_for_zero_weights(self):
        b1 = Block("a", "b0", weight=0.0)
        chain0 = Blockchain((GENESIS,))
        chain1 = Blockchain((GENESIS, b1))
        plain = WeightScore()
        assert plain(chain1) == plain(chain0)  # not strictly monotonic
        bumped = WeightScore(min_increment=0.01)
        assert bumped(chain1) > bumped(chain0)
        assert is_monotonic_score(bumped, [chain1])

    def test_weight_equals_length_for_unit_weights(self, chain_factory):
        chain = chain_factory("a", "b", "c")
        assert WeightScore()(chain) == LengthScore()(chain)


class TestMcps:
    def test_mcps_of_identical_chains(self, chain_factory):
        chain = chain_factory("a", "b")
        assert mcps(chain, chain) == 2.0

    def test_mcps_of_prefix_related_chains(self, chain_factory):
        assert mcps(chain_factory("a"), chain_factory("a", "b", "c")) == 1.0

    def test_mcps_of_divergent_chains(self, chain_factory):
        assert mcps(chain_factory("a", "b"), chain_factory("a", "x")) == 1.0
        assert mcps(chain_factory("a"), chain_factory("x")) == 0.0

    def test_mcps_with_custom_score(self, chain_factory):
        a = chain_factory("a", "b")
        b = chain_factory("a", "c")
        assert mcps(a, b, WeightScore()) == pytest.approx(1.0)

    def test_common_prefix_length_matches_mcps_for_length_score(self, chain_factory):
        a = chain_factory("a", "b", "c")
        b = chain_factory("a", "b", "x")
        assert common_prefix_length(a, b) == 2
        assert mcps(a, b) == 2.0


class TestPairwiseMatrix:
    def test_matrix_is_symmetric_with_self_scores_on_diagonal(self, chain_factory):
        chains = [chain_factory("a"), chain_factory("a", "b"), chain_factory("x")]
        matrix = pairwise_mcps_matrix(chains)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert matrix[0, 0] == 1.0
        assert matrix[1, 1] == 2.0

    def test_matrix_matches_pairwise_mcps(self, chain_factory):
        chains = [
            chain_factory("a", "b", "c"),
            chain_factory("a", "b", "x"),
            chain_factory("q"),
        ]
        matrix = pairwise_mcps_matrix(chains)
        for i, ci in enumerate(chains):
            for j, cj in enumerate(chains):
                assert matrix[i, j] == mcps(ci, cj)

    def test_matrix_with_weight_score(self, chain_factory):
        chains = [chain_factory("a", "b"), chain_factory("a", "c")]
        matrix = pairwise_mcps_matrix(chains, WeightScore())
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_empty_input(self):
        assert pairwise_mcps_matrix([]).shape == (0, 0)


class TestMonotonicityHelper:
    def test_rejects_non_monotonic_score(self, chain_factory):
        class ConstantScore:
            def __call__(self, chain):
                return 1.0

        assert not is_monotonic_score(ConstantScore(), [chain_factory("a", "b")])

    def test_accepts_genesis_only_samples(self):
        assert is_monotonic_score(LengthScore(), [Blockchain.genesis_only()])
