"""Randomized equivalence: indexed checkers vs. the brute-force oracles.

The PR-2 pattern applied to the consistency layer: the rewritten,
index-backed checkers in :mod:`repro.core.consistency` must reproduce the
retained ``_Reference*`` oracles *exactly* — verdicts, violation strings
and ``details`` — on generated histories covering fork-heavy shapes,
drop-heavy (stale) reads, invalid blocks, never-appended blocks, late
appends, random weights and every checker configuration.
"""

from __future__ import annotations

import random

import pytest

from repro.core.block import Block, Blockchain, GENESIS, GENESIS_ID
from repro.core.consistency import (
    BlockValidityChecker,
    BTEventualConsistency,
    BTStrongConsistency,
    EventualPrefixChecker,
    EverGrowingTreeChecker,
    LocalMonotonicReadChecker,
    StrongPrefixChecker,
    _ReferenceBlockValidityChecker,
    _ReferenceEventualPrefixChecker,
    _ReferenceEverGrowingTreeChecker,
    _ReferenceLocalMonotonicReadChecker,
    _ReferenceStrongPrefixChecker,
    _reference_eventual_consistency,
    _reference_strong_consistency,
)
from repro.core.consistency_index import ConsistencyIndex
from repro.core.history import History, HistoryRecorder
from repro.core.score import LengthScore, WeightScore
from repro.workload.scenarios import (
    figure2_history,
    figure3_history,
    figure4_history,
    generate_chain_history,
    generate_forked_history,
)

N_RANDOM_HISTORIES = 220


def random_history(seed: int):
    """One generated history plus the ids its validator should reject.

    Mixes chain growth with forks (random parents), stale reads (random
    nodes, not just tips), blocks whose append is recorded late or never,
    and random block weights, so every code path of every checker —
    including the violation emitters — is exercised.
    """
    rng = random.Random(seed)
    processes = [f"p{i}" for i in range(rng.randint(1, 4))]
    rec = HistoryRecorder()
    parent_of = {GENESIS_ID: None}
    block_of = {GENESIS_ID: GENESIS}
    ids = [GENESIS_ID]
    bad_ids = set()
    unappended = []
    counter = 0
    for _ in range(rng.randint(12, 55)):
        roll = rng.random()
        if roll < 0.45:
            parent = ids[-1] if rng.random() < 0.5 else rng.choice(ids)
            counter += 1
            block_id = f"x{counter}"
            block = Block(
                block_id,
                parent,
                weight=rng.choice((1.0, 1.0, 2.0, 0.5)),
                creator=rng.choice(processes),
            )
            block_of[block_id] = block
            parent_of[block_id] = parent
            ids.append(block_id)
            if rng.random() < 0.12:
                bad_ids.add(block_id)
            if rng.random() < 0.8:
                rec.complete(rng.choice(processes), "append", block, True)
            else:
                unappended.append(block)  # read before append, or never appended
        elif roll < 0.55 and unappended:
            block = unappended.pop(rng.randrange(len(unappended)))
            rec.complete(rng.choice(processes), "append", block, True)
        else:
            node = rng.choice(ids)
            path = []
            cursor = node
            while cursor is not None:
                path.append(block_of[cursor])
                cursor = parent_of[cursor]
            path.reverse()
            rec.complete(rng.choice(processes), "read", None, Blockchain(tuple(path)))
    return rec.history(), frozenset(bad_ids)


def checker_config(seed: int):
    """Deterministic checker parameters derived from the seed."""
    rng = random.Random(seed * 7919 + 13)
    score = rng.choice(
        [LengthScore(), WeightScore(), WeightScore(min_increment=0.5)]
    )
    stall_threshold = rng.choice([None, 1, 2, 3])
    require_all_pairs = rng.random() < 0.3
    return score, stall_threshold, require_all_pairs


@pytest.mark.parametrize("seed", range(N_RANDOM_HISTORIES))
def test_randomized_equivalence(seed):
    history, bad_ids = random_history(seed)
    score, stall_threshold, require_all_pairs = checker_config(seed)
    validator = (lambda block: block.block_id not in bad_ids) if bad_ids else None

    index = ConsistencyIndex.from_history(history)
    pairs = [
        (BlockValidityChecker(validator), _ReferenceBlockValidityChecker(validator)),
        (LocalMonotonicReadChecker(score), _ReferenceLocalMonotonicReadChecker(score)),
        (StrongPrefixChecker(), _ReferenceStrongPrefixChecker()),
        (
            EverGrowingTreeChecker(score, stall_threshold),
            _ReferenceEverGrowingTreeChecker(score, stall_threshold),
        ),
        (
            EventualPrefixChecker(score, require_all_pairs),
            _ReferenceEventualPrefixChecker(score, require_all_pairs),
        ),
    ]
    for indexed, reference in pairs:
        got = indexed.check(history, index)
        expected = reference.check(history)
        assert got == expected, (
            f"seed {seed}: {indexed.name} diverges\n"
            f"indexed:   {got}\nreference: {expected}"
        )


@pytest.mark.parametrize("seed", range(0, N_RANDOM_HISTORIES, 10))
def test_randomized_criterion_equivalence(seed):
    """Whole criteria (shared index across the four properties)."""
    history, bad_ids = random_history(seed)
    score, stall_threshold, _ = checker_config(seed)
    validator = (lambda block: block.block_id not in bad_ids) if bad_ids else None

    strong = BTStrongConsistency(score, validator, stall_threshold)
    eventual = BTEventualConsistency(score, validator, stall_threshold)
    assert strong.check(history) == _reference_strong_consistency(
        history, score, validator, stall_threshold
    )
    assert eventual.check(history) == _reference_eventual_consistency(
        history, score, validator, stall_threshold
    )


@pytest.mark.parametrize(
    "history_factory",
    [
        figure2_history,
        figure3_history,
        figure4_history,
        lambda: generate_chain_history(3, 12, 6, seed=2),
        lambda: generate_chain_history(5, 25, 10, seed=9),
        lambda: generate_forked_history(6, resolve=True, seed=4),
        lambda: generate_forked_history(6, resolve=False, seed=5),
        lambda: History(()),
    ],
)
def test_scenario_equivalence(history_factory):
    """The paper figures and the library generators, both criteria."""
    history = history_factory()
    for score in (LengthScore(), WeightScore()):
        strong = BTStrongConsistency(score=score)
        eventual = BTEventualConsistency(score=score)
        assert strong.check(history) == _reference_strong_consistency(history, score)
        assert eventual.check(history) == _reference_eventual_consistency(history, score)


def test_weight_score_mcps_is_bit_identical():
    """Cumulative weights accumulate root-first, like WeightScore sums."""
    # Irregular weights whose float sums are order-sensitive.
    weights = [0.1, 0.7, 1e-3, 2.5, 0.30000000000000004, 1.1]
    rec = HistoryRecorder()
    blocks, parent = [], GENESIS_ID
    for k, w in enumerate(weights):
        block = Block(f"w{k}", parent, weight=w)
        blocks.append(block)
        rec.complete("i", "append", block, True)
        parent = block.block_id
    for cut in (2, 4, len(blocks)):
        rec.complete("i", "read", None, Blockchain((GENESIS, *blocks[:cut])))
    history = rec.history()
    score = WeightScore(min_increment=0.25)
    index = ConsistencyIndex.from_history(history)
    for read in history.read_responses():
        assert index.score_of_read(read, score) == score(read.chain)
